"""The ordering-backend contracts (docs/ORDERING.md).

Everything above the total order — the KV store, the sharded service
plane, the workload generators, the benches — talks to the multicast
through :class:`OrderingEndpoint`, and a cluster instantiates a
protocol through :class:`OrderingBackend`. The contracts are
deliberately small: the conformance suite
(tests/test_ordering_conformance.py) is their executable definition.

This module must not import from ``repro.core`` (the Spindle endpoint
*is* a ``repro.core`` class and subclasses :class:`OrderingEndpoint`).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

__all__ = ["OrderingEndpoint", "OrderingBackend", "BACKENDS",
           "resolve_backend"]


class OrderingEndpoint:
    """One node's handle on one subgroup's total order.

    Implementations guarantee, for the live members of a subgroup
    (the conformance suite pins each of these):

    * **total order** — all members deliver the same messages in the
      same order;
    * **per-sender FIFO, gap-free, exactly-once** — the k-th delivery
      from sender rank ``r`` is ``r``'s k-th successful
      :meth:`propose`, so propose tickets and delivery counts line up;
    * **wedge-then-settle** — after :meth:`wedge` no new proposals are
      accepted, outstanding ones resolve, and members' logs stay
      order-consistent prefixes of one another.

    Required attributes (set by implementations):

    ``sim``, ``subgroup_id``, ``node_id``, ``members``, ``senders``,
    ``my_rank`` (sender rank or None), ``window``, ``delivery_mode``,
    ``wedged``, ``finished_sending``, ``stats``
    (:class:`~repro.core.stats.SubgroupStats`).
    """

    #: True when the backend exposes a bounded ring/send window whose
    #: occupancy is the natural congestion signal (Spindle's SST ring,
    #: §2.3). Quorum backends without a shared ring derive congestion
    #: from their in-flight proposal count instead; callers must not
    #: reach for ``window_in_use`` unless this is set — use
    #: :meth:`congestion`.
    has_send_window: bool = False
    #: True when the backend participates in the virtually-synchronous
    #: membership/view-change plane (wedge + ragged trim + epoch
    #: restart). Backends that handle failures internally (Paxos leader
    #: change) set False, and the recovery coordinator refuses to drive
    #: them.
    view_synchronous: bool = False

    # ----------------------------------------------------------- proposing

    def propose(self, size: int, payload: Optional[bytes] = None
                ) -> Generator[Any, Any, int]:
        """Submit one message to the total order.

        A generator for a simulated sender process to ``yield from``.
        Blocks (in simulated time) while the backend's pipeline is
        full; raises ``RuntimeError`` once :meth:`wedge` was called.
        Returns the message's **per-sender ticket**: this sender's 0-based
        proposal index, which equals the position of the message in the
        sender's delivered FIFO (exactly-once + gap-freedom make the
        k-th delivery from this sender carry ticket ``k``).
        """
        raise NotImplementedError

    def mark_finished(self) -> None:
        """Hint that this node will propose no more (workload end)."""
        raise NotImplementedError

    # ------------------------------------------------------------- control

    def wedge(self) -> None:
        """Stop accepting new proposals (drain for a reconfiguration)."""
        raise NotImplementedError

    def stable_prefix(self) -> int:
        """Highest sequence number this node knows to be delivered (or
        deliverable) at *every* live member — Spindle's min received
        column, Paxos's commit watermark. Monotonic."""
        raise NotImplementedError

    def congestion(self) -> float:
        """Saturation of this sender's pipeline in ``[0, 1]``.

        1.0 means the next :meth:`propose` would block (or the endpoint
        is wedged). The request router's admission control is built on
        this signal alone, so it works for backends with and without a
        send window (docs/SHARDING.md).
        """
        raise NotImplementedError


class OrderingBackend:
    """Factory for a cluster's per-node protocol stacks.

    ``build_groups`` returns one *group object* per view member. A
    group object mirrors the :class:`~repro.core.group.GroupNode`
    surface the cluster and apps rely on: ``subgroup(sg_id)`` (an
    :class:`OrderingEndpoint`), ``on_delivery(sg_id, cb)``,
    ``stats(sg_id)``, ``multicasts`` (dict, for tracers), ``start`` /
    ``stop`` / ``kill`` / ``teardown``, ``protocol_processes(scope)``
    (stall targets for fault injection), ``membership`` (None unless
    view-synchronous) and ``persistence`` (dict, may be empty).
    """

    name: str = "abstract"
    #: Mirrors :attr:`OrderingEndpoint.view_synchronous` for the whole
    #: backend: gates ``enable_membership`` and the recovery plane.
    view_synchronous: bool = False
    #: True when the protocol goes fully idle once the workload drains
    #: (Spindle's event-driven predicate thread), so
    #: ``run_to_quiescence`` terminates. Backends with standing timers
    #: (Paxos heartbeats) set False; drivers must poll progress and
    #: ``stop()`` instead (see ``repro.workloads.runner``).
    quiesces: bool = True

    def build_groups(self, cluster, view) -> Dict[int, Any]:
        """Instantiate (but not start) one group object per member."""
        raise NotImplementedError

    def on_node_restart(self, cluster, node_id: int) -> None:
        """A crashed node's NIC came back (crash-recovery model:
        volatile state lost). Spindle defers to the recovery plane;
        self-healing backends respawn the node's protocol state here."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


def _spindle() -> OrderingBackend:
    from .spindle import SpindleBackend

    return SpindleBackend()


def _paxos() -> OrderingBackend:
    from .paxos import PaxosBackend

    return PaxosBackend()


#: name -> zero-argument factory. Registry for ``Cluster(backend=...)``
#: and the CLI/bench ``--backend`` flags.
BACKENDS = {
    "spindle": _spindle,
    "paxos": _paxos,
}


def resolve_backend(spec) -> OrderingBackend:
    """``Cluster(backend=...)`` coercion: a name from :data:`BACKENDS`,
    an :class:`OrderingBackend` instance (passed through), or None
    (the default Spindle stack)."""
    if spec is None:
        return _spindle()
    if isinstance(spec, OrderingBackend):
        return spec
    try:
        factory = BACKENDS[spec]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown ordering backend {spec!r}; "
            f"known: {', '.join(BACKENDS)}") from None
    return factory()

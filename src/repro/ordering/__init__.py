"""Pluggable ordering backends (docs/ORDERING.md).

The atomic-multicast machinery is reached through two small contracts:

* :class:`~repro.ordering.base.OrderingEndpoint` — one node's handle on
  one subgroup's total order (propose / deliver-upcall / wedge /
  stable-prefix / congestion), implemented by the Spindle SST multicast
  (:class:`~repro.core.multicast.SubgroupMulticast`) and by the
  Multi-Paxos baseline (:class:`~repro.ordering.paxos.PaxosEndpoint`).
* :class:`~repro.ordering.base.OrderingBackend` — the factory a
  :class:`~repro.workloads.cluster.Cluster` uses to instantiate one
  group object per node for a view (``Cluster(backend="paxos")``).

Submodules are loaded lazily (PEP 562): ``base`` must stay importable
from ``repro.core`` without dragging the backend implementations (and
their imports of ``repro.core``) into the cycle.
"""

from .base import BACKENDS, OrderingBackend, OrderingEndpoint, resolve_backend

__all__ = [
    "BACKENDS",
    "OrderingBackend",
    "OrderingEndpoint",
    "resolve_backend",
    "SpindleBackend",
    "PaxosBackend",
    "PaxosConfig",
    "PaxosEndpoint",
]


def __getattr__(name):
    if name == "SpindleBackend":
        from .spindle import SpindleBackend

        return SpindleBackend
    if name in ("PaxosBackend", "PaxosConfig", "PaxosEndpoint"):
        from . import paxos

        return getattr(paxos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

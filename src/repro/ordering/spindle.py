"""The default backend: Spindle's SST-based atomic multicast.

A thin factory around :class:`~repro.core.group.GroupNode` — the paper's
protocol itself lives in ``repro.core``/``repro.sst``. This module only
adapts it to the :class:`~repro.ordering.base.OrderingBackend` contract
so a :class:`~repro.workloads.cluster.Cluster` can swap it for the
Multi-Paxos baseline (docs/ORDERING.md). Construction order is
identical to the historical in-cluster path, so seeded runs (and their
trace fingerprints) are unchanged.
"""

from __future__ import annotations

from typing import Dict

from ..core.group import GroupNode
from ..sst.table import wire_ssts
from .base import OrderingBackend

__all__ = ["SpindleBackend"]


class SpindleBackend(OrderingBackend):
    """``Cluster(backend="spindle")`` — the default."""

    name = "spindle"
    view_synchronous = True

    def build_groups(self, cluster, view) -> Dict[int, GroupNode]:
        groups: Dict[int, GroupNode] = {}
        for node_id in view.members:
            groups[node_id] = GroupNode(
                cluster.sim,
                cluster.fabric,
                cluster.fabric.nodes[node_id],
                view,
                cluster.config,
                cluster.timing,
                membership_params=cluster._membership_params,
                metrics=cluster.metrics,
                storage=cluster.storage,
            )
        wire_ssts({nid: g.sst for nid, g in groups.items()})
        return groups

    def on_node_restart(self, cluster, node_id: int) -> None:
        """Nothing protocol-side: re-admission of a restarted node is
        the recovery plane's job (docs/RECOVERY.md)."""

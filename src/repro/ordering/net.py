"""Message transport for quorum backends, over the simulated RDMA NICs.

Paxos is message-passing, not shared-memory, but it must run on the
*same* fabric as the SST so the comparison is honest: every protocol
message is serialized to real bytes and carried by one
:meth:`~repro.rdma.nic.QueuePair.post_write` into a per-peer landing
region — which means egress serialization, the Figure-1 latency curve,
per-QP FIFO ordering and every fault-plane decision (partition, loss,
jitter, crash) apply to Paxos traffic exactly as they do to SST pushes.

The receiver decodes the message from the write's snapshot in the
``on_remote_write`` hook (the landing region is a mailbox, not a ring:
back-to-back writes may overwrite it, but the snapshot is immutable, so
nothing is lost). Local sends bypass the fabric — there are no loopback
queue pairs, as on real hardware.

The codec is a small tagged binary format (ints, bytes, None, floats,
nested sequences) so message *size* — which drives the timing model —
tracks content honestly: a batched accept carrying three 10 KB payloads
costs three 10 KB payloads of egress, like the SST slot pushes it is
benchmarked against.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..rdma.memory import ByteRegion, Region, WriteSnapshot

__all__ = ["encode_message", "decode_message", "MessageTransport",
           "wire_transports"]

_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_U32 = struct.Struct("<I")

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_FLOAT = b"D"
_TAG_BYTES = b"B"
_TAG_STR = b"S"
_TAG_LIST = b"L"


def _encode_into(value: Any, out: List[bytes]) -> None:
    if value is None:
        out.append(_TAG_NONE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif isinstance(value, int):
        out.append(_TAG_INT)
        out.append(_I64.pack(value))
    elif isinstance(value, float):
        out.append(_TAG_FLOAT)
        out.append(_F64.pack(value))
    elif isinstance(value, (bytes, bytearray)):
        out.append(_TAG_BYTES)
        out.append(_U32.pack(len(value)))
        out.append(bytes(value))
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.append(_TAG_STR)
        out.append(_U32.pack(len(data)))
        out.append(data)
    elif isinstance(value, (tuple, list)):
        out.append(_TAG_LIST)
        out.append(_U32.pack(len(value)))
        for item in value:
            _encode_into(item, out)
    else:
        raise TypeError(f"cannot encode {type(value).__name__}: {value!r}")


def encode_message(message: Tuple[Any, ...]) -> bytes:
    """Serialize a protocol message (a nested tuple) to wire bytes."""
    out: List[bytes] = []
    _encode_into(message, out)
    return b"".join(out)


def _decode_from(data: bytes, pos: int) -> Tuple[Any, int]:
    tag = data[pos:pos + 1]
    pos += 1
    if tag == _TAG_NONE:
        return None, pos
    if tag == _TAG_TRUE:
        return True, pos
    if tag == _TAG_FALSE:
        return False, pos
    if tag == _TAG_INT:
        return _I64.unpack_from(data, pos)[0], pos + 8
    if tag == _TAG_FLOAT:
        return _F64.unpack_from(data, pos)[0], pos + 8
    if tag in (_TAG_BYTES, _TAG_STR):
        (length,) = _U32.unpack_from(data, pos)
        pos += 4
        raw = data[pos:pos + length]
        return (raw if tag == _TAG_BYTES else raw.decode("utf-8")), pos + length
    if tag == _TAG_LIST:
        (count,) = _U32.unpack_from(data, pos)
        pos += 4
        items = []
        for _ in range(count):
            item, pos = _decode_from(data, pos)
            items.append(item)
        return tuple(items), pos
    raise ValueError(f"bad message tag {tag!r} at offset {pos - 1}")


def decode_message(data: bytes) -> Tuple[Any, ...]:
    """Inverse of :func:`encode_message`."""
    message, _pos = _decode_from(bytes(data), 0)
    return message


class MessageTransport:
    """One endpoint's mailboxes: a landing region per peer, plus the
    staging buffer its own sends are snapshotted from.

    ``on_message(src, message)`` is invoked from the NIC's remote-write
    hook — implementations should only enqueue and ring a doorbell
    there, and do protocol work on their own simulated thread.
    """

    def __init__(self, fabric, node_id: int, peers, name: str,
                 on_message: Callable[[int, Tuple[Any, ...]], None],
                 mailbox_bytes: int = 1 << 17):
        self.fabric = fabric
        self.node_id = node_id
        self.node = fabric.nodes[node_id]
        self.name = name
        self.on_message = on_message
        self.mailbox_bytes = mailbox_bytes
        self.messages_sent = 0
        self.messages_received = 0
        self._staging = ByteRegion(mailbox_bytes, name=f"{name}.out@{node_id}")
        #: peer -> landing region for that peer's messages to us.
        self._mailboxes: Dict[int, ByteRegion] = {}
        self._src_of: Dict[Region, int] = {}
        #: peer -> rkey of *our* mailbox at that peer (set by wiring).
        self._remote_keys: Dict[int, int] = {}
        for src in peers:
            if src == node_id:
                continue
            region = ByteRegion(mailbox_bytes,
                                name=f"{name}.in.{src}at{node_id}")
            self.node.register(region)
            self._mailboxes[src] = region
            self._src_of[region] = src
        self.node.on_remote_write.append(self._landed)

    # -------------------------------------------------------------- wiring

    def mailbox_key(self, src: int) -> int:
        """The rkey peer ``src`` must address to reach this node."""
        return self._mailboxes[src].key

    def connect(self, dst: int, remote_key: int) -> None:
        """Learn the rkey of our mailbox at ``dst`` (out-of-band
        exchange, like the SST's wiring step)."""
        self._remote_keys[dst] = remote_key

    # ------------------------------------------------------------- sending

    def send(self, dst: int, message: Tuple[Any, ...]) -> int:
        """Post one message to ``dst``; returns its wire size in bytes.

        Consumes no simulated time itself (the caller's thread charges
        the post CPU, as for every ``post_write``); the bytes then pay
        egress occupancy + wire latency like any other RDMA write.
        """
        if dst == self.node_id:
            raise ValueError("no loopback queue pairs; deliver locally")
        data = encode_message(message)
        if len(data) > self.mailbox_bytes:
            raise ValueError(
                f"message of {len(data)}B exceeds the {self.mailbox_bytes}B "
                f"mailbox (batch caps must keep messages under it)")
        # Staging is a scratch buffer, not an SST mirror: the write is
        # snapshotted by post_write before reuse, so no monotonicity
        # contract applies.
        self._staging.write_local(0, data)  # spindle-lint: allow[sst-monotonic-write]
        qp = self.fabric.queue_pair(self.node_id, dst)
        qp.post_write(self._staging, 0, self._remote_keys[dst], 0, len(data))
        self.messages_sent += 1
        return len(data)

    # ------------------------------------------------------------ receiving

    def _landed(self, region: Region, snap: WriteSnapshot) -> None:
        src = self._src_of.get(region)
        if src is None:
            return
        self.messages_received += 1
        self.on_message(src, decode_message(snap.data))

    # ------------------------------------------------------------- teardown

    def teardown(self) -> None:
        """Deregister the mailboxes and stop listening (epoch end)."""
        self.node.on_remote_write.remove(self._landed)
        for region in self._mailboxes.values():
            if region.key != -1 and region.key in self.node.regions:
                self.node.deregister(region.key)
        self._mailboxes.clear()
        self._src_of.clear()


def wire_transports(transports: Dict[int, MessageTransport]) -> None:
    """Exchange mailbox rkeys among a set of peers (out-of-band, once
    per view, mirroring ``wire_ssts``)."""
    for src, transport in transports.items():
        for dst, peer in transports.items():
            if src == dst:
                continue
            transport.connect(dst, peer.mailbox_key(src))

"""Multi-Paxos atomic multicast: the quorum-consensus baseline.

The paper's core claim is comparative — the SST multicast beats classic
quorum protocols *under identical conditions*. This module supplies the
other side of that comparison: a leader-based Multi-Paxos (proposer /
acceptor / learner roles collapsed into one endpoint per member, as in
practical deployments) running on the very same simulated RDMA fabric,
timing model and fault plane as Spindle (see
:mod:`repro.ordering.net`), behind the same
:class:`~repro.ordering.base.OrderingEndpoint` contract.

Protocol shape:

* **Leader leases via heartbeats.** The member ``ballot % M`` leads;
  followers suspect the leader after a rank-staggered election timeout
  (with deterministic jitter and exponential backoff) and run phase 1
  with a higher ballot of their own residue class.
* **Batched accept rounds.** The leader drains forwarded proposals into
  consecutive instances and ships them as one P2A per follower (capped
  by count and bytes), with its commit watermark piggybacked; a P2B
  acknowledges the whole batch.
* **Contiguous commit watermark.** Followers commit an instance off the
  watermark only when their accepted ballot matches the watermark's
  ballot; otherwise they fetch the chosen entries with LEARN_REQ /
  LEARN_RESP (also the restart catch-up path).
* **Exactly-once, per-sender FIFO delivery.** Every proposal is tagged
  ``(origin, incarnation, oseq)``; learners sequence each origin
  through a cursor + reorder buffer, skipping duplicates (a retransmit
  chosen twice across a leader change) and resetting the cursor when a
  restarted origin's new incarnation first commits. A crashed sender's
  unacknowledged messages may be lost — never reordered or duplicated.

Determinism: all timers run on the simulation clock and all randomness
(election jitter) comes from a ``random.Random`` seeded by ``(cluster
seed, node, subgroup)``, so a seeded run — including its trace
fingerprint — is exactly reproducible (tests/test_chaos_determinism.py).

Durability: with ``PaxosConfig(durable_acceptors=True)`` every promise
and accept is written ahead to a per-endpoint
:class:`~repro.storage.StorageDevice` WAL and fsynced *before* the
corresponding P1B/P2B/P2A leaves the node, and a restarted acceptor
recovers ``(promised, accepted)`` from its WAL instead of rejoining as
a learner-from-zero. That closes the classical safety gap under
arbitrary simultaneous failures — including whole-cluster power loss:
any committed instance has durable accepts on a majority, so every
later phase-1 quorum intersects one and re-proposes the chosen value
(docs/DURABILITY.md). The flag defaults to off, which preserves the
volatile acceptor's event timing (and trace fingerprints) exactly.
"""

from __future__ import annotations

import random
import struct
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from ..core.config import TimingModel
from ..core.multicast import Delivery
from ..core.stats import SubgroupStats
from ..sim.sync import Doorbell
from ..sim.units import us
from .base import OrderingBackend, OrderingEndpoint
from .net import MessageTransport, encode_message, wire_transports

__all__ = ["PaxosConfig", "PaxosEndpoint", "PaxosGroup", "PaxosBackend"]

#: entry = (origin, incarnation, oseq, size, payload, queued_at, noop)
_NOOP = (0, 0, 0, 0, None, 0.0, True)

# ---------------------------------------------------------------------------
# Acceptor WAL codec (durable_acceptors mode; docs/DURABILITY.md)
# ---------------------------------------------------------------------------

_WAL_PROMISE, _WAL_ACCEPT, _WAL_INC = 1, 2, 3
_WAL_HDR = struct.Struct("<Bqq")            # (type, a, b)
_WAL_ENTRY = struct.Struct("<iiiidBi")      # origin, inc, oseq, size,
                                            # queued_at, noop, payload_len|-1


def _wal_promise(ballot: int) -> bytes:
    return _WAL_HDR.pack(_WAL_PROMISE, ballot, 0)


def _wal_incarnation(incarnation: int) -> bytes:
    return _WAL_HDR.pack(_WAL_INC, incarnation, 0)


def _wal_accept(inst: int, ballot: int, entry: tuple) -> bytes:
    origin, inc, oseq, size, payload, queued_at, noop = entry
    return (_WAL_HDR.pack(_WAL_ACCEPT, inst, ballot)
            + _WAL_ENTRY.pack(origin, inc, oseq, size, queued_at,
                              1 if noop else 0,
                              -1 if payload is None else len(payload))
            + (payload or b""))


def _wal_decode(body: bytes) -> tuple:
    kind, a, b = _WAL_HDR.unpack_from(body, 0)
    if kind == _WAL_PROMISE:
        return ("prom", a)
    if kind == _WAL_INC:
        return ("inc", a)
    if kind != _WAL_ACCEPT:
        raise ValueError(f"unknown WAL record type {kind}")
    origin, inc, oseq, size, queued_at, noop, plen = _WAL_ENTRY.unpack_from(
        body, _WAL_HDR.size)
    payload: Optional[bytes] = None
    if plen >= 0:
        off = _WAL_HDR.size + _WAL_ENTRY.size
        payload = body[off:off + plen]
        if len(payload) != plen:
            raise ValueError("truncated WAL accept payload")
    entry = (origin, inc, oseq, size, payload, queued_at, bool(noop))
    return ("acc", a, b, entry)


@dataclass(frozen=True)
class PaxosConfig:
    """Protocol constants (simulated seconds).

    Defaults are tuned to the repo's RDMA latency model: one accept
    round is ~2 wire latencies, so leases and retransmit timeouts sit an
    order of magnitude above that.
    """

    #: Leader heartbeat period (lease renewal + watermark gossip).
    heartbeat_period: float = us(150)
    #: Base follower election timeout; the effective timeout is
    #: staggered by member rank and doubled per failed attempt.
    election_timeout: float = us(900)
    #: Uniform jitter added to the effective election timeout.
    election_jitter: float = us(150)
    #: Retransmit timeout: client FWDs and leader P2As.
    retransmit_timeout: float = us(600)
    #: Timer-loop granularity.
    tick_period: float = us(75)
    #: Max instances the leader assigns into one P2A batch.
    max_batch: int = 32
    #: Byte cap for one protocol message's variable part (batches,
    #: phase-1 logs, learn responses are chunked under this).
    max_batch_bytes: int = 64 * 1024
    #: Max instances accepted but not yet committed at the leader.
    leader_pipeline: int = 128
    #: Mailbox (landing region) size; must exceed ``max_batch_bytes``
    #: plus framing.
    mailbox_bytes: int = 128 * 1024
    #: CPU cost of handling one protocol message.
    handle_cost: float = us(0.3)
    #: Write-ahead acceptor state (promises + accepts) to a per-node
    #: storage device and recover it on restart. Off by default: the
    #: volatile acceptor's event schedule — and therefore existing
    #: trace fingerprints — is preserved exactly (docs/DURABILITY.md).
    durable_acceptors: bool = False


class PaxosEndpoint(OrderingEndpoint):
    """One member's proposer+acceptor+learner for one subgroup."""

    has_send_window = False
    view_synchronous = False

    def __init__(self, sim, fabric, subgroup_id: int, members, senders,
                 window: int, config: PaxosConfig, timing: TimingModel,
                 deliver_cb=None, stats: Optional[SubgroupStats] = None,
                 seed: int = 0, delivery_mode: str = "atomic",
                 node_id: Optional[int] = None, device=None):
        if delivery_mode != "atomic":
            raise ValueError("the paxos backend supports atomic delivery only")
        self.delivery_mode = "atomic"
        self.sim = sim
        self.fabric = fabric
        self.subgroup_id = subgroup_id
        self.members = list(members)
        self.senders = list(senders)
        self.S = len(self.senders)
        self.M = len(self.members)
        self.window = window
        self.cfg = config
        self.timing = timing
        self.deliver_cb = deliver_cb
        self.node_id = node_id
        self.latency = fabric.nodes[node_id].latency
        self.stats = stats if stats is not None else SubgroupStats()
        self.my_member_rank = self.members.index(node_id)
        self._rank_of = {n: r for r, n in enumerate(self.senders)}
        self.my_rank: Optional[int] = self._rank_of.get(node_id)
        self.rng = random.Random(
            (seed * 1_000_003) ^ (node_id << 16) ^ (subgroup_id << 8))
        self.transport = MessageTransport(
            fabric, node_id, self.members,
            name=f"paxos{subgroup_id}", on_message=self._on_message,
            mailbox_bytes=config.mailbox_bytes)
        self._doorbell = Doorbell(sim, name=f"paxos{subgroup_id}"
                                            f".pump@{node_id}")
        self.slot_doorbell = Doorbell(sim, name=f"paxos{subgroup_id}"
                                                f".slots@{node_id}")
        #: Acceptor WAL (durable_acceptors mode); None keeps the
        #: classical volatile acceptor.
        self.device = device
        self.incarnation = 0
        self._procs: List[Any] = []
        self._reset_state()

    # ------------------------------------------------------------ lifecycle

    def _reset_state(self) -> None:
        """(Re)initialize all volatile protocol state (fresh start or
        crash-recovery restart)."""
        self._inbox: Deque[Tuple[int, tuple]] = deque()
        #: True when WAL records await an fsync barrier (the pump and
        #: ticker flush before posting any message that depends on them).
        self._wal_dirty = False
        # -- ballots & roles --------------------------------------------------
        self.ballot = 0                      # highest ballot in effect
        self.promised = 0                    # highest ballot promised
        self.is_leader = self.my_member_rank == 0
        self._electing: Optional[int] = None
        self._election_attempts = 0
        self.leader_changes = 0
        self.last_leader_heard = self.sim.now
        self._last_heartbeat = self.sim.now
        # -- acceptor ---------------------------------------------------------
        self.accepted: Dict[int, Tuple[int, tuple]] = {}
        # -- learner ----------------------------------------------------------
        self.committed: Dict[int, tuple] = {}
        self.commit_upto = -1                # contiguous committed prefix
        self.delivered_upto = -1
        self.delivered_count = 0
        self._known_commit_upto = -1
        self._last_learn_req = self.sim.now
        #: per-origin FIFO cursor: (incarnation, next expected oseq).
        self._cursor: List[Tuple[int, int]] = [(0, 0)] * self.S
        self._reorder: List[Dict[Tuple[int, int], tuple]] = [
            {} for _ in range(self.S)]
        self._pending_upcalls = 0
        # -- leader -----------------------------------------------------------
        self.next_inst = 0
        self.pending: Deque[tuple] = deque()
        self._seen_fwd: Set[Tuple[int, int, int]] = set()
        self._p2b_acks: Dict[int, Set[int]] = {}
        self._unacked: Dict[int, List] = {}  # inst -> [entry, last_sent]
        self._p1b_from: Set[int] = set()
        self._p1b_acc: Dict[int, Tuple[int, tuple]] = {}
        self._p1b_com: Dict[int, tuple] = {}
        # -- client (proposer) ------------------------------------------------
        self.next_oseq = 0
        #: oseq -> [size, payload, queued_at, last_sent]
        self.outstanding: Dict[int, List] = {}
        self.wedged = False
        self.finished_sending = False

    def start(self) -> None:
        self._procs = [
            self.sim.spawn(self._pump(),
                           name=f"paxos{self.subgroup_id}.pump@{self.node_id}"),
            self.sim.spawn(self._ticker(),
                           name=f"paxos{self.subgroup_id}.tick@{self.node_id}"),
        ]

    def stop(self) -> None:
        for proc in self._procs:
            if proc.alive:
                proc.kill()
        self._procs = []

    def restart(self) -> None:
        """Crash-recovery rejoin: volatile state is gone; come back as a
        follower under a fresh proposer incarnation and re-learn the
        chosen log from scratch (LEARN_REQ from instance 0).

        With a WAL device (``durable_acceptors``), the acceptor half is
        *not* gone: ``(promised, accepted)`` is recovered from the
        fsynced WAL first, so this node still counts toward the quorum
        intersection that protects previously chosen instances — the
        property whole-cluster power-loss recovery rests on."""
        self.stop()
        incarnation = self.incarnation + 1
        self._reset_state()
        if self.device is not None:
            recovered_inc = self._recover_wal()
            incarnation = max(incarnation, recovered_inc + 1)
            self.device.write(_wal_incarnation(incarnation))
            self._wal_dirty = True
        self.incarnation = incarnation
        self.is_leader = False       # never self-appoint on rejoin
        self.start()
        out = [(self.members[r], ("learnreq", self.my_member_rank, 0))
               for r in range(self.M) if r != self.my_member_rank]
        self._emit(out)

    def _recover_wal(self) -> int:
        """Replay the acceptor WAL (called from ``restart`` with fresh
        volatile state): rebuild ``promised`` and the accepted map,
        return the highest durably recorded incarnation. ``reopen``
        CRC-truncates any torn tail, so a record torn by the crash is
        simply absent — exactly an append that never happened."""
        recovered_inc = 0
        for body in self.device.reopen():
            record = _wal_decode(body)
            if record[0] == "prom":
                self.promised = max(self.promised, record[1])
            elif record[0] == "acc":
                _kind, inst, ballot, entry = record
                current = self.accepted.get(inst)
                if current is None or ballot >= current[0]:
                    self.accepted[inst] = (ballot, entry)
            else:
                recovered_inc = max(recovered_inc, record[1])
        return recovered_inc

    # ------------------------------------------------- durable acceptor state

    def _set_promised(self, ballot: int) -> None:
        """Raise the promise floor, write-ahead when durable. Callers
        flush the WAL before any message conditioned on the promise
        leaves the node (the pump/ticker fsync barrier)."""
        if ballot > self.promised:
            self.promised = ballot
            if self.device is not None:
                self.device.write(_wal_promise(ballot))
                self._wal_dirty = True

    def _record_accept(self, inst: int, ballot: int, entry: tuple) -> None:
        """Accept a value, write-ahead when durable (flushed before the
        acknowledging P2B / the leader's own P2A is posted)."""
        self.accepted[inst] = (ballot, entry)
        if self.device is not None:
            self.device.write(_wal_accept(inst, ballot, entry))
            self._wal_dirty = True

    def _wal_sync(self):
        """Fsync barrier: every WAL record written so far is durable
        when this generator completes."""
        self._wal_dirty = False
        yield from self.device.fsync()

    def teardown(self) -> None:
        self.stop()
        self.transport.teardown()

    # ========================================================== application

    def propose(self, size: int, payload: Optional[bytes] = None):
        """See :meth:`OrderingEndpoint.propose`; the ticket is ``oseq``."""
        if self.my_rank is None:
            raise RuntimeError(f"node {self.node_id} is not a sender in "
                               f"subgroup {self.subgroup_id}")
        if self.wedged:
            raise RuntimeError("subgroup is wedged (no new proposals)")
        blocked = False
        wait_start = self.sim.now
        while len(self.outstanding) >= self.window:
            if not blocked:
                blocked = True
                self.stats.record_blocked_send()
            yield self.slot_doorbell.wait()
            if self.wedged:
                raise RuntimeError("subgroup wedged while awaiting a slot")
        if blocked:
            self.stats.add_sender_wait(self.sim.now - wait_start)
        yield self.timing.message_construct
        oseq = self.next_oseq
        self.next_oseq += 1
        now = self.sim.now
        self.outstanding[oseq] = [size, payload, now, now]
        self.stats.record_send(now)
        yield self.latency.post_overhead
        self._emit([self._forward(oseq)])
        return oseq

    #: Workload generators call ``mc.send``; same contract here.
    send = propose

    def mark_finished(self) -> None:
        self.finished_sending = True

    def wedge(self) -> None:
        """Stop initiating proposals. Outstanding ones still resolve
        (commit via the quorum), so wedged members settle on
        order-consistent logs."""
        self.wedged = True
        self.slot_doorbell.ring()

    def stable_prefix(self) -> int:
        return self.commit_upto

    def window_in_use(self) -> int:
        return len(self.outstanding)

    def congestion(self) -> float:
        if self.wedged:
            return 1.0
        return min(1.0, len(self.outstanding) / self.window)

    def leader_member_rank(self) -> int:
        return self.ballot % self.M

    # ============================================================ processes

    def _pump(self):
        """The protocol thread: drain the inbox, run leader duties."""
        cfg = self.cfg
        while True:
            progressed = False
            while self._inbox:
                progressed = True
                src, message = self._inbox.popleft()
                yield cfg.handle_cost
                out = self._handle(src, message)
                if self._pending_upcalls:
                    yield self._pending_upcalls * self.timing.delivery_upcall
                    self._pending_upcalls = 0
                if self._wal_dirty:
                    # Write-ahead barrier: promises/accepts must be
                    # durable before the P1B/P2B they condition leaves.
                    yield from self._wal_sync()
                yield from self._post_all(out)
            batch_out = self._leader_assign()
            if batch_out:
                progressed = True
                if self._wal_dirty:
                    yield from self._wal_sync()  # leader's self-accepts
                yield from self._post_all(batch_out)
            if not progressed and not self._inbox:
                yield self._doorbell.wait()

    def _ticker(self):
        """Timers: heartbeats, elections, retransmits, catch-up."""
        # Deterministic per-rank stagger so ticks never run in lockstep.
        yield self.cfg.tick_period * (self.my_member_rank + 1) / (self.M + 1)
        while True:
            out = self._on_tick()
            if self._wal_dirty:
                yield from self._wal_sync()  # election-start promises
            yield from self._post_all(out)
            yield self.cfg.tick_period

    def _post_all(self, out):
        """Send from a simulated thread: one post-CPU charge per write."""
        for dst, message in out:
            if dst == self.node_id:
                self._inbox.append((self.node_id, message))
                self._doorbell.ring()
            else:
                yield self.latency.post_overhead
                self.transport.send(dst, message)

    def _emit(self, out) -> None:
        """Send from plain-callback context (propose's tail, restart):
        no CPU account to charge against, posts go straight out."""
        for dst, message in out:
            if dst == self.node_id:
                self._inbox.append((self.node_id, message))
                self._doorbell.ring()
            else:
                self.transport.send(dst, message)

    def _on_message(self, src: int, message: tuple) -> None:
        self._inbox.append((src, message))
        self._doorbell.ring()

    # ====================================================== message handlers

    def _handle(self, src: int, message: tuple) -> List[Tuple[int, tuple]]:
        kind = message[0]
        handler = getattr(self, f"_on_{kind}", None)
        if handler is None:
            raise ValueError(f"unknown paxos message kind {kind!r}")
        return handler(src, message) or []

    def _others(self) -> List[int]:
        return [n for n in self.members if n != self.node_id]

    def _majority(self) -> int:
        return self.M // 2 + 1

    # -- forwarding (client -> leader) --------------------------------------

    def _forward(self, oseq: int) -> Tuple[int, tuple]:
        size, payload, queued_at, _last = self.outstanding[oseq]
        self.outstanding[oseq][3] = self.sim.now
        leader_node = self.members[self.leader_member_rank()]
        return (leader_node, ("fwd", self.my_rank, self.incarnation, oseq,
                              size, payload, queued_at))

    def _on_fwd(self, src, message):
        _kind, origin, inc, oseq, size, payload, queued_at = message
        if not self.is_leader:
            return []  # stale leader belief; the client retransmits
        cursor_inc, cursor_next = self._cursor[origin]
        if inc < cursor_inc or (inc == cursor_inc and oseq < cursor_next):
            return []  # already delivered
        key = (origin, inc, oseq)
        if key in self._seen_fwd:
            return []  # already assigned an instance
        self._seen_fwd.add(key)
        self.pending.append((origin, inc, oseq, size, payload, queued_at,
                             False))
        return []

    # -- phase 2 -------------------------------------------------------------

    def _leader_assign(self) -> List[Tuple[int, tuple]]:
        """Drain pending proposals into instances; one batched P2A."""
        if not self.is_leader or not self.pending:
            return []
        if len(self._unacked) >= self.cfg.leader_pipeline:
            return []
        batch: List[Tuple[int, tuple]] = []
        batch_bytes = 0
        while (self.pending and len(batch) < self.cfg.max_batch
               and len(self._unacked) < self.cfg.leader_pipeline):
            entry = self.pending[0]
            entry_bytes = (entry[3] or 0) + 64
            if batch and batch_bytes + entry_bytes > self.cfg.max_batch_bytes:
                break
            self.pending.popleft()
            batch_bytes += entry_bytes
            inst = self.next_inst
            self.next_inst += 1
            self._self_accept(inst, entry)
            batch.append((inst, entry))
        if not batch:
            return []
        message = ("p2a", self.ballot, self.commit_upto, tuple(batch))
        return [(dst, message) for dst in self._others()]

    def _self_accept(self, inst: int, entry: tuple) -> None:
        self._record_accept(inst, self.ballot, entry)
        self._p2b_acks[inst] = {self.my_member_rank}
        self._unacked[inst] = [entry, self.sim.now]
        if self._majority() == 1:
            self._leader_commit([inst])

    def _on_p2a(self, src, message):
        _kind, ballot, commit_upto, batch = message
        if ballot < self.promised:
            return []
        self._observe_ballot(ballot)
        self.last_leader_heard = self.sim.now
        for inst, entry in batch:
            self._record_accept(inst, ballot, entry)
        out = [(src, ("p2b", ballot, self.my_member_rank,
                      tuple(inst for inst, _e in batch)))]
        out.extend(self._advance_commit(commit_upto, ballot))
        return out

    def _on_p2b(self, src, message):
        _kind, ballot, member_rank, insts = message
        if not self.is_leader or ballot != self.ballot:
            return []
        chosen: List[int] = []
        for inst in insts:
            acks = self._p2b_acks.get(inst)
            if acks is None:
                continue
            acks.add(member_rank)
            if len(acks) >= self._majority():
                chosen.append(inst)
        return self._leader_commit(chosen)

    def _leader_commit(self, chosen: List[int]) -> List[Tuple[int, tuple]]:
        for inst in chosen:
            self.committed[inst] = self.accepted[inst][1]
            self._p2b_acks.pop(inst, None)
            self._unacked.pop(inst, None)
        before = self.commit_upto
        while self.commit_upto + 1 in self.committed:
            self.commit_upto += 1
        if self.commit_upto == before:
            return []
        self._known_commit_upto = max(self._known_commit_upto,
                                      self.commit_upto)
        self._deliver_ready()
        message = ("commit", self.ballot, self.commit_upto)
        return [(dst, message) for dst in self._others()]

    def _on_commit(self, src, message):
        _kind, ballot, upto = message
        if ballot >= self.ballot:
            self._observe_ballot(ballot)
            self.last_leader_heard = self.sim.now
        return self._advance_commit(upto, ballot)

    def _on_hb(self, src, message):
        _kind, ballot, upto = message
        if ballot < self.ballot:
            return []
        self._observe_ballot(ballot)
        self.last_leader_heard = self.sim.now
        self._election_attempts = 0
        return self._advance_commit(upto, ballot)

    def _advance_commit(self, upto: int, ballot: int
                        ) -> List[Tuple[int, tuple]]:
        """Commit instances covered by a leader watermark, but only
        where the locally accepted ballot matches — mismatches (we
        missed the chosen value) fall back to LEARN_REQ."""
        self._known_commit_upto = max(self._known_commit_upto, upto)
        for inst in range(self.commit_upto + 1, upto + 1):
            if inst in self.committed:
                continue
            acc = self.accepted.get(inst)
            if acc is not None and acc[0] == ballot:
                self.committed[inst] = acc[1]
        while self.commit_upto + 1 in self.committed:
            self.commit_upto += 1
        self._deliver_ready()
        if self.commit_upto < self._known_commit_upto:
            return self._learn_request()
        return []

    # -- phase 1 (elections) -------------------------------------------------

    def _next_ballot(self) -> int:
        floor = max(self.ballot, self.promised, self._electing or 0)
        ballot = (floor // self.M + 1) * self.M + self.my_member_rank
        while ballot <= floor:
            ballot += self.M
        return ballot

    def _start_election(self) -> List[Tuple[int, tuple]]:
        ballot = self._next_ballot()
        self._electing = ballot
        self._set_promised(ballot)
        self._election_attempts += 1
        self.last_leader_heard = self.sim.now
        self._p1b_from = {self.my_member_rank}
        self._p1b_acc = {inst: acc for inst, acc in self.accepted.items()
                         if inst > self.commit_upto}
        self._p1b_com = {}
        if len(self._p1b_from) >= self._majority():
            return self._become_leader()
        message = ("p1a", ballot, self.commit_upto)
        return [(dst, message) for dst in self._others()]

    def _on_p1a(self, src, message):
        _kind, ballot, peer_upto = message
        if ballot <= self.promised:
            return []
        self._set_promised(ballot)
        if self.is_leader and ballot > self.ballot:
            self.is_leader = False
        self.last_leader_heard = self.sim.now  # damp dueling elections
        acc_items = []
        for inst in sorted(self.accepted):
            if inst > max(peer_upto, self.commit_upto):
                aballot, entry = self.accepted[inst]
                acc_items.append((inst, aballot, entry))
        com_items = []
        budget = self.cfg.max_batch_bytes
        for inst in range(peer_upto + 1, self.commit_upto + 1):
            entry = self.committed[inst]
            budget -= (entry[3] or 0) + 64
            if budget < 0:
                break  # the rest flows through learnreq once it leads
            com_items.append((inst, entry))
        return [(src, ("p1b", ballot, self.my_member_rank, self.commit_upto,
                       tuple(acc_items), tuple(com_items)))]

    def _on_p1b(self, src, message):
        _kind, ballot, member_rank, peer_upto, acc_items, com_items = message
        if self._electing != ballot:
            return []
        self._p1b_from.add(member_rank)
        for inst, entry in com_items:
            self._p1b_com.setdefault(inst, entry)
        for inst, aballot, entry in acc_items:
            current = self._p1b_acc.get(inst)
            if current is None or aballot > current[0]:
                self._p1b_acc[inst] = (aballot, entry)
        self._known_commit_upto = max(self._known_commit_upto, peer_upto)
        if len(self._p1b_from) >= self._majority():
            return self._become_leader()
        return []

    def _become_leader(self) -> List[Tuple[int, tuple]]:
        self.ballot = self._electing
        self._set_promised(self.ballot)
        self._electing = None
        self._election_attempts = 0
        self.is_leader = True
        self.leader_changes += 1
        self.last_leader_heard = self.sim.now
        for inst, entry in self._p1b_com.items():
            self.committed.setdefault(inst, entry)
        while self.commit_upto + 1 in self.committed:
            self.commit_upto += 1
        self._deliver_ready()
        # Re-propose every surviving accepted value above the watermark
        # under the new ballot; plug true gaps with noops.
        recover = {inst: acc[1] for inst, acc in self._p1b_acc.items()
                   if inst > self.commit_upto and inst not in self.committed}
        top = max([self.commit_upto] + list(recover)
                  + [inst for inst in self.committed])
        self.next_inst = top + 1
        self._p2b_acks.clear()
        self._unacked.clear()
        self._seen_fwd = {(e[0], e[1], e[2])
                          for e in self.committed.values() if not e[6]}
        batch: List[Tuple[int, tuple]] = []
        for inst in range(self.commit_upto + 1, self.next_inst):
            if inst in self.committed:
                continue
            entry = recover.get(inst, _NOOP)
            if not entry[6]:
                self._seen_fwd.add((entry[0], entry[1], entry[2]))
            self._self_accept(inst, entry)
            batch.append((inst, entry))
        out = []
        if batch:
            message = ("p2a", self.ballot, self.commit_upto, tuple(batch))
            out.extend((dst, message) for dst in self._others())
        hb = ("hb", self.ballot, self.commit_upto)
        out.extend((dst, hb) for dst in self._others())
        self._last_heartbeat = self.sim.now
        return out

    def _observe_ballot(self, ballot: int) -> None:
        if ballot > self.ballot:
            self.ballot = ballot
            self._set_promised(ballot)
            self.is_leader = False
            self._electing = None

    # -- catch-up ------------------------------------------------------------

    def _learn_request(self) -> List[Tuple[int, tuple]]:
        self._last_learn_req = self.sim.now
        target = self.members[self.leader_member_rank()]
        if target == self.node_id:
            return []
        return [(target, ("learnreq", self.my_member_rank,
                          self.commit_upto + 1))]

    def _on_learnreq(self, src, message):
        _kind, member_rank, from_inst = message
        items = []
        budget = self.cfg.max_batch_bytes
        for inst in range(from_inst, self.commit_upto + 1):
            entry = self.committed[inst]
            budget -= (entry[3] or 0) + 64
            if budget < 0:
                break
            items.append((inst, entry))
        if not items and self.commit_upto < from_inst:
            return []
        return [(self.members[member_rank],
                 ("learnresp", self.commit_upto, tuple(items)))]

    def _on_learnresp(self, src, message):
        _kind, upto, items = message
        for inst, entry in items:
            self.committed.setdefault(inst, entry)
        self._known_commit_upto = max(self._known_commit_upto, upto)
        while self.commit_upto + 1 in self.committed:
            self.commit_upto += 1
        self._deliver_ready()
        if self.commit_upto < self._known_commit_upto:
            return self._learn_request()
        return []

    # -- timers --------------------------------------------------------------

    def _on_tick(self) -> List[Tuple[int, tuple]]:
        now = self.sim.now
        cfg = self.cfg
        out: List[Tuple[int, tuple]] = []
        if self.is_leader:
            self.last_leader_heard = now
            if now - self._last_heartbeat >= cfg.heartbeat_period:
                self._last_heartbeat = now
                hb = ("hb", self.ballot, self.commit_upto)
                out.extend((dst, hb) for dst in self._others())
            retrans: List[Tuple[int, tuple]] = []
            for inst in sorted(self._unacked):
                entry, last = self._unacked[inst]
                if now - last >= cfg.retransmit_timeout:
                    self._unacked[inst][1] = now
                    retrans.append((inst, entry))
                if len(retrans) >= cfg.max_batch:
                    break
            if retrans:
                message = ("p2a", self.ballot, self.commit_upto,
                           tuple(retrans))
                out.extend((dst, message) for dst in self._others())
        elif self.M > 1:
            backoff = 2 ** min(self._election_attempts, 4)
            timeout = (cfg.election_timeout
                       * (1 + 0.5 * self.my_member_rank) * backoff
                       + self.rng.random() * cfg.election_jitter)
            if now - self.last_leader_heard >= timeout:
                out.extend(self._start_election())
        # client retransmits (leader change / lost forwards)
        for oseq in sorted(self.outstanding):
            size, payload, queued_at, last = self.outstanding[oseq]
            if now - last >= cfg.retransmit_timeout:
                out.append(self._forward(oseq))
        # learner catch-up nudge
        if (self.commit_upto < self._known_commit_upto
                and now - self._last_learn_req >= cfg.retransmit_timeout):
            out.extend(self._learn_request())
        return out

    # ============================================================= delivery

    def _deliver_ready(self) -> None:
        """Walk newly committed instances; sequence per-origin FIFO."""
        while self.delivered_upto < self.commit_upto:
            self.delivered_upto += 1
            entry = self.committed[self.delivered_upto]
            if entry[6]:
                self.stats.record_null_skipped()
                continue
            self._sequence(entry)

    def _sequence(self, entry: tuple) -> None:
        origin, inc, oseq = entry[0], entry[1], entry[2]
        cursor_inc, cursor_next = self._cursor[origin]
        if inc < cursor_inc or (inc == cursor_inc and oseq < cursor_next):
            return  # duplicate (chosen twice across a leader change)
        buffer = self._reorder[origin]
        if (inc, oseq) in buffer:
            return
        buffer[(inc, oseq)] = entry
        if inc > cursor_inc:
            # The origin restarted: flush what remains of the old
            # incarnation in oseq order (its tail may be lost — that is
            # a crashed sender's prerogative), then start the new one.
            for key in sorted(k for k in buffer if k[0] == cursor_inc):
                self._deliver(buffer.pop(key))
            cursor_inc, cursor_next = inc, 0
        while (cursor_inc, cursor_next) in buffer:
            self._deliver(buffer.pop((cursor_inc, cursor_next)))
            cursor_next += 1
        self._cursor[origin] = (cursor_inc, cursor_next)

    def _deliver(self, entry: tuple) -> None:
        origin, inc, oseq, size, payload, queued_at, _noop = entry
        seq = self.delivered_count
        self.delivered_count += 1
        self.stats.record_delivery(self.sim.now, origin, size, queued_at)
        self._pending_upcalls += 1
        if origin == self.my_rank and inc == self.incarnation:
            if self.outstanding.pop(oseq, None) is not None:
                self.slot_doorbell.ring()
        if self.deliver_cb is not None:
            self.deliver_cb(Delivery(self.subgroup_id, self.senders[origin],
                                     origin, seq, payload, size))

    def __repr__(self) -> str:
        role = "leader" if self.is_leader else "follower"
        return (f"<PaxosEndpoint sg{self.subgroup_id}@{self.node_id} "
                f"{role} b={self.ballot} commit={self.commit_upto}>")


class PaxosGroup:
    """One node's Paxos stack for a view — mirrors the
    :class:`~repro.core.group.GroupNode` surface the cluster, apps and
    tracers rely on (see :class:`~repro.ordering.base.OrderingBackend`).
    """

    def __init__(self, sim, fabric, rdma_node, view, config: PaxosConfig,
                 timing: TimingModel, metrics=None, seed: int = 0,
                 storage=None):
        from ..metrics.registry import null_registry

        self.sim = sim
        self.fabric = fabric
        self.rdma_node = rdma_node
        self.node_id = rdma_node.node_id
        self.view = view
        self.config = config
        self.timing = timing
        self.metrics = metrics if metrics is not None else null_registry()
        self.membership = None
        self.persistence: Dict[int, Any] = {}
        scope = self.metrics.scoped(node=self.node_id, view=view.view_id)
        self.multicasts: Dict[int, PaxosEndpoint] = {}
        self._delivery_callbacks: Dict[int, List] = {}
        for sg in view.subgroups:
            if self.node_id not in sg.members:
                continue
            # The acceptor WAL lives on cluster stable storage so it
            # survives crashes and epoch restarts (durable mode only).
            device = (storage.device(self.node_id, f"paxos{sg.subgroup_id}")
                      if config.durable_acceptors and storage is not None
                      else None)
            self.multicasts[sg.subgroup_id] = PaxosEndpoint(
                sim, fabric, sg.subgroup_id, sg.members, sg.senders,
                window=sg.window, config=config, timing=timing,
                deliver_cb=self._make_dispatcher(sg.subgroup_id),
                stats=SubgroupStats(registry=scope, node=self.node_id,
                                    subgroup=sg.subgroup_id),
                seed=seed, delivery_mode=sg.delivery_mode,
                node_id=self.node_id, device=device)
            self._delivery_callbacks[sg.subgroup_id] = []

    def _make_dispatcher(self, subgroup_id: int):
        def dispatch(delivery: Delivery) -> None:
            for callback in self._delivery_callbacks[subgroup_id]:
                callback(delivery)

        return dispatch

    # ------------------------------------------------------------ public API

    def subgroup(self, subgroup_id: int) -> PaxosEndpoint:
        return self.multicasts[subgroup_id]

    def on_delivery(self, subgroup_id: int, callback) -> None:
        self._delivery_callbacks[subgroup_id].append(callback)

    def stats(self, subgroup_id: int) -> SubgroupStats:
        return self.multicasts[subgroup_id].stats

    def start(self) -> None:
        for endpoint in self.multicasts.values():
            endpoint.start()

    def stop(self) -> None:
        for endpoint in self.multicasts.values():
            endpoint.stop()

    def kill(self) -> None:
        self.stop()

    def handle_restart(self) -> None:
        """Crash-recovery: respawn every endpoint as a fresh-incarnation
        follower that re-learns the log (docs/ORDERING.md)."""
        for endpoint in self.multicasts.values():
            endpoint.restart()

    def teardown(self) -> None:
        for endpoint in self.multicasts.values():
            endpoint.teardown()

    def protocol_processes(self, scope: str = "node") -> List[Any]:
        """Live protocol threads, for fault-plane stalls."""
        procs = []
        for endpoint in self.multicasts.values():
            procs.extend(p for p in endpoint._procs if p.alive)
        return procs

    def __repr__(self) -> str:
        return f"<PaxosGroup {self.node_id} view={self.view.view_id}>"


class PaxosBackend(OrderingBackend):
    """``Cluster(backend="paxos")``: the Multi-Paxos baseline."""

    name = "paxos"
    view_synchronous = False
    quiesces = False

    def __init__(self, config: Optional[PaxosConfig] = None):
        self.config = config if config is not None else PaxosConfig()

    def build_groups(self, cluster, view) -> Dict[int, PaxosGroup]:
        groups = {}
        for node_id in view.members:
            groups[node_id] = PaxosGroup(
                cluster.sim, cluster.fabric, cluster.fabric.nodes[node_id],
                view, self.config, cluster.timing, metrics=cluster.metrics,
                seed=cluster.seed, storage=cluster.storage)
        for sg in view.subgroups:
            wire_transports({
                node_id: groups[node_id].multicasts[sg.subgroup_id].transport
                for node_id in sg.members})
        return groups

    def on_node_restart(self, cluster, node_id: int) -> None:
        group = cluster.groups.get(node_id)
        if group is not None:
            group.handle_restart()

"""SMC — small-message multicast: ring-buffer slots over the SST (§2.3)."""

from .multicast import SMC, SubgroupColumns
from .ring import SlotValue, contiguous_seq, ring_spans, seq_of, slot_position

__all__ = [
    "SMC",
    "SubgroupColumns",
    "SlotValue",
    "contiguous_seq",
    "ring_spans",
    "seq_of",
    "slot_position",
]

"""Ring-buffer arithmetic and slot values for the SMC (paper §2.3).

Each sender in a subgroup owns ``w`` (window size) slot columns in its
SST row, used in ring-buffer order for consecutive messages. A slot
holds the message area plus a counter; an increase of the counter
signals a new message.

Terminology used throughout the multicast core:

* ``real_index`` — per-sender count of *application* messages; message
  ``real_index=k`` lives in slot ``k % w``. (The paper's slot counter is
  ``k // w``, the wrap count; carrying ``k`` itself is equivalent and
  makes assertions crisper.)
* ``round_index`` — the message's round in the round-robin delivery
  order, i.e. its index among *all* of this sender's messages including
  nulls. The global sequence number of a message from the sender with
  rank ``j`` is ``round_index * num_senders + j``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

__all__ = ["SlotValue", "slot_position", "ring_spans", "contiguous_seq", "seq_of"]


@dataclass(frozen=True)
class SlotValue:
    """Contents of one SMC slot: counter metadata + message payload.

    ``payload`` is either ``bytes`` (content-faithful mode) or ``None``
    (timing-only mode used by the large benchmarks); ``size`` always
    carries the application payload size that drives transfer timing.
    """

    real_index: int
    round_index: int
    size: int
    payload: Optional[bytes]
    queued_at: float


def slot_position(real_index: int, window: int) -> int:
    """Ring-buffer slot used by the message with ``real_index``."""
    return real_index % window


def ring_spans(lo: int, hi: int, window: int) -> List[Tuple[int, int]]:
    """Contiguous slot spans covering real indices ``[lo, hi)``.

    Returns at most two ``(first_slot, count)`` spans — the send batch
    wraps around the ring at most once because at most ``window``
    messages can be outstanding (paper §3.2: "if the queued sends have
    wrapped around the ring buffer, it issues two RDMA writes").
    """
    count = hi - lo
    if count < 0 or count > window:
        raise ValueError(f"span [{lo}, {hi}) exceeds window {window}")
    if count == 0:
        return []
    first = lo % window
    head = min(count, window - first)
    spans = [(first, head)]
    if count > head:
        spans.append((0, count - head))
    return spans


def contiguous_seq(covered: Sequence[int], num_senders: int) -> int:
    """Highest sequence number ``s`` such that all messages with
    ``seq <= s`` are covered, given per-sender covered-round counts.

    ``covered[j]`` is the number of rounds (real + null messages) from
    the sender with rank ``j`` that this node has accounted for. This is
    the computation behind ``received_num`` (paper §2.2).

    >>> contiguous_seq([2, 2], 2)   # both senders through round 1
    3
    >>> contiguous_seq([3, 2], 2)   # rank 0 ahead by one round
    4
    """
    if len(covered) != num_senders or num_senders == 0:
        raise ValueError("covered must have one entry per sender")
    full_rounds = min(covered)
    seq = full_rounds * num_senders - 1
    for j in range(num_senders):
        if covered[j] > full_rounds:
            seq = full_rounds * num_senders + j
        else:
            break
    return seq


def seq_of(round_index: int, sender_rank: int, num_senders: int) -> int:
    """Global sequence number of message ``M(sender_rank, round_index)``."""
    return round_index * num_senders + sender_rank

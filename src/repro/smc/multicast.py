"""SMC — the small-message multicast mechanics over SST slots.

This module owns the *mechanics* of the per-subgroup slot block inside
the SST: writing messages into ring slots, reading peers' slots, and
pushing contiguous slot spans to subgroup members (one or two RDMA
writes per member, §3.2). The *policy* — when to send, when a slot is
reusable, ordering, acknowledgments — lives in
:mod:`repro.core.multicast`.

Column layout per subgroup (allocated by the group builder, contiguous):

    [received_num][delivered_num][nulls][slot 0] ... [slot w-1]

Keeping the three control counters adjacent means any acknowledgment
pushes the whole 24-byte control span in a single RDMA write, which is
both what Derecho does (contiguous row ranges) and what makes batched
acks one-write cheap.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Sequence

from ..metrics.registry import null_registry
from ..sst.table import SST
from .ring import SlotValue, ring_spans, slot_position

__all__ = ["SubgroupColumns", "SMC"]


class SubgroupColumns:
    """Column indices of one subgroup's block in the SST layout."""

    __slots__ = ("received", "delivered", "nulls", "persisted",
                 "recv_from0", "num_senders", "first_slot", "window")

    def __init__(self, received: int, delivered: int, nulls: int,
                 first_slot: int, window: int,
                 recv_from0: int = -1, num_senders: int = 0,
                 persisted: int = -1):
        self.received = received
        self.delivered = delivered
        self.nulls = nulls
        self.persisted = persisted
        self.recv_from0 = recv_from0
        self.num_senders = num_senders
        self.first_slot = first_slot
        self.window = window

    @classmethod
    def declare(cls, layout, subgroup_id: int, window: int,
                message_size: int, num_senders: int = 0,
                per_sender_acks: bool = False,
                persistent: bool = False) -> "SubgroupColumns":
        """Append this subgroup's columns to a layout being built.

        ``per_sender_acks`` adds one receive-ack counter per sender —
        used by the unordered (DDS QoS 1) mode, where slot reuse cannot
        rely on contiguous-sequence delivery acknowledgments.
        ``persistent`` adds the persisted_num column of the durable
        delivery mode.
        """
        received = layout.counter(f"sg{subgroup_id}.received_num")
        delivered = layout.counter(f"sg{subgroup_id}.delivered_num")
        nulls = layout.counter(f"sg{subgroup_id}.nulls", initial=0)
        persisted = -1
        if persistent:
            persisted = layout.counter(f"sg{subgroup_id}.persisted_num")
        recv_from0 = -1
        if per_sender_acks:
            recv_from0 = layout.counter(f"sg{subgroup_id}.recv_from0", initial=0)
            for j in range(1, num_senders):
                layout.counter(f"sg{subgroup_id}.recv_from{j}", initial=0)
        first_slot = layout.slot(f"sg{subgroup_id}.slot0", message_size)
        for i in range(1, window):
            layout.slot(f"sg{subgroup_id}.slot{i}", message_size)
        return cls(received, delivered, nulls, first_slot, window,
                   recv_from0, num_senders if per_sender_acks else 0,
                   persisted)

    def recv_from(self, sender_rank: int) -> int:
        """Per-sender receive-ack column (unordered mode only)."""
        if self.recv_from0 < 0:
            raise ValueError("subgroup has no per-sender ack columns")
        return self.recv_from0 + sender_rank

    @property
    def control_span(self):
        """(lo, hi) column span of the control counters (including the
        persisted_num and per-sender ack columns when present)."""
        if self.num_senders:
            return self.received, self.recv_from0 + self.num_senders
        if self.persisted >= 0:
            return self.received, self.persisted + 1
        return self.received, self.nulls + 1


class SMC:
    """One node's slot-block mechanics for one subgroup."""

    def __init__(self, sst: SST, cols: SubgroupColumns, members: Sequence[int],
                 metrics: Optional[Any] = None):
        self.sst = sst
        self.cols = cols
        self.members = list(members)
        self.window = cols.window
        self._peers = [m for m in self.members if m != sst.node_id]
        # -- metrics plane: RDMA write counts by purpose (§4.1.1) --------------
        metrics = metrics if metrics is not None else null_registry()
        self._slot_writes = metrics.counter(
            "spindle_smc_writes_total",
            "RDMA writes posted for message-slot spans", purpose="slots")
        self._control_writes = metrics.counter(
            "spindle_smc_writes_total",
            "RDMA writes posted for the control span (acks/nulls)",
            purpose="control")

    # ----------------------------------------------------------- local slots

    def write_slot(self, value: SlotValue) -> None:
        """Place a message into the local ring slot for its real_index."""
        pos = slot_position(value.real_index, self.window)
        self.sst.set(self.cols.first_slot + pos, value)

    def read_slot(self, sender: int, real_index: int) -> Optional[SlotValue]:
        """Read the slot where ``sender``'s message ``real_index`` would be.

        Returns the current occupant (possibly an older wrap) or None.
        """
        pos = slot_position(real_index, self.window)
        return self.sst.read(sender, self.cols.first_slot + pos)

    def has_message(self, sender: int, real_index: int) -> bool:
        """True if ``sender``'s message with ``real_index`` has arrived."""
        slot = self.read_slot(sender, real_index)
        return slot is not None and slot.real_index == real_index

    # ----------------------------------------------------------------- push

    def push_messages(self, lo: int, hi: int) -> Generator[float, None, int]:
        """Push local messages with real indices ``[lo, hi)`` to peers.

        At most two RDMA writes per peer (ring wrap-around). A generator
        to ``yield from`` — each post charges the caller CPU. Returns
        the number of RDMA writes posted.
        """
        spans = ring_spans(lo, hi, self.window)
        posted = 0
        for first, count in spans:
            col_lo = self.cols.first_slot + first
            yield from self.sst.push(col_lo, col_lo + count, self._peers)
            posted += len(self._peers)
        self._slot_writes.inc(posted)
        return posted

    def push_control(self) -> Generator[float, None, None]:
        """Push the control span (received/delivered/nulls) to peers —
        the (possibly batched) acknowledgment write."""
        lo, hi = self.cols.control_span
        yield from self.sst.push(lo, hi, self._peers)
        self._control_writes.inc(len(self._peers))

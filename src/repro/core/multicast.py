"""The Derecho atomic multicast protocol with the Spindle optimizations.

One :class:`SubgroupMulticast` object is one node's protocol endpoint in
one subgroup. It owns the sender-side ring-buffer bookkeeping, the
receiver-side per-sender scan state, and the three predicates of §2.4
(send, receive, delivery), in both their baseline (pre-Spindle) and
optimized (§3.2–§3.4) forms, selected by
:class:`~repro.core.config.SpindleConfig`:

* ``batch_send``   — send trigger pushes *all* queued messages (≤ 2 RDMA
  writes per member) vs. one message per trigger.
* ``batch_receive`` — receive trigger sweeps every sender's slots and
  acknowledges once vs. consuming a single message and acknowledging it.
* ``batch_delivery`` — delivery trigger delivers every stable message
  and acknowledges once vs. one message per trigger.
* ``null_sends``   — §3.3 null-send scheme (see below).
* ``early_lock_release`` — handled by the predicate thread (§3.4): the
  trigger returns its RDMA posts as a deferred generator.

Round/sequence bookkeeping
--------------------------

Every message (application or null) from the sender with rank ``j``
occupies one *round* ``k``; its global sequence number is
``k * S + j`` (S = number of senders), which is exactly the paper's
round-robin total order. Application ("real") messages additionally
carry a per-sender ``real_index`` that determines their ring slot.

Nulls are announced through a monotonic per-subgroup SST counter rather
than by occupying ring slots — the paper's "sends the determined number
of nulls as a single integer" (§3.3). Because a node's SST pushes and
slot pushes travel on the same queue pair (FIFO), a receiver's covered
round count for sender ``j`` is simply
``reals_received[j] + nulls_seen[j]``, and the covered rounds are always
the contiguous prefix ``0..covered-1``.

The null-send rule is the paper's: on receiving message ``M(j, k)``,
a sender with rank ``i`` and current round ``l`` sends a null iff that
null would precede ``M(j, k)`` in the delivery order, i.e.
``l < k or (l == k and i < j)``. Nulls are only assigned when the sender
has no queued-but-unsent application messages; this preserves the
invariant that round announcements reach peers in round order.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Generator, List, Optional, Sequence, Tuple

from ..metrics.stages import (
    STAGE_DELIVERY_PREDICATE,
    STAGE_RECEIVE_PREDICATE,
    STAGE_SEND_PREDICATE,
)
from ..ordering.base import OrderingEndpoint
from ..predicates.framework import Predicate, PredicateThread
from ..sim.engine import AtTime, Simulator
from ..sim.sync import Doorbell
from ..smc.multicast import SMC, SubgroupColumns
from ..smc.ring import SlotValue, contiguous_seq, seq_of
from ..sst.table import SST
from .config import SpindleConfig, TimingModel
from .stats import SubgroupStats

__all__ = ["SubgroupMulticast", "Delivery"]


class Delivery:
    """One delivered application message as handed to the upcall."""

    __slots__ = ("subgroup_id", "sender", "sender_rank", "seq", "payload", "size")

    def __init__(self, subgroup_id: int, sender: int, sender_rank: int,
                 seq: int, payload: Optional[bytes], size: int):
        self.subgroup_id = subgroup_id
        self.sender = sender
        self.sender_rank = sender_rank
        self.seq = seq
        self.payload = payload
        self.size = size

    def __repr__(self) -> str:
        return (f"<Delivery sg{self.subgroup_id} seq={self.seq} "
                f"from={self.sender} {self.size}B>")


class SubgroupMulticast(OrderingEndpoint):
    """One node's atomic multicast endpoint in one subgroup.

    The Spindle implementation of the
    :class:`~repro.ordering.base.OrderingEndpoint` contract
    (docs/ORDERING.md): :meth:`propose` is :meth:`send`, the stable
    prefix is the min received column, and congestion is ring-window
    occupancy."""

    has_send_window = True
    view_synchronous = True

    def __init__(
        self,
        sim: Simulator,
        sst: SST,
        cols: SubgroupColumns,
        subgroup_id: int,
        members: Sequence[int],
        senders: Sequence[int],
        config: SpindleConfig,
        timing: TimingModel,
        thread: PredicateThread,
        deliver_cb: Optional[Callable[[Delivery], None]] = None,
        stats: Optional[SubgroupStats] = None,
        delivery_mode: str = "atomic",
        extra_delivery_cost: Optional[Callable[[int], float]] = None,
    ):
        if not senders:
            raise ValueError("subgroup needs at least one sender")
        if any(s not in members for s in senders):
            raise ValueError("senders must be subgroup members")
        if delivery_mode not in ("atomic", "unordered"):
            raise ValueError(f"unknown delivery mode {delivery_mode!r}")
        self.delivery_mode = delivery_mode
        #: Per-message application-side delivery cost hook (seconds as a
        #: function of payload size) — used by the DDS storage QoS levels.
        self.extra_delivery_cost = extra_delivery_cost
        self.sim = sim
        self.sst = sst
        self.cols = cols
        self.subgroup_id = subgroup_id
        self.members = list(members)
        self.senders = list(senders)
        self.S = len(senders)
        self.window = cols.window
        self.config = config
        self.timing = timing
        self.thread = thread
        self.deliver_cb = deliver_cb
        self.stats = stats if stats is not None else SubgroupStats()
        self.smc = SMC(sst, cols, members, metrics=self.stats.scope)
        self.node_id = sst.node_id
        self._rank_of = {node: rank for rank, node in enumerate(self.senders)}
        self.my_rank: Optional[int] = self._rank_of.get(self.node_id)

        # -- sender-side state (meaningful only if my_rank is not None) -------
        self.next_round = 0        # rounds assigned (reals queued + nulls)
        self.reals_queued = 0      # application messages placed in slots
        self.reals_pushed = 0      # application messages sent via RDMA
        self.nulls_announced = 0   # own nulls counter (mirrors SST cell)
        #: own queued-but-not-globally-delivered reals: (real_index, seq)
        self.own_inflight: Deque[Tuple[int, int]] = deque()
        #: set by the workload when it will send no more (flushes the
        #: fixed-batch ablation; harmless otherwise).
        self.finished_sending = False
        #: wedged by the view-change protocol: no new sends.
        self.wedged = False
        #: woken when delivery progress may have freed ring slots.
        self.slot_doorbell = Doorbell(sim, name=f"sg{subgroup_id}.slots@{self.node_id}")

        # -- receiver-side state ----------------------------------------------
        self.reals_received = [0] * self.S
        self.nulls_seen = [0] * self.S
        self.pending: List[Deque[SlotValue]] = [deque() for _ in range(self.S)]
        self.received_seq = -1
        self.delivered_seq = -1
        #: Bumped whenever the receive trigger mutates its scan state
        #: (reals_received / nulls_seen) — part of the receive
        #: predicate's memoization token, covering the inputs that can
        #: change without any SST row being written.
        self.recv_generation = 0

        # -- predicates ---------------------------------------------------------
        self.send_predicate = _SendPredicate(self)
        self.receive_predicate = _ReceivePredicate(self)
        self.delivery_predicate = _DeliveryPredicate(self)

    def register_predicates(self) -> None:
        """Register this subgroup's predicates with the polling thread.

        Order matters for fairness accounting only; the paper evaluates
        all subgroups' predicates in a fixed cyclic order.
        """
        if self.my_rank is not None:
            self.thread.register(self.send_predicate)
        self.thread.register(self.receive_predicate)
        if self.delivery_mode == "atomic":
            # Unordered mode delivers in the receive trigger; there is
            # no stability stage.
            self.thread.register(self.delivery_predicate)

    # ======================================================================
    # Application-thread API (simulated generators)
    # ======================================================================

    def send(self, size: int, payload: Optional[bytes] = None
             ) -> Generator[Any, Any, int]:
        """Send one atomic multicast: claim a slot, construct the message
        in place, queue it for the send predicate.

        A generator for the application's sender thread to ``yield
        from``. Returns the message's ``real_index``. Blocks (in
        simulated time) while the ring window is full. Raises
        ``RuntimeError`` at first resumption once wedged (the
        conformance contract; a wedge mid-wait still raises from
        :meth:`queue_message`).
        """
        if self.wedged:
            raise RuntimeError("subgroup is wedged (view change in progress)")
        yield from self.claim_slot()
        cost = self.timing.message_construct
        if self.config.copy_on_send:
            cost += self.timing.memcpy_time(size)
        yield cost
        real_index = yield from self.queue_message(size, payload)
        return real_index

    #: Backend-generic alias: the returned ``real_index`` is this
    #: sender's 0-based ticket, as :meth:`OrderingEndpoint.propose`
    #: requires (round-robin order delivers each sender's reals in
    #: real_index order, exactly once).
    propose = send

    def claim_slot(self) -> Generator[Any, Any, int]:
        """Wait until the ring slot for the next message is reusable.

        A slot is free when the message that last used it has been
        delivered by *every* member (§2.3). Lock-free: reads only
        monotonic SST state and sender-thread-private bookkeeping.
        """
        blocked = False
        wait_start = self.sim.now
        while True:
            self._reap_acked()
            if len(self.own_inflight) < self.window:
                break
            if not blocked:
                blocked = True
                self.stats.record_blocked_send()
            yield self.slot_doorbell.wait()
        if blocked:
            # §4.1.1 sender wait == the send_slot_acquire stage timer.
            self.stats.add_sender_wait(self.sim.now - wait_start)
        return self.reals_queued

    def queue_message(self, size: int, payload: Optional[bytes]
                      ) -> Generator[Any, Any, int]:
        """Place a constructed message in its slot and mark it ready.

        Takes the shared lock: the slot counter, round assignment and
        queued count are shared with the predicate thread (§2.4).
        """
        if self.my_rank is None:
            raise RuntimeError(f"node {self.node_id} is not a sender in "
                               f"subgroup {self.subgroup_id}")
        if self.wedged:
            raise RuntimeError("subgroup is wedged (view change in progress)")
        timing = self.timing
        thread = self.thread
        if thread.fastpath and thread.lock.acquire_nowait():
            # Folded fast path (optimized engine): same grant instant,
            # same body instant t_a = now + lock_op, same release instant
            # t_c = (t_a + send_queue_cost) + lock_op — in two scheduler
            # turns instead of four (see docs/ENGINE.md).
            t_a = self.sim.now + timing.lock_op
            yield AtTime(t_a)
            real_index = self._queue_message_body(size, payload)
            yield AtTime((t_a + timing.send_queue_cost) + timing.lock_op)
            thread.lock.release()
            thread.doorbell.ring()
            return real_index
        yield thread.lock.acquire()
        yield timing.lock_op
        real_index = self._queue_message_body(size, payload)
        yield timing.send_queue_cost
        yield timing.lock_op
        thread.lock.release()
        thread.doorbell.ring()
        return real_index

    def _queue_message_body(self, size: int, payload: Optional[bytes]) -> int:
        """The under-lock slot assignment (shared by both lock paths).

        Both callers hold ``thread.lock``; the fast path acquires it
        via ``acquire_nowait``, which the static lockset pass does not
        model as an acquire."""
        round_index = self.next_round
        self.next_round += 1  # spindle-lint: allow[lockset-unprotected-write]
        real_index = self.reals_queued
        self.reals_queued += 1
        slot = SlotValue(real_index, round_index, size, payload, self.sim.now)
        self.smc.write_slot(slot)
        self.own_inflight.append(
            (real_index, seq_of(round_index, self.my_rank, self.S))
        )
        self.stats.record_send(self.sim.now)
        return real_index

    def declare_inactive(self, rounds: int) -> Generator[Any, Any, None]:
        """§3.3: declare a known period of inactivity by announcing
        ``rounds`` nulls at once, letting peers' deliveries skip over
        this sender without waiting."""
        if self.my_rank is None:
            raise RuntimeError("only senders can declare inactivity")
        if rounds <= 0:
            raise ValueError("rounds must be positive")
        yield self.thread.lock.acquire()
        if self.reals_queued != self.reals_pushed:
            # Queued-but-unsent reals must keep their round ordering.
            self.thread.lock.release()
            raise RuntimeError("cannot declare inactivity with queued sends")
        self._announce_nulls(rounds)
        self.thread.lock.release()
        yield from self.smc.push_control()

    def mark_finished(self) -> None:
        """Tell the protocol this node will send no more (workload end)."""
        self.finished_sending = True
        self.thread.doorbell.ring()

    # ======================================================================
    # View-change support (called by the membership protocol)
    # ======================================================================

    def wedge(self) -> None:
        """Stop initiating multicasts (view change in progress)."""
        self.wedged = True

    def force_deliver_up_to(self, trim: int) -> int:
        """Ragged-edge cleanup: deliver every message with seq <= trim.

        The view-change leader guarantees trim = min over survivors of
        received_num, so this node necessarily holds all these messages;
        no per-message stability check is needed (or possible — failed
        members will never acknowledge). Returns the number of
        application messages delivered.
        """
        delivered = 0
        s = self.delivered_seq
        while s < trim:
            s += 1
            rank = s % self.S
            k = s // self.S
            dq = self.pending[rank]
            if dq and dq[0].round_index == k:
                slot = dq.popleft()
                self.stats.record_delivery(
                    self.sim.now, rank, slot.size, slot.queued_at
                )
                if self.deliver_cb is not None:
                    self.deliver_cb(Delivery(
                        self.subgroup_id, self.senders[rank], rank, s,
                        slot.payload, slot.size,
                    ))
                delivered += 1
            else:
                self.stats.record_null_skipped()
        if s > self.delivered_seq:
            self.delivered_seq = s
            self.sst.set(self.cols.delivered, s)
        return delivered

    def undelivered_own_messages(self) -> List[SlotValue]:
        """Own messages not delivered by the view that ended — the ones
        virtual synchrony requires the application to resend in the next
        view (paper §2.1)."""
        result = []
        for real_index, seq in self.own_inflight:
            if seq > self.delivered_seq:
                slot = self.smc.read_slot(self.node_id, real_index)
                if slot is not None and slot.real_index == real_index:
                    result.append(slot)
        return result

    # ======================================================================
    # Internals shared by predicates
    # ======================================================================

    def _reap_acked(self) -> None:
        """Pop own messages whose slots may be reused.

        Atomic mode: reusable once delivered by every member (§2.3).
        Unordered mode: reusable once *received* by every member (the
        per-sender ack columns)."""
        if not self.own_inflight:
            return
        inflight = self.own_inflight
        if self.delivery_mode == "unordered":
            col = self.cols.recv_from(self.my_rank)
            min_received = min(self.sst.read(m, col) for m in self.members)
            while inflight and inflight[0][0] < min_received:
                inflight.popleft()
            return
        min_delivered = min(
            self.sst.read(m, self.cols.delivered) for m in self.members
        )
        while inflight and inflight[0][1] <= min_delivered:
            inflight.popleft()

    def _covered(self, rank: int) -> int:
        """Rounds covered (reals + nulls) from the sender with ``rank``."""
        return self.reals_received[rank] + self.nulls_seen[rank]

    def _pending_nulls(self) -> int:
        """§3.3: how many nulls this sender owes right now.

        A null is owed for every own round that would precede the
        highest message received so far in the delivery order
        (``M(i, l) < M(j, k)`` iff ``l < k or (l == k and i < j)``).
        Level-triggered — recomputed from the covered-round counts — so
        demand deferred while application sends were queued (nulls must
        not overtake queued rounds) is honoured once the queue drains.
        """
        i = self.my_rank
        if (i is None or not self.config.null_sends or self.wedged
                or self.reals_queued != self.reals_pushed):
            return 0
        best_round = -1
        best_rank = -1
        for j in range(self.S):
            if j == i:
                continue
            k = self._covered(j) - 1  # highest round received from j
            # '>=' keeps the highest-ranked sender among round ties: a
            # null at round k precedes M(j, k) for any j > i, so the
            # largest j determines the demand.
            if k >= best_round:
                best_round, best_rank = k, j
        if best_round < 0:
            return 0
        target = best_round if i < best_rank else best_round - 1
        return max(0, target - self.next_round + 1)

    def _announce_nulls(self, count: int) -> None:
        """Assign ``count`` null rounds and update the SST counter
        (the push is the caller's responsibility)."""
        self.next_round += count
        self.nulls_announced += count
        self.sst.set(self.cols.nulls, self.nulls_announced)
        self.stats.record_nulls_sent(count)

    def stable_seq(self) -> int:
        """Highest sequence number received by *all* members (min of the
        received_num column — the delivery predicate's test, §2.4)."""
        return min(self.sst.read(m, self.cols.received) for m in self.members)

    def window_in_use(self) -> int:
        """Own ring slots currently occupied by not-yet-stable messages.

        Derived from the SST stability counters (``_reap_acked`` pops
        every message the minimum delivered/received column has passed),
        so ``window_in_use() / window`` is an honest congestion signal:
        1.0 means the next :meth:`claim_slot` would block on the
        slowest member's delivery progress. The request router's
        admission control (repro.shard.router, docs/SHARDING.md) uses
        exactly this ratio to reject-with-retry-after instead of
        letting closed-loop backpressure collapse the client queue.
        """
        self._reap_acked()
        return len(self.own_inflight)

    def stable_prefix(self) -> int:
        """Backend-generic name for :meth:`stable_seq`."""
        return self.stable_seq()

    def congestion(self) -> float:
        """See :meth:`OrderingEndpoint.congestion`: ring occupancy,
        pinned to 1.0 while wedged."""
        if self.wedged:
            return 1.0
        return min(1.0, self.window_in_use() / self.window)


# ==========================================================================
# Predicates
# ==========================================================================


class _SendPredicate(Predicate):
    """Detects queued application messages and pushes them to peers."""

    stage = STAGE_SEND_PREDICATE

    def __init__(self, mc: SubgroupMulticast):
        self.mc = mc
        self.name = f"sg{mc.subgroup_id}.send"
        self.subgroup = mc.subgroup_id

    def evaluate(self):
        mc = self.mc
        cost = mc.timing.predicate_eval
        if mc.wedged:
            return cost, 0
        queued = mc.reals_queued - mc.reals_pushed
        if queued <= 0:
            return cost, 0
        fixed = mc.config.fixed_send_batch
        if fixed > 0 and queued < fixed and not mc.finished_sending:
            return cost, 0  # ablation: wait to accumulate a full batch
        return cost, queued

    def generation(self):
        # Every evaluate() input: the queued/pushed counters plus the
        # wedge and end-of-workload flags (fixed_send_batch is a
        # constant). The cost is a constant too, so token equality
        # implies an identical (cost, value) pair.
        mc = self.mc
        return (mc.reals_queued, mc.reals_pushed, mc.wedged,
                mc.finished_sending)

    def trigger(self, queued: int):
        mc = self.mc
        count = queued if mc.config.batch_send else 1
        lo = mc.reals_pushed
        hi = lo + count
        mc.reals_pushed = hi
        mc.stats.record_send_batch(count)
        yield mc.timing.trigger_base
        # The queue may just have drained: null demand deferred while
        # application rounds were queued becomes due now (§3.3). The
        # announcement travels after the message push on the same QPs,
        # preserving round order at every receiver.
        nulls = mc._pending_nulls()
        if nulls:
            mc._announce_nulls(nulls)
        return self._push_messages_and_nulls(lo, hi, nulls)

    def _push_messages_and_nulls(self, lo: int, hi: int, nulls: int):
        mc = self.mc
        posted = yield from mc.smc.push_messages(lo, hi)
        if nulls:
            yield from mc.smc.push_control()
        return posted


class _ReceivePredicate(Predicate):
    """Scans every sender's slots (and null counters) for new messages,
    advances received_num, and runs the null-send rule (§3.3)."""

    stage = STAGE_RECEIVE_PREDICATE

    def __init__(self, mc: SubgroupMulticast):
        self.mc = mc
        self.name = f"sg{mc.subgroup_id}.receive"
        self.subgroup = mc.subgroup_id
        self._sender_rows = [mc.sst.rows[s] for s in mc.senders]

    def evaluate(self):
        mc = self.mc
        cost = mc.timing.predicate_eval + mc.S * mc.timing.slot_check
        for rank, sender in enumerate(mc.senders):
            if mc.smc.has_message(sender, mc.reals_received[rank]):
                return cost, True
            if mc.sst.read(sender, mc.cols.nulls) > mc.nulls_seen[rank]:
                return cost, True
        return cost, False

    def generation(self):
        # evaluate() reads the senders' SST rows (slots + null counters)
        # and the own scan cursors. Row versions are strictly increasing
        # per write, so their sum changes whenever any watched cell can
        # have changed; recv_generation covers the cursors, which move
        # only in this predicate's own trigger.
        version_sum = 0
        for row in self._sender_rows:
            version_sum += row.version
        return (version_sum, self.mc.recv_generation)

    def trigger(self, _value):
        mc = self.mc
        mc.recv_generation += 1
        timing = mc.timing
        unordered = mc.delivery_mode == "unordered"
        yield timing.trigger_base

        consumed_reals = 0
        consumed_slots: List[Tuple[int, SlotValue]] = []
        cost = 0.0
        for rank, sender in enumerate(mc.senders):
            # -- null announcements from this sender ---------------------------
            announced = mc.sst.read(sender, mc.cols.nulls)
            if announced > mc.nulls_seen[rank]:
                mc.nulls_seen[rank] = announced
            # -- new application messages in the ring --------------------------
            while mc.smc.has_message(sender, mc.reals_received[rank]):
                slot = mc.smc.read_slot(sender, mc.reals_received[rank])
                if unordered:
                    consumed_slots.append((rank, slot))
                else:
                    mc.pending[rank].append(slot)
                mc.reals_received[rank] += 1
                consumed_reals += 1
                cost += timing.receive_per_message
                if not mc.config.batch_receive:
                    break
            if consumed_reals and not mc.config.batch_receive:
                break
        # §3.3 null-send rule, level-triggered on the covered rounds
        # (nulls are withheld while own sends are queued; the send
        # trigger re-checks once the queue drains).
        nulls_to_send = 0 if unordered else mc._pending_nulls()

        if unordered and consumed_slots:
            # QoS "unordered": deliver on receipt, in the receive trigger.
            upcall_cost = 0.0
            for rank, slot in consumed_slots:
                cost += timing.delivery_per_message
                upcall = timing.delivery_upcall
                if mc.config.copy_on_delivery:
                    upcall += timing.memcpy_time(slot.size)
                if mc.extra_delivery_cost is not None:
                    upcall += mc.extra_delivery_cost(slot.size)
                cost += upcall
                upcall_cost += upcall
                mc.stats.record_delivery(
                    mc.sim.now + cost, rank, slot.size, slot.queued_at
                )
            # Nested stage: upcall time inside the receive predicate.
            mc.stats.add_upcall_time(upcall_cost, batches=len(consumed_slots))
        yield cost

        if unordered:
            for rank, slot in consumed_slots:
                mc.sst.set(mc.cols.recv_from(rank), mc.reals_received[rank])
                if mc.deliver_cb is not None:
                    mc.deliver_cb(Delivery(
                        mc.subgroup_id, mc.senders[rank], rank,
                        seq_of(slot.round_index, rank, mc.S),
                        slot.payload, slot.size,
                    ))
            if consumed_slots:
                mc._reap_acked()
                mc.slot_doorbell.ring()

        if nulls_to_send:
            mc._announce_nulls(nulls_to_send)
        if consumed_reals:
            mc.stats.record_received(consumed_reals)
            mc.stats.record_receive_batch(consumed_reals)

        # -- advance received_num -------------------------------------------
        covered = [mc._covered(r) for r in range(mc.S)]
        new_received = contiguous_seq(covered, mc.S)
        ack_needed = new_received > mc.received_seq
        if ack_needed:
            mc.received_seq = new_received
            mc.sst.set(mc.cols.received, new_received)
            if unordered:
                # Delivered == received in unordered mode (diagnostics
                # and the window-freeing fallback path).
                mc.delivered_seq = new_received
                mc.sst.set(mc.cols.delivered, new_received)
        ack_needed = ack_needed or (unordered and bool(consumed_slots))

        if not (ack_needed or nulls_to_send):
            return None
        if mc.config.null_send_batched or nulls_to_send <= 1:
            if nulls_to_send:
                mc.stats.record_null_announce_pushes(1)
            return mc.smc.push_control()
        mc.stats.record_null_announce_pushes(nulls_to_send)
        return self._separate_null_pushes(nulls_to_send, ack_needed)

    def _separate_null_pushes(self, nulls: int, ack_needed: bool):
        """Non-batched null announcements: one control push per null
        (the ablation against §3.3's single-integer batching)."""
        mc = self.mc
        pushes = nulls + (1 if ack_needed else 0)
        for _ in range(pushes):
            yield from mc.smc.push_control()


class _DeliveryPredicate(Predicate):
    """Delivers messages that every member has received, in sequence
    order, skipping null rounds; then acknowledges via delivered_num."""

    stage = STAGE_DELIVERY_PREDICATE

    def __init__(self, mc: SubgroupMulticast):
        self.mc = mc
        self.name = f"sg{mc.subgroup_id}.delivery"
        self.subgroup = mc.subgroup_id
        self._member_rows = [mc.sst.rows[m] for m in mc.members]

    def evaluate(self):
        mc = self.mc
        cost = mc.timing.predicate_eval + len(mc.members) * mc.timing.slot_check
        stable = mc.stable_seq()
        if stable > mc.delivered_seq:
            # Wrapped in a tuple: stable may be 0, which must stay truthy.
            return cost, (stable,)
        return cost, None

    def generation(self):
        # evaluate() reads the members' received columns plus
        # delivered_seq; every delivered_seq advance (trigger or
        # force-deliver) also writes the own delivered column, bumping
        # the own row's version — so the members' version sum covers
        # both.
        version_sum = 0
        for row in self._member_rows:
            version_sum += row.version
        return version_sum

    def trigger(self, value):
        (stable,) = value
        mc = self.mc
        timing = mc.timing
        config = mc.config
        yield timing.trigger_base

        max_seqs = (stable - mc.delivered_seq) if config.batch_delivery else 1
        batch: List[Delivery] = []
        batched_slots: List[Tuple[int, SlotValue]] = []
        s = mc.delivered_seq
        t0 = mc.sim.now
        cost = 0.0
        upcall_cost = 0.0
        processed = 0
        while s < stable and processed < max_seqs:
            s += 1
            processed += 1
            rank = s % mc.S
            k = s // mc.S
            dq = mc.pending[rank]
            if dq and dq[0].round_index == k:
                slot = dq.popleft()
                delivery = Delivery(
                    mc.subgroup_id, mc.senders[rank], rank, s,
                    slot.payload, slot.size,
                )
                batch.append(delivery)
                cost += timing.delivery_per_message
                if mc.extra_delivery_cost is not None:
                    cost += mc.extra_delivery_cost(slot.size)
                if not config.batched_upcall:
                    # Upcall per message, inside the critical path (§3.5).
                    upcall = timing.delivery_upcall
                    if config.copy_on_delivery:
                        upcall += timing.memcpy_time(slot.size)
                    cost += upcall
                    upcall_cost += upcall
                    # Timestamp each delivery at its upcall completion.
                    mc.stats.record_delivery(
                        t0 + cost, rank, slot.size, slot.queued_at
                    )
                else:
                    batched_slots.append((rank, slot))
            else:
                if dq and dq[0].round_index < k:
                    raise AssertionError(
                        f"delivery order violated in sg{mc.subgroup_id}: "
                        f"pending round {dq[0].round_index} < expected {k}"
                    )
                mc.stats.record_null_skipped()

        if config.batched_upcall and batch:
            upcall = (timing.batched_upcall_base
                      + timing.batched_upcall_per_message * len(batch))
            if config.copy_on_delivery:
                upcall += sum(timing.memcpy_time(d.size) for d in batch)
            cost += upcall
            upcall_cost += upcall
            # The whole batch is handed to the application at once.
            for rank, slot in batched_slots:
                mc.stats.record_delivery(
                    t0 + cost, rank, slot.size, slot.queued_at
                )
        if upcall_cost:
            # Nested stage: upcall time inside the delivery predicate.
            mc.stats.add_upcall_time(upcall_cost, batches=len(batch))
        yield cost

        if mc.deliver_cb is not None:
            for delivery in batch:
                mc.deliver_cb(delivery)

        mc.delivered_seq = s
        mc.sst.set(mc.cols.delivered, s)
        if batch:
            mc.stats.record_delivery_batch(len(batch))
        mc._reap_acked()
        mc.slot_doorbell.ring()
        return mc.smc.push_control()

"""Durable atomic multicast: Derecho's persistent delivery mode.

The paper notes (§2.1, footnote) that Derecho's *persistent* atomic
multicast is equivalent to classical durable Paxos: every replica holds
the full state and a message is durably delivered only once every
member has appended it to stable storage.

Mechanics, mirroring Derecho's version-vector scheme on our SST:

* each member runs a :class:`PersistenceEngine` — a background thread
  that drains locally-delivered messages into an append-only log on a
  modeled SSD (batched appends amortize the device overhead),
* after appending through sequence number ``s`` it advances a monotonic
  ``persisted_num`` SST column and pushes it (one RDMA write per peer,
  exactly like the delivery acknowledgments),
* a *durability predicate* on the polling thread watches the minimum of
  the ``persisted_num`` column: messages at or below it are stable on
  every replica and the application's ``on_durable`` watermark callback
  fires.

Delivery upcalls still happen at (volatile) delivery time; durability
is reported separately, which is how Derecho exposes the two levels.

The log itself lives on a :class:`~repro.storage.StorageDevice`
(append-only, CRC-framed, explicit fsync — docs/DURABILITY.md):
"durable" means *fsynced*, and injected storage faults (torn appends,
fsync stalls, corruption) surface here and nowhere else.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Tuple

from ..predicates.framework import Predicate
from ..sim.sync import Doorbell
from ..sim.units import gb_per_s, us
from ..storage.device import StorageDevice, encode_log_entry
from .multicast import Delivery, SubgroupMulticast

__all__ = ["StorageModel", "PersistenceEngine"]


@dataclass(frozen=True)
class StorageModel:
    """Timing model of the stable-storage device (NVMe-class SSD)."""

    #: Fixed overhead per append batch (submission + flush amortized).
    append_base: float = us(2.0)
    #: Sequential write bandwidth, bytes/second.
    write_bandwidth: float = gb_per_s(2.0)
    #: Sequential read bandwidth, bytes/second (durable-log replay on
    #: restart, docs/RECOVERY.md).
    read_bandwidth: float = gb_per_s(3.0)
    #: Fixed overhead per replay (open + first-block seek).
    read_base: float = us(5.0)

    def append_time(self, total_bytes: int) -> float:
        return self.append_base + total_bytes / self.write_bandwidth

    def read_time(self, total_bytes: int) -> float:
        """Time to stream ``total_bytes`` back off the device."""
        return self.read_base + total_bytes / self.read_bandwidth


class PersistenceEngine:
    """One member's durability pipeline for one subgroup."""

    def __init__(self, mc: SubgroupMulticast, persisted_col: int,
                 storage: Optional[StorageModel] = None,
                 device: Optional[StorageDevice] = None):
        self.mc = mc
        self.sim = mc.sim
        self.persisted_col = persisted_col
        if device is not None:
            self.device = device
            self.storage = device.model
        else:
            self.storage = storage if storage is not None else StorageModel()
            self.device = StorageDevice(
                mc.sim, self.storage,
                name=f"sg{mc.subgroup_id}", node_id=mc.node_id)
        #: (seq, sender, size, payload) awaiting the SSD.
        self._queue: Deque[Tuple[int, int, int, Optional[bytes]]] = deque()
        self._bell = Doorbell(self.sim, name=f"persist@{mc.node_id}")
        #: The durable log contents (seq, sender, payload).
        self.log: List[Tuple[int, int, Optional[bytes]]] = []
        self.log_bytes = 0
        self.persisted_seq = -1      # locally durable watermark
        self.durable_seq = -1        # globally durable watermark
        self.batches = 0
        #: Entries seeded from a prior epoch's log via :meth:`adopt_log`
        #: (carryover across view changes / recovery state transfer).
        self.adopted_entries = 0
        #: True while the storage thread is mid-batch (between draining
        #: the queue and finishing the SSD append + watermark publish).
        self._appending = False
        self.on_durable: List[Callable[[int], None]] = []
        self._proc = None
        self.predicate = _DurabilityPredicate(self)

    # ---------------------------------------------------------------- wiring

    def start(self) -> None:
        """Hook deliveries, start the storage thread, register the
        durability predicate."""
        if self._proc is not None:
            raise RuntimeError("persistence engine already started")
        self._proc = self.sim.spawn(
            self._run(), name=f"persist@{self.mc.node_id}"
        )
        self.mc.thread.register(self.predicate)

    def stop(self) -> None:
        if self._proc is not None and self._proc.alive:
            self._proc.kill()
        if self.predicate in self.mc.thread.predicates:
            self.mc.thread.unregister(self.predicate)

    def enqueue(self, delivery: Delivery) -> None:
        """Called from the delivery upcall path: queue for the SSD."""
        self._queue.append(
            (delivery.seq, delivery.sender, delivery.size, delivery.payload)
        )
        self._bell.ring()

    # ----------------------------------------------------------- storage loop

    def _run(self):
        mc = self.mc
        post_cost = mc.sst.fabric.latency.post_overhead
        while True:
            while self._queue:
                # Batched append: drain everything queued right now.
                self._appending = True
                batch = []
                total = 0
                while self._queue:
                    entry = self._queue.popleft()
                    batch.append(entry)
                    total += entry[2]
                for seq, sender, size, payload in batch:
                    self.device.write(encode_log_entry(seq, sender, payload),
                                      billed=size)
                # One fsync per batch: a single append_time(total) yield,
                # after which (and only after which) the batch is durable.
                yield from self.device.fsync()
                for seq, sender, _size, payload in batch:
                    self.log.append((seq, sender, payload))
                self.log_bytes += total
                self.batches += 1
                self.persisted_seq = batch[-1][0]
                self._appending = False
                # Publish the new durable watermark (needs the shared
                # lock: the column is shared protocol state).
                yield mc.thread.lock.acquire()
                mc.sst.set(self.persisted_col, self.persisted_seq)
                mc.thread.lock.release()
                yield from mc.sst.push(
                    self.persisted_col, self.persisted_col + 1,
                    [m for m in mc.members if m != mc.node_id],
                )
            yield self._bell.wait()

    # ------------------------------------------------------------- carryover

    def adopt_log(self, log, log_bytes: Optional[int] = None) -> None:
        """Seed this (fresh) engine with a prior epoch's durable log.

        Used by :meth:`Cluster.install_view
        <repro.workloads.cluster.Cluster.install_view>` to carry each
        node's on-SSD log across the epoch restart, and by the recovery
        plane to hand a rejoining member its replayed-plus-transferred
        log. Only a *pristine* engine may adopt (the durable log is
        append-only; splicing into a log that already took appends would
        reorder history), so calling this on a non-empty log raises.
        """
        if self.log or self._queue or self._appending:
            raise RuntimeError(
                "adopt_log on a non-pristine engine: the durable log is "
                "append-only and must be seeded before any append"
            )
        entries = [tuple(entry) for entry in log]
        if log_bytes is None:
            log_bytes = sum(len(p) for _s, _n, p in entries if p is not None)
        self.log = entries
        self.log_bytes = log_bytes
        self.adopted_entries = len(entries)
        # Mirror the adopted log onto the device (idempotent when the
        # device already holds it): per-record billing is not recorded
        # across adoption, so the payload-length sum plus a billed base
        # keeps billed_total == log_bytes exactly.
        pairs = [(encode_log_entry(s, n, p), len(p) if p is not None else 0)
                 for s, n, p in entries]
        base = log_bytes - sum(b for _f, b in pairs)
        self.device.rewrite(pairs, billed_base=base)

    @property
    def drained(self) -> bool:
        """True when every enqueued delivery has reached the log (no
        queued entries and no batch mid-append). The recovery plane
        polls this during a join cut: once the wedged epoch's engines
        drain, the survivors' logs are final."""
        return not self._queue and not self._appending

    # --------------------------------------------------------------- queries

    def globally_persisted(self) -> int:
        """Min of the persisted_num column: durable on every member."""
        return min(
            self.mc.sst.read(m, self.persisted_col) for m in self.mc.members
        )

    def replay(self) -> List[Tuple[int, int, Optional[bytes]]]:
        """The durable log (seq, sender, payload), in append order."""
        return list(self.log)


class _DurabilityPredicate(Predicate):
    """Fires the on_durable watermark when global persistence advances."""

    def __init__(self, engine: PersistenceEngine):
        self.engine = engine
        self.name = f"sg{engine.mc.subgroup_id}.durability"
        self.subgroup = engine.mc.subgroup_id

    def evaluate(self):
        engine = self.engine
        cost = (engine.mc.timing.predicate_eval
                + len(engine.mc.members) * engine.mc.timing.slot_check)
        watermark = engine.globally_persisted()
        if watermark > engine.durable_seq:
            return cost, (watermark,)
        return cost, None

    def trigger(self, value):
        (watermark,) = value
        engine = self.engine
        yield engine.mc.timing.trigger_base
        engine.durable_seq = watermark
        for callback in engine.on_durable:
            callback(watermark)
        return None

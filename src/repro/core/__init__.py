"""Core: Derecho atomic multicast + the Spindle optimizations (§2–§3)."""

from .config import SpindleConfig, TimingModel
from .group import GroupNode, build_layout
from .membership import SubgroupSpec, View
from .multicast import Delivery, SubgroupMulticast
from .stats import SubgroupStats

__all__ = [
    "SpindleConfig",
    "TimingModel",
    "GroupNode",
    "build_layout",
    "SubgroupSpec",
    "View",
    "Delivery",
    "SubgroupMulticast",
    "SubgroupStats",
]

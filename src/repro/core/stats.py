"""Instrumentation for the multicast pipeline.

Collects exactly the quantities the paper reports: throughput (bytes
delivered per second, §4), per-stage batch-size histograms (Fig. 7),
RDMA write counts and predicate-thread post time (§4.1.1), sender
wait-for-slot time (§4.1.1), delivery latency (Figs. 5/17), and
inter-delivery times per sender (§4.2.1).

Since the metrics plane landed, :class:`SubgroupStats` is a *thin view*
over a :class:`~repro.metrics.MetricsRegistry` scope: every scalar the
benchmarks read (``delivered``, ``bytes_delivered``, ``nulls_sent``,
...) is backed by a registry counter labelled with this stats object's
(node, subgroup), and batch sizes / latencies are additionally observed
into fixed-bucket registry histograms. Structures the registry cannot
hold compactly (exact batch Counters for Fig. 7's table, the sampled
delivery curve, per-sender inter-delivery state) stay local. A stats
object created without a registry gets a private enabled one, so the
historical standalone API is unchanged.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Optional, Tuple

from ..metrics.registry import (
    DEFAULT_BATCH_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
)
from ..metrics.stages import (
    STAGE_DELIVERY_UPCALL,
    STAGE_SEND_SLOT_ACQUIRE,
    STAGE_TIME,
)

__all__ = ["SubgroupStats"]


class SubgroupStats:
    """Per-(node, subgroup) counters and histograms.

    ``registry`` is the fabric-wide metrics registry (or any scope of
    it); ``node``/``subgroup`` become label values. Without a registry
    (or with a disabled one) a private enabled registry keeps all
    reads/writes working identically.
    """

    def __init__(self, curve_stride: int = 64, latency_sample_cap: int = 4096,
                 registry: Optional[Any] = None,
                 node: Optional[int] = None, subgroup: Optional[int] = None):
        self.curve_stride = curve_stride
        self.latency_sample_cap = latency_sample_cap

        if registry is None or not registry.enabled:
            registry = MetricsRegistry()
        labels: Dict[str, Any] = {}
        if node is not None:
            labels["node"] = node
        if subgroup is not None:
            labels["subgroup"] = subgroup
        #: The labelled registry scope backing this stats object — also
        #: used by the protocol to time app-side pipeline stages.
        self.scope = registry.scoped(**labels)
        scope = self.scope

        # -- message counts (registry-backed) ----------------------------------
        c = scope.counter
        self._sent = c("spindle_messages_sent_total",
                       "application messages queued locally")
        self._nulls_sent = c("spindle_nulls_announced_total",
                             "null rounds announced by this node (§3.3)")
        self._null_announce_pushes = c(
            "spindle_null_announce_pushes_total",
            "control pushes that carried null announcements")
        self._received = c("spindle_messages_received_total",
                           "application messages received (all senders)")
        self._delivered = c("spindle_messages_delivered_total",
                            "application messages delivered")
        self._nulls_skipped = c("spindle_nulls_skipped_total",
                                "null rounds passed over at delivery")
        self._bytes_delivered = c("spindle_bytes_delivered_total",
                                  "application payload bytes delivered")
        self._sends_blocked = c("spindle_sends_blocked_total",
                                "sends that had to wait for a ring slot")

        # -- registry histograms (Fig. 7 / Figs. 5, 17) ------------------------
        self._batch_hist = {
            stage: scope.histogram("spindle_batch_size",
                                   buckets=DEFAULT_BATCH_BUCKETS,
                                   help="per-stage batch sizes (Fig. 7)",
                                   stage=stage)
            for stage in ("send", "receive", "delivery")
        }
        self._latency_hist = scope.histogram(
            "spindle_delivery_latency_seconds",
            buckets=DEFAULT_LATENCY_BUCKETS,
            help="queue-to-local-delivery latency")

        # -- app-side stage timers (§4.1.1 sender wait, §3.5 upcalls) ----------
        self._wait_timer = scope.timer(
            STAGE_TIME, "sender time blocked waiting for a free slot",
            stage=STAGE_SEND_SLOT_ACQUIRE)
        self._upcall_timer = scope.timer(
            STAGE_TIME, "delivery upcall time (nested in delivery stage)",
            stage=STAGE_DELIVERY_UPCALL)

        # -- exact batch histograms (Fig. 7 table; registry buckets are
        #    too coarse for the paper-style rows) ------------------------------
        self.send_batches: Counter = Counter()
        self.receive_batches: Counter = Counter()
        self.delivery_batches: Counter = Counter()

        # -- latency (queue-to-local-delivery, seconds) ------------------------
        self.latency_sum = 0.0
        self.latency_count = 0
        self.latency_max = 0.0
        self.latency_samples: List[float] = []

        # -- timing landmarks --------------------------------------------------
        self.first_send_time: Optional[float] = None
        self.first_delivery_time: Optional[float] = None
        self.last_delivery_time: Optional[float] = None
        #: sampled cumulative (time, bytes) curve for steady-state rates.
        self.delivery_curve: List[Tuple[float, int]] = []

        # -- per-sender last delivery time (inter-delivery metric, §4.2.1) ----
        self.last_delivery_from: Dict[int, float] = {}
        self.interdelivery_sum: Dict[int, float] = {}
        self.interdelivery_count: Dict[int, int] = {}

    # ------------------------------------------------- registry-backed scalars

    @property
    def sent(self) -> int:
        """Application messages queued locally."""
        return self._sent.value

    @property
    def nulls_sent(self) -> int:
        """Null rounds announced by this node."""
        return self._nulls_sent.value

    @property
    def null_announce_pushes(self) -> int:
        """Control pushes that carried null announcements."""
        return self._null_announce_pushes.value

    @property
    def received(self) -> int:
        """Application messages received (all senders)."""
        return self._received.value

    @property
    def delivered(self) -> int:
        """Application messages delivered."""
        return self._delivered.value

    @property
    def nulls_skipped(self) -> int:
        """Null rounds passed over at delivery."""
        return self._nulls_skipped.value

    @property
    def bytes_delivered(self) -> int:
        """Application payload bytes delivered."""
        return self._bytes_delivered.value

    @property
    def sends_blocked(self) -> int:
        """How many sends had to wait for a free slot."""
        return self._sends_blocked.value

    @property
    def sender_wait_time(self) -> float:
        """Seconds the sender spent blocked waiting for a slot (§4.1.1)."""
        return self._wait_timer.total

    # ------------------------------------------------------------- recording

    def record_send(self, now: float) -> None:
        """A message was queued locally (first call marks workload start)."""
        self._sent.inc()
        if self.first_send_time is None:
            self.first_send_time = now

    def record_send_batch(self, size: int) -> None:
        self.send_batches[size] += 1
        self._batch_hist["send"].observe(size)

    def record_receive_batch(self, size: int) -> None:
        self.receive_batches[size] += 1
        self._batch_hist["receive"].observe(size)

    def record_delivery_batch(self, size: int) -> None:
        self.delivery_batches[size] += 1
        self._batch_hist["delivery"].observe(size)

    def record_received(self, count: int = 1) -> None:
        self._received.inc(count)

    def record_nulls_sent(self, count: int) -> None:
        self._nulls_sent.inc(count)

    def record_null_announce_pushes(self, count: int = 1) -> None:
        self._null_announce_pushes.inc(count)

    def record_null_skipped(self, count: int = 1) -> None:
        self._nulls_skipped.inc(count)

    def record_blocked_send(self) -> None:
        self._sends_blocked.inc()

    def add_sender_wait(self, elapsed: float) -> None:
        """Account one blocked-send wait span (send_slot_acquire stage)."""
        self._wait_timer.add(elapsed)

    def add_upcall_time(self, elapsed: float, batches: int = 1) -> None:
        """Account delivery-upcall time (nested inside the delivery
        predicate's span; not part of the thread-time partition)."""
        self._upcall_timer.add(elapsed, count=batches)

    def record_delivery(self, now: float, sender_rank: int, size: int,
                        queued_at: float) -> None:
        """One application message delivered locally."""
        self._delivered.inc()
        self._bytes_delivered.inc(size)
        if self.first_delivery_time is None:
            self.first_delivery_time = now
        self.last_delivery_time = now
        if self.delivered % self.curve_stride == 0:
            self.delivery_curve.append((now, self.bytes_delivered))
        latency = now - queued_at
        self._latency_hist.observe(latency)
        self.latency_sum += latency
        self.latency_count += 1
        if latency > self.latency_max:
            self.latency_max = latency
        if len(self.latency_samples) < self.latency_sample_cap:
            self.latency_samples.append(latency)
        previous = self.last_delivery_from.get(sender_rank)
        if previous is not None:
            self.interdelivery_sum[sender_rank] = (
                self.interdelivery_sum.get(sender_rank, 0.0) + (now - previous)
            )
            self.interdelivery_count[sender_rank] = (
                self.interdelivery_count.get(sender_rank, 0) + 1
            )
        self.last_delivery_from[sender_rank] = now

    # ------------------------------------------------------------- reporting

    @property
    def mean_latency(self) -> float:
        """Mean queue-to-delivery latency in seconds."""
        if self.latency_count == 0:
            return 0.0
        return self.latency_sum / self.latency_count

    def mean_batch(self, histogram: Counter) -> float:
        """Mean batch size of one stage's histogram."""
        total = sum(histogram.values())
        if total == 0:
            return 0.0
        return sum(size * count for size, count in histogram.items()) / total

    @property
    def mean_batches(self) -> Tuple[float, float, float]:
        """(send, receive, delivery) mean batch sizes (§4.1.3 metric)."""
        return (
            self.mean_batch(self.send_batches),
            self.mean_batch(self.receive_batches),
            self.mean_batch(self.delivery_batches),
        )

    def mean_interdelivery(self, sender_rank: int) -> float:
        """Mean gap between consecutive deliveries from one sender."""
        count = self.interdelivery_count.get(sender_rank, 0)
        if count == 0:
            return 0.0
        return self.interdelivery_sum[sender_rank] / count

    def throughput(self, steady_fraction: float = 0.2,
                   until_fraction: float = 1.0) -> float:
        """Delivered application bytes per second at this node.

        Uses the slope of the cumulative-delivery curve from
        ``steady_fraction`` of the way in to the end, which discards the
        window-fill ramp-up (runs here are shorter than the paper's 1 M
        messages, so the transient would otherwise bias the estimate).

        ``until_fraction < 1`` stops the measurement once that fraction
        of the bytes has been delivered — the paper's §4.2.1 methodology
        ("we measure bandwidth after a fixed number of messages have
        been delivered"), which excludes the trickle tail of a workload
        whose delayed senders outlive the continuous ones.
        """
        if self.first_delivery_time is None or self.last_delivery_time is None:
            return 0.0
        curve = [(self.first_delivery_time, 0)] + self.delivery_curve
        if curve[-1][0] != self.last_delivery_time:
            curve = curve + [(self.last_delivery_time, self.bytes_delivered)]
        if until_fraction < 1.0:
            target = until_fraction * self.bytes_delivered
            end = next((i for i, (_, b) in enumerate(curve) if b >= target),
                       len(curve) - 1)
            curve = curve[: max(end + 1, 2)]
        cut = min(int(len(curve) * steady_fraction), len(curve) - 2)
        t0, b0 = curve[cut]
        t1, b1 = curve[-1]
        if t1 <= t0:
            # Degenerate curve (e.g. one giant delivery batch): fall back
            # to the whole first-to-last span.
            t0, b0 = curve[0]
            t1, b1 = curve[-1]
            if t1 <= t0:
                return 0.0
        rate = (b1 - b0) / (t1 - t0)
        # A hard physical bound protects short bursty runs (all
        # deliveries landing in one burst make the slope meaningless):
        # nothing can be sustained faster than everything delivered by
        # the measurement endpoint over the time since this node started
        # sending. (Uses t1/b1 so an until_fraction tail cut applies to
        # the bound as well.)
        if self.first_send_time is not None:
            makespan = t1 - self.first_send_time
            if makespan > 0:
                rate = min(rate, b1 / makespan)
        return rate

"""Instrumentation for the multicast pipeline.

Collects exactly the quantities the paper reports: throughput (bytes
delivered per second, §4), per-stage batch-size histograms (Fig. 7),
RDMA write counts and predicate-thread post time (§4.1.1), sender
wait-for-slot time (§4.1.1), delivery latency (Figs. 5/17), and
inter-delivery times per sender (§4.2.1).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

__all__ = ["SubgroupStats"]


class SubgroupStats:
    """Per-(node, subgroup) counters and histograms."""

    def __init__(self, curve_stride: int = 64, latency_sample_cap: int = 4096):
        self.curve_stride = curve_stride
        self.latency_sample_cap = latency_sample_cap

        # -- message counts ----------------------------------------------------
        self.sent = 0                 # application messages queued locally
        self.nulls_sent = 0           # null rounds announced by this node
        self.null_announce_pushes = 0  # control pushes that carried nulls
        self.received = 0             # application messages received (all senders)
        self.delivered = 0            # application messages delivered
        self.nulls_skipped = 0        # null rounds passed over at delivery
        self.bytes_delivered = 0

        # -- batch histograms (Fig. 7) -----------------------------------------
        self.send_batches: Counter = Counter()
        self.receive_batches: Counter = Counter()
        self.delivery_batches: Counter = Counter()

        # -- latency (queue-to-local-delivery, seconds) --------------------------
        self.latency_sum = 0.0
        self.latency_count = 0
        self.latency_max = 0.0
        self.latency_samples: List[float] = []

        # -- timing landmarks ----------------------------------------------------
        self.first_send_time: Optional[float] = None
        self.first_delivery_time: Optional[float] = None
        self.last_delivery_time: Optional[float] = None
        #: sampled cumulative (time, bytes) curve for steady-state rates.
        self.delivery_curve: List[Tuple[float, int]] = []

        # -- sender-side ---------------------------------------------------------
        self.sender_wait_time = 0.0   # time spent waiting for a free slot
        self.sends_blocked = 0        # how many sends had to wait

        # -- per-sender last delivery time (inter-delivery metric, §4.2.1) ------
        self.last_delivery_from: Dict[int, float] = {}
        self.interdelivery_sum: Dict[int, float] = {}
        self.interdelivery_count: Dict[int, int] = {}

    # ------------------------------------------------------------- recording

    def record_send(self, now: float) -> None:
        """A message was queued locally (first call marks workload start)."""
        self.sent += 1
        if self.first_send_time is None:
            self.first_send_time = now

    def record_send_batch(self, size: int) -> None:
        self.send_batches[size] += 1

    def record_receive_batch(self, size: int) -> None:
        self.receive_batches[size] += 1

    def record_delivery_batch(self, size: int) -> None:
        self.delivery_batches[size] += 1

    def record_delivery(self, now: float, sender_rank: int, size: int,
                        queued_at: float) -> None:
        """One application message delivered locally."""
        self.delivered += 1
        self.bytes_delivered += size
        if self.first_delivery_time is None:
            self.first_delivery_time = now
        self.last_delivery_time = now
        if self.delivered % self.curve_stride == 0:
            self.delivery_curve.append((now, self.bytes_delivered))
        latency = now - queued_at
        self.latency_sum += latency
        self.latency_count += 1
        if latency > self.latency_max:
            self.latency_max = latency
        if len(self.latency_samples) < self.latency_sample_cap:
            self.latency_samples.append(latency)
        previous = self.last_delivery_from.get(sender_rank)
        if previous is not None:
            self.interdelivery_sum[sender_rank] = (
                self.interdelivery_sum.get(sender_rank, 0.0) + (now - previous)
            )
            self.interdelivery_count[sender_rank] = (
                self.interdelivery_count.get(sender_rank, 0) + 1
            )
        self.last_delivery_from[sender_rank] = now

    # ------------------------------------------------------------- reporting

    @property
    def mean_latency(self) -> float:
        """Mean queue-to-delivery latency in seconds."""
        if self.latency_count == 0:
            return 0.0
        return self.latency_sum / self.latency_count

    def mean_batch(self, histogram: Counter) -> float:
        """Mean batch size of one stage's histogram."""
        total = sum(histogram.values())
        if total == 0:
            return 0.0
        return sum(size * count for size, count in histogram.items()) / total

    @property
    def mean_batches(self) -> Tuple[float, float, float]:
        """(send, receive, delivery) mean batch sizes (§4.1.3 metric)."""
        return (
            self.mean_batch(self.send_batches),
            self.mean_batch(self.receive_batches),
            self.mean_batch(self.delivery_batches),
        )

    def mean_interdelivery(self, sender_rank: int) -> float:
        """Mean gap between consecutive deliveries from one sender."""
        count = self.interdelivery_count.get(sender_rank, 0)
        if count == 0:
            return 0.0
        return self.interdelivery_sum[sender_rank] / count

    def throughput(self, steady_fraction: float = 0.2,
                   until_fraction: float = 1.0) -> float:
        """Delivered application bytes per second at this node.

        Uses the slope of the cumulative-delivery curve from
        ``steady_fraction`` of the way in to the end, which discards the
        window-fill ramp-up (runs here are shorter than the paper's 1 M
        messages, so the transient would otherwise bias the estimate).

        ``until_fraction < 1`` stops the measurement once that fraction
        of the bytes has been delivered — the paper's §4.2.1 methodology
        ("we measure bandwidth after a fixed number of messages have
        been delivered"), which excludes the trickle tail of a workload
        whose delayed senders outlive the continuous ones.
        """
        if self.first_delivery_time is None or self.last_delivery_time is None:
            return 0.0
        curve = [(self.first_delivery_time, 0)] + self.delivery_curve
        if curve[-1][0] != self.last_delivery_time:
            curve = curve + [(self.last_delivery_time, self.bytes_delivered)]
        if until_fraction < 1.0:
            target = until_fraction * self.bytes_delivered
            end = next((i for i, (_, b) in enumerate(curve) if b >= target),
                       len(curve) - 1)
            curve = curve[: max(end + 1, 2)]
        cut = min(int(len(curve) * steady_fraction), len(curve) - 2)
        t0, b0 = curve[cut]
        t1, b1 = curve[-1]
        if t1 <= t0:
            # Degenerate curve (e.g. one giant delivery batch): fall back
            # to the whole first-to-last span.
            t0, b0 = curve[0]
            t1, b1 = curve[-1]
            if t1 <= t0:
                return 0.0
        rate = (b1 - b0) / (t1 - t0)
        # A hard physical bound protects short bursty runs (all
        # deliveries landing in one burst make the slope meaningless):
        # nothing can be sustained faster than everything delivered by
        # the measurement endpoint over the time since this node started
        # sending. (Uses t1/b1 so an until_fraction tail cut applies to
        # the bound as well.)
        if self.first_send_time is not None:
            makespan = t1 - self.first_send_time
            if makespan > 0:
                rate = min(rate, b1 / makespan)
        return rate

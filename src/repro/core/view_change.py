"""Virtual-synchrony membership: failure detection and view changes.

The paper assumes Derecho's partition-free state-machine-replication
membership protocol (§2.1) and evaluates only failure-free epochs; this
module supplies that substrate so the library is a complete atomic
multicast (failure atomicity included), not just a fast path.

Protocol sketch (a faithful simplification of Derecho's, one
reconfiguration at a time):

1. **Failure detection** — every node bumps a heartbeat counter in its
   SST row and pushes it periodically. A peer whose heartbeat goes stale
   for ``suspicion_timeout`` is *suspected* (a monotonic flag column).
2. **Wedging** — any node that sees any suspicion adopts all visible
   suspicions into its own row, sets its ``wedged`` flag, pushes both,
   and stops initiating multicasts in every subgroup.
3. **Ragged trim** — the leader (lowest-ranked unsuspected member),
   once it sees every survivor wedged, publishes a proposal through a
   guarded SST value: the failed set plus, per subgroup, a *trim* equal
   to the minimum of the survivors' ``received_num``. Every survivor
   necessarily holds all messages up to the trim, so each delivers
   exactly that prefix — the failure-atomicity guarantee: a message
   past the trim is delivered *nowhere* and must be resent in the next
   view (``SubgroupMulticast.undelivered_own_messages``).
4. **Install** — survivors acknowledge the proposal in an ``ack``
   column; when every survivor has acknowledged, each fires its
   ``on_new_view`` callbacks with the successor
   :class:`~repro.core.membership.View`.

Known simplifications (documented per DESIGN.md): joins are handled at
epoch boundaries by building the next view explicitly; if the *leader*
fails after publishing its proposal, the next leader re-runs the
protocol from wedging (concurrent divergent proposals are not arbitrated
— Derecho's full ballot mechanism is out of scope for this
reproduction).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..predicates.framework import Predicate
from ..sim.units import us
from ..sst.fields import SSTLayout
from ..sst.push import GuardedValue
from .membership import View

__all__ = ["MembershipColumns", "MembershipService"]


class MembershipColumns:
    """Column indices of the membership block in the SST layout."""

    def __init__(self, heartbeat: int, suspected0: int, wedged: int,
                 ack: int, proposal: Tuple[int, int], num_members: int):
        self.heartbeat = heartbeat
        self.suspected0 = suspected0  # one flag column per member, contiguous
        self.wedged = wedged
        self.ack = ack
        self.proposal = proposal      # (data_col, guard_col)
        self.num_members = num_members

    def suspected(self, member_rank: int) -> int:
        return self.suspected0 + member_rank

    @classmethod
    def declare(cls, layout: SSTLayout, num_members: int) -> "MembershipColumns":
        heartbeat = layout.counter("mbr.heartbeat", initial=0)
        suspected0 = layout.flag("mbr.suspected0")
        for i in range(1, num_members):
            layout.flag(f"mbr.suspected{i}")
        wedged = layout.flag("mbr.wedged")
        ack = layout.counter("mbr.ack")
        proposal = GuardedValue.declare(layout, "mbr.proposal", size=256)
        return cls(heartbeat, suspected0, wedged, ack, proposal, num_members)


class MembershipService:
    """One node's membership endpoint: detector process + SST predicate."""

    def __init__(self, group_node, cols: MembershipColumns,
                 heartbeat_period: float = us(100),
                 suspicion_timeout: float = us(500)):
        self.group = group_node
        self.sst = group_node.sst
        self.sim = group_node.sim
        self.cols = cols
        self.view: View = group_node.view
        self.members = list(self.view.members)
        self.my_rank = self.view.rank_of(group_node.node_id)
        self.heartbeat_period = heartbeat_period
        self.suspicion_timeout = suspicion_timeout
        self.proposal = GuardedValue(self.sst, *cols.proposal)
        self.wedged = False
        self.proposed = False
        self.installed = False
        self.processed_proposal_version = -1
        self.new_view: Optional[View] = None
        self.on_new_view: List[Callable[[View], None]] = []
        self._hb_prev: Dict[int, Tuple[int, float]] = {}
        self._detector_proc = None
        self.predicate = _MembershipPredicate(self)

    # ---------------------------------------------------------------- wiring

    def start(self) -> None:
        """Register the membership predicate and start heartbeating."""
        self.group.thread.register(self.predicate)
        self._detector_proc = self.sim.spawn(
            self._detector(), name=f"detector@{self.group.node_id}"
        )

    def stop(self) -> None:
        if self._detector_proc is not None and self._detector_proc.alive:
            self._detector_proc.kill()

    # ------------------------------------------------------------- suspicion

    def is_suspected(self, member: int) -> bool:
        """True if *any* row suspects ``member`` (suspicion is infectious)."""
        rank = self.members.index(member)
        col = self.cols.suspected(rank)
        return any(self.sst.read(owner, col) for owner in self.members)

    def live_members(self) -> List[int]:
        return [m for m in self.members if not self.is_suspected(m)]

    def leader(self) -> int:
        """Lowest-ranked unsuspected member."""
        live = self.live_members()
        return live[0] if live else self.group.node_id

    def suspect(self, member: int) -> None:
        """Manually mark a member as failed (test/operator injection).

        The flag still propagates through the normal SST path.
        """
        rank = self.members.index(member)
        self.sst.set(self.cols.suspected(rank), True)
        self.group.thread.doorbell.ring()

        def pusher():
            yield from self.sst.push_col(self.cols.suspected(rank))

        self.sim.spawn(pusher(), name=f"suspect@{self.group.node_id}")

    # ---------------------------------------------------------- detector loop

    def _detector(self):
        """Heartbeat + staleness checking process."""
        sst = self.sst
        cols = self.cols
        post_cost = self.group.fabric.latency.post_overhead
        while not self.installed:
            sst.set(cols.heartbeat, sst.read_own(cols.heartbeat) + 1)
            yield from sst.push_col(cols.heartbeat)
            now = self.sim.now
            for member in self.members:
                if member == self.group.node_id or self.is_suspected(member):
                    continue
                current = sst.read(member, cols.heartbeat)
                prev = self._hb_prev.get(member)
                if prev is None or prev[0] != current:
                    self._hb_prev[member] = (current, now)
                elif now - prev[1] > self.suspicion_timeout:
                    rank = self.members.index(member)
                    sst.set(cols.suspected(rank), True)
                    yield from sst.push_col(cols.suspected(rank))
                    self.group.thread.doorbell.ring()
            yield self.heartbeat_period


class _MembershipPredicate(Predicate):
    """The view-change state machine, run on the node's polling thread."""

    def __init__(self, service: MembershipService):
        self.svc = service
        self.name = f"membership@{service.group.node_id}"
        self.subgroup = None

    # The four actions, in priority order.
    _WEDGE, _PROPOSE, _INSTALL, _COMMIT = "wedge", "propose", "install", "commit"

    def evaluate(self):
        svc = self.svc
        cost = svc.group.timing.predicate_eval * len(svc.members)
        if svc.installed:
            return cost, None
        suspicion = any(
            svc.is_suspected(m) for m in svc.members
        )
        if not suspicion:
            return cost, None
        if not svc.wedged:
            return cost, self._WEDGE
        live = svc.live_members()
        me = svc.group.node_id
        if me == svc.leader() and not svc.proposed:
            all_wedged = all(
                svc.sst.read(m, svc.cols.wedged) for m in live
            )
            if all_wedged:
                return cost, self._PROPOSE
        version, _ = svc.proposal.read(svc.leader())
        if version > svc.processed_proposal_version:
            return cost, self._INSTALL
        if (version >= 0 and not svc.installed
                and svc.processed_proposal_version >= 0):
            proposed_id = svc.view.view_id + 1
            if all(svc.sst.read(m, svc.cols.ack) >= proposed_id for m in live):
                return cost, self._COMMIT
        return cost, None

    def trigger(self, action):
        svc = self.svc
        sst = svc.sst
        cols = svc.cols
        yield svc.group.timing.trigger_base

        if action == self._WEDGE:
            # Adopt every visible suspicion into our own row and wedge.
            for rank, member in enumerate(svc.members):
                if svc.is_suspected(member):
                    sst.set(cols.suspected(rank), True)
            sst.set(cols.wedged, True)
            svc.wedged = True
            for mc in svc.group.multicasts.values():
                mc.wedge()
            lo = min(cols.suspected(0), cols.wedged)
            hi = max(cols.suspected(svc.cols.num_members - 1), cols.wedged) + 1
            return sst.push(lo, hi)

        if action == self._PROPOSE:
            svc.proposed = True
            failed = tuple(m for m in svc.members if svc.is_suspected(m))
            survivors = [m for m in svc.members if m not in failed]
            trims = tuple(
                (sg_id, min(sst.read(m, mc.cols.received) for m in survivors
                            if m in mc.members))
                for sg_id, mc in sorted(svc.group.multicasts.items())
            )
            payload = (svc.view.view_id + 1, failed, trims)
            return svc.proposal.publish(payload)

        if action == self._INSTALL:
            version, payload = svc.proposal.read(svc.leader())
            svc.processed_proposal_version = version
            new_view_id, failed, trims = payload
            delivered = 0
            for sg_id, trim in trims:
                mc = svc.group.multicasts.get(sg_id)
                if mc is not None:
                    mc.wedge()
                    delivered += mc.force_deliver_up_to(trim)
            yield svc.group.timing.delivery_per_message * delivered
            sst.set(cols.ack, new_view_id)
            return self._push_ack_and_delivered()

        if action == self._COMMIT:
            svc.installed = True
            failed = tuple(m for m in svc.members if svc.is_suspected(m))
            svc.new_view = svc.view.without(failed)
            svc.stop()
            for callback in svc.on_new_view:
                callback(svc.new_view)
            return None

        raise AssertionError(f"unknown membership action {action!r}")

    def _push_ack_and_delivered(self):
        """Push the ack counter plus each subgroup's delivered_num."""
        svc = self.svc
        yield from svc.sst.push_col(svc.cols.ack)
        for mc in svc.group.multicasts.values():
            yield from mc.smc.push_control()

"""Virtual-synchrony membership: failure detection and view changes.

The paper assumes Derecho's partition-free state-machine-replication
membership protocol (§2.1) and evaluates only failure-free epochs; this
module supplies that substrate so the library is a complete atomic
multicast (failure atomicity included), not just a fast path.

Protocol sketch (a faithful simplification of Derecho's, one
reconfiguration at a time):

1. **Failure detection** — every node bumps a heartbeat counter in its
   SST row and pushes it periodically. A peer whose heartbeat goes stale
   for ``suspicion_timeout`` is *locally* suspected; only if it stays
   stale for a further ``confirmation_grace`` is the suspicion
   *published* (a monotonic flag column — irreversible). A heartbeat
   that resumes inside the grace window rescinds the local suspicion
   and backs off that member's effective timeout
   (``suspicion_backoff``), so flapping links and transient partitions
   that heal quickly do not tear the view down (docs/FAULTS.md).
2. **Wedging** — any node that sees any published suspicion adopts all
   visible suspicions into its own row, sets its ``wedged`` flag,
   pushes both, and stops initiating multicasts in every subgroup.
3. **Ragged trim** — the leader (lowest-ranked unsuspected member),
   once it sees every survivor wedged — and only while the unsuspected
   members form a strict majority of the view (the partition-minority
   gate: a minority side wedges rather than electing itself, see
   :attr:`MembershipService.minority_stalled`) — publishes a proposal
   through a guarded SST value: the failed set plus, per subgroup, a
   *trim* equal to the minimum of the survivors' ``received_num``.
   Every survivor necessarily holds all messages up to the trim, so
   each delivers exactly that prefix — the failure-atomicity guarantee:
   a message past the trim is delivered *nowhere* and must be resent in
   the next view (``SubgroupMulticast.undelivered_own_messages``). If
   further suspicions are published before commit, the leader
   *republishes* an extended proposal (the guard version bumps).
4. **Install** — survivors acknowledge the proposal in an ``ack``
   column; when every survivor *named by the proposal* has acknowledged
   it — and the local suspicion set is covered by the proposal's failed
   set — each fires its ``on_new_view`` callbacks with the successor
   :class:`~repro.core.membership.View` built from the **proposal
   payload** (not from whatever is suspected at commit time, so every
   committer of a given proposal version installs the same view).

Known simplifications (documented per DESIGN.md): joins are handled at
epoch boundaries by building the next view explicitly; if the *leader*
fails, the next live member re-runs the protocol from wedging with its
own proposal (proposal versions are tracked per leader row). Derecho's
full ballot mechanism is out of scope for this reproduction, so one
narrow race remains: a suspicion published *after* a falsely-suspected
survivor has already acknowledged can commit on one node before the
extended proposal reaches another. Closing it requires the full ragged-
leader consensus; the chaos suite pins the behaviours this module does
guarantee.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..predicates.framework import Predicate
from ..recovery.trim import compute_trim
from ..sim.units import us
from ..sst.fields import SSTLayout
from ..sst.push import GuardedValue
from .membership import View

__all__ = ["MembershipColumns", "MembershipService"]


class MembershipColumns:
    """Column indices of the membership block in the SST layout."""

    def __init__(self, heartbeat: int, suspected0: int, wedged: int,
                 ack: int, proposal: Tuple[int, int], num_members: int):
        self.heartbeat = heartbeat
        self.suspected0 = suspected0  # one flag column per member, contiguous
        self.wedged = wedged
        self.ack = ack
        self.proposal = proposal      # (data_col, guard_col)
        self.num_members = num_members

    def suspected(self, member_rank: int) -> int:
        return self.suspected0 + member_rank

    @classmethod
    def declare(cls, layout: SSTLayout, num_members: int) -> "MembershipColumns":
        heartbeat = layout.counter("mbr.heartbeat", initial=0)
        suspected0 = layout.flag("mbr.suspected0")
        for i in range(1, num_members):
            layout.flag(f"mbr.suspected{i}")
        wedged = layout.flag("mbr.wedged")
        ack = layout.counter("mbr.ack")
        proposal = GuardedValue.declare(layout, "mbr.proposal", size=256)
        return cls(heartbeat, suspected0, wedged, ack, proposal, num_members)


class MembershipService:
    """One node's membership endpoint: detector process + SST predicate."""

    def __init__(self, group_node, cols: MembershipColumns,
                 heartbeat_period: float = us(100),
                 suspicion_timeout: float = us(500),
                 confirmation_grace: Optional[float] = None,
                 suspicion_backoff: float = 2.0,
                 max_backoff_scale: float = 8.0):
        self.group = group_node
        self.sst = group_node.sst
        self.sim = group_node.sim
        self.cols = cols
        self.view: View = group_node.view
        self.members = list(self.view.members)
        self.my_rank = self.view.rank_of(group_node.node_id)
        self.heartbeat_period = heartbeat_period
        self.suspicion_timeout = suspicion_timeout
        #: Grace between local and published suspicion (see module docs);
        #: defaults to one suspicion_timeout.
        self.confirmation_grace = (
            suspicion_timeout if confirmation_grace is None
            else confirmation_grace
        )
        self.suspicion_backoff = suspicion_backoff
        self.max_backoff_scale = max_backoff_scale
        self.proposal = GuardedValue(self.sst, *cols.proposal)
        self.wedged = False
        self.proposed = False
        self.installed = False
        #: Failed set this node last published as leader (None if never).
        self.published_failed: Optional[Tuple[int, ...]] = None
        #: Highest proposal version processed, per leader row. Tracked
        #: per row because a successor leader's guard counter starts
        #: over on its own row.
        self.processed_proposal_versions: Dict[int, int] = {}
        #: Payload of the last proposal processed: (view_id, failed, trims).
        self.pending_proposal: Optional[tuple] = None
        self.new_view: Optional[View] = None
        self.on_new_view: List[Callable[[View], None]] = []
        #: Optional :class:`~repro.recovery.trim.TrimLedger` recording
        #: every proposal/commit for the virtual-synchrony verifier
        #: (wired by the Cluster; None = no auditing).
        self.trim_ledger = None
        self._hb_prev: Dict[int, Tuple[int, float]] = {}
        #: member -> time the *local* (unpublished) suspicion started.
        self.local_suspects: Dict[int, float] = {}
        #: member -> rescinded-suspicion count (observability).
        self.false_alarms: Dict[int, int] = {}
        #: member -> multiplier on the effective suspicion timeout
        #: (grows by ``suspicion_backoff`` per false alarm).
        self._timeout_scale: Dict[int, float] = {}
        self._detector_proc = None
        self.predicate = _MembershipPredicate(self)

    # ---------------------------------------------------------------- wiring

    def start(self) -> None:
        """Register the membership predicate and start heartbeating."""
        self.group.thread.register(self.predicate)
        self._detector_proc = self.sim.spawn(
            self._detector(), name=f"detector@{self.group.node_id}"
        )

    def stop(self) -> None:
        if self._detector_proc is not None and self._detector_proc.alive:
            self._detector_proc.kill()

    # ------------------------------------------------------------- suspicion

    def is_suspected(self, member: int) -> bool:
        """True if *any* row suspects ``member`` (suspicion is infectious)."""
        rank = self.members.index(member)
        col = self.cols.suspected(rank)
        return any(self.sst.read(owner, col) for owner in self.members)

    def suspected_members(self) -> Tuple[int, ...]:
        return tuple(m for m in self.members if self.is_suspected(m))

    def live_members(self) -> List[int]:
        return [m for m in self.members if not self.is_suspected(m)]

    def leader(self) -> int:
        """Lowest-ranked unsuspected member."""
        live = self.live_members()
        return live[0] if live else self.group.node_id

    def has_quorum(self) -> bool:
        """Partition gate: the unsuspected members must form a strict
        majority of the view for a reconfiguration to be proposed. A
        minority side stays wedged instead of electing itself — no
        split-brain views (Derecho's partition-freedom assumption)."""
        return 2 * len(self.live_members()) > len(self.members)

    @property
    def minority_stalled(self) -> bool:
        """True while this node is wedged on the minority side of a
        partition: suspicious of a majority, so it refuses to
        reconfigure and waits (possibly forever) instead."""
        return self.wedged and not self.installed and not self.has_quorum()

    def effective_timeout(self, member: int) -> float:
        """Per-member suspicion timeout including flap backoff."""
        return self.suspicion_timeout * self._timeout_scale.get(member, 1.0)

    def suspect(self, member: int) -> None:
        """Manually mark a member as failed (test/operator injection).

        Publishes immediately — no confirmation grace — and still
        propagates through the normal SST path.
        """
        rank = self.members.index(member)
        self.sst.set(self.cols.suspected(rank), True)
        self.group.thread.doorbell.ring()

        def pusher():
            yield from self.sst.push_col(self.cols.suspected(rank))

        self.sim.spawn(pusher(), name=f"suspect@{self.group.node_id}")

    # ---------------------------------------------------------- detector loop

    def _detector(self):
        """Heartbeat + two-phase staleness checking process.

        Phase 1 (local): heartbeat stale past the member's effective
        timeout -> locally suspected, nothing published. Phase 2
        (confirm): still stale past ``confirmation_grace`` -> publish
        the monotonic suspicion flag. A heartbeat resuming in between
        rescinds the local suspicion and doubles the member's effective
        timeout (backoff against flapping links / transient partitions).
        """
        sst = self.sst
        cols = self.cols
        while not self.installed:
            sst.set(cols.heartbeat, sst.read_own(cols.heartbeat) + 1)
            yield from sst.push_col(cols.heartbeat)
            now = self.sim.now
            for member in self.members:
                if member == self.group.node_id or self.is_suspected(member):
                    self.local_suspects.pop(member, None)
                    continue
                current = sst.read(member, cols.heartbeat)
                prev = self._hb_prev.get(member)
                if prev is None or prev[0] != current:
                    self._hb_prev[member] = (current, now)
                    if member in self.local_suspects:
                        # Heartbeat resumed inside the grace window:
                        # false alarm. Rescind and back off.
                        del self.local_suspects[member]
                        self.false_alarms[member] = (
                            self.false_alarms.get(member, 0) + 1
                        )
                        self._timeout_scale[member] = min(
                            self._timeout_scale.get(member, 1.0)
                            * self.suspicion_backoff,
                            self.max_backoff_scale,
                        )
                    continue
                staleness = now - prev[1]
                timeout = self.effective_timeout(member)
                if member not in self.local_suspects:
                    if staleness > timeout:
                        self.local_suspects[member] = now
                elif staleness > timeout + self.confirmation_grace:
                    # Confirmed: publish the (irreversible) suspicion.
                    rank = self.members.index(member)
                    sst.set(cols.suspected(rank), True)
                    yield from sst.push_col(cols.suspected(rank))
                    self.group.thread.doorbell.ring()
            yield self.heartbeat_period


class _MembershipPredicate(Predicate):
    """The view-change state machine, run on the node's polling thread."""

    def __init__(self, service: MembershipService):
        self.svc = service
        self.name = f"membership@{service.group.node_id}"
        self.subgroup = None

    # The four actions, in priority order.
    _WEDGE, _PROPOSE, _INSTALL, _COMMIT = "wedge", "propose", "install", "commit"

    def evaluate(self):
        svc = self.svc
        cost = svc.group.timing.predicate_eval * len(svc.members)
        if svc.installed:
            return cost, None
        suspected = svc.suspected_members()
        if not suspected:
            return cost, None
        if not svc.wedged:
            return cost, (self._WEDGE, None)
        live = svc.live_members()
        me = svc.group.node_id
        leader = svc.leader()
        if me == leader and svc.has_quorum():
            if not svc.proposed:
                all_wedged = all(
                    svc.sst.read(m, svc.cols.wedged) for m in live
                )
                if all_wedged:
                    return cost, (self._PROPOSE, None)
            elif (svc.published_failed is not None
                    and not set(suspected) <= set(svc.published_failed)):
                # Suspicions grew past our published proposal before it
                # committed: republish an extended one (guard bumps).
                return cost, (self._PROPOSE, None)
        version, _ = svc.proposal.read(leader)
        processed = svc.processed_proposal_versions.get(leader, -1)
        if version > processed:
            return cost, (self._INSTALL, leader)
        if version >= 0 and svc.pending_proposal is not None:
            new_view_id, failed, _trims = svc.pending_proposal
            survivors = [m for m in svc.members if m not in failed]
            if set(suspected) <= set(failed) and all(
                svc.sst.read(m, svc.cols.ack) >= new_view_id
                for m in survivors
            ):
                return cost, (self._COMMIT, None)
        return cost, None

    def trigger(self, value):
        action, data = value
        svc = self.svc
        sst = svc.sst
        cols = svc.cols
        yield svc.group.timing.trigger_base

        if action == self._WEDGE:
            # Adopt every visible suspicion into our own row and wedge.
            for rank, member in enumerate(svc.members):
                if svc.is_suspected(member):
                    sst.set(cols.suspected(rank), True)
            sst.set(cols.wedged, True)
            svc.wedged = True
            for mc in svc.group.multicasts.values():
                mc.wedge()
            lo = min(cols.suspected(0), cols.wedged)
            hi = max(cols.suspected(svc.cols.num_members - 1), cols.wedged) + 1
            return sst.push(lo, hi)

        if action == self._PROPOSE:
            svc.proposed = True
            failed = tuple(m for m in svc.members if svc.is_suspected(m))
            svc.published_failed = failed
            # Ragged-edge trim (paper §2.1): per subgroup, the minimum
            # received_num over the survivors — formalized in
            # repro.recovery.trim so the decision is auditable.
            decision = compute_trim(
                prior_view_id=svc.view.view_id,
                next_view_id=svc.view.view_id + 1,
                leader=svc.group.node_id,
                failed=failed,
                subgroup_members={
                    sg_id: list(mc.members)
                    for sg_id, mc in sorted(svc.group.multicasts.items())
                },
                received_of=lambda m, sg_id: sst.read(
                    m, svc.group.multicasts[sg_id].cols.received),
                decided_at=svc.sim.now,
                kind="failure",
            )
            if svc.trim_ledger is not None:
                svc.trim_ledger.propose(decision)
            payload = (svc.view.view_id + 1, failed, decision.trims_tuple())
            return svc.proposal.publish(payload)

        if action == self._INSTALL:
            leader = data
            version, payload = svc.proposal.read(leader)
            svc.processed_proposal_versions[leader] = version
            svc.pending_proposal = payload
            new_view_id, failed, trims = payload
            delivered = 0
            for sg_id, trim in trims:
                mc = svc.group.multicasts.get(sg_id)
                if mc is not None:
                    mc.wedge()
                    delivered += mc.force_deliver_up_to(trim)
            yield svc.group.timing.delivery_per_message * delivered
            if new_view_id > sst.read_own(cols.ack):
                sst.set(cols.ack, new_view_id)
            return self._push_ack_and_delivered()

        if action == self._COMMIT:
            svc.installed = True
            new_view_id, failed, trims = svc.pending_proposal
            if svc.trim_ledger is not None:
                svc.trim_ledger.commit(new_view_id, trims,
                                       committer=svc.group.node_id)
            # The successor view comes from the proposal payload, so
            # every committer of this proposal installs the same view;
            # suspicions that arrived too late for it are handled by the
            # next epoch's membership service.
            svc.new_view = svc.view.without(failed, next_view_id=new_view_id)
            svc.stop()
            for callback in svc.on_new_view:
                callback(svc.new_view)
            return None

        raise AssertionError(f"unknown membership action {action!r}")

    def _push_ack_and_delivered(self):
        """Push the ack counter plus each subgroup's delivered_num."""
        svc = self.svc
        yield from svc.sst.push_col(svc.cols.ack)
        for mc in svc.group.multicasts.values():
            yield from mc.smc.push_control()

"""GroupNode: one node's complete Derecho endpoint.

Bundles the node's SST replica, its single predicate thread, and one
:class:`~repro.core.multicast.SubgroupMulticast` per subgroup the node
belongs to. The SST layout is derived from the view and is identical on
every node (column offsets must agree for one-sided writes to land in
the right cells).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..metrics.registry import MetricsRegistry, null_registry
from ..predicates.framework import PredicateThread
from ..rdma.fabric import RdmaFabric
from ..rdma.memory import Region, WriteSnapshot
from ..rdma.nic import RdmaNode
from ..sim.engine import Simulator
from ..smc.multicast import SubgroupColumns
from ..sst.fields import SSTLayout
from ..sst.table import SST
from .config import SpindleConfig, TimingModel
from .membership import View
from .multicast import Delivery, SubgroupMulticast
from .stats import SubgroupStats

__all__ = ["GroupNode", "build_layout"]


def build_layout(view: View, with_membership: bool = False):
    """Build the view's SST layout.

    Returns ``(layout, subgroup_blocks, membership_cols_or_None)``.
    Every node declares columns for *all* subgroups (rows are identical
    across the top-level group; §2.2), even ones it does not belong to.
    """
    from .view_change import MembershipColumns

    layout = SSTLayout()
    blocks: Dict[int, SubgroupColumns] = {}
    for sg in view.subgroups:
        blocks[sg.subgroup_id] = SubgroupColumns.declare(
            layout, sg.subgroup_id, sg.window, sg.message_size,
            num_senders=len(sg.senders),
            per_sender_acks=(sg.delivery_mode == "unordered"),
            persistent=sg.persistent,
        )
    membership_cols = (
        MembershipColumns.declare(layout, len(view.members))
        if with_membership else None
    )
    return layout, blocks, membership_cols


class GroupNode:
    """One node's protocol stack for a view."""

    def __init__(
        self,
        sim: Simulator,
        fabric: RdmaFabric,
        rdma_node: RdmaNode,
        view: View,
        config: SpindleConfig,
        timing: Optional[TimingModel] = None,
        membership_params: Optional[tuple] = None,
        metrics: Optional[MetricsRegistry] = None,
        storage=None,
    ):
        self.sim = sim
        self.fabric = fabric
        self.rdma_node = rdma_node
        self.node_id = rdma_node.node_id
        self.view = view
        self.config = config
        self.timing = timing if timing is not None else TimingModel()
        #: Fabric-wide metrics registry (docs/METRICS.md); this node's
        #: instruments all carry ``node`` and ``view`` labels (the view
        #: label keeps per-epoch state fresh across view changes, like
        #: the per-view SST memory layout, §2.3). Null when disabled.
        self.metrics = metrics if metrics is not None else null_registry()
        self._view_scope = self.metrics.scoped(node=self.node_id,
                                               view=view.view_id)
        node_scope = self._view_scope

        layout, blocks, membership_cols = build_layout(
            view, with_membership=membership_params is not None
        )
        self.sst = SST(layout, fabric, rdma_node, view.members,
                       metrics=node_scope)
        self.thread = PredicateThread(
            sim, config, self.timing, name=f"predicates@{self.node_id}",
            metrics=node_scope,
        )
        self.multicasts: Dict[int, SubgroupMulticast] = {}
        self.persistence: Dict[int, "PersistenceEngine"] = {}
        self._delivery_callbacks: Dict[int, List[Callable[[Delivery], None]]] = {}
        self._delivered_col_to_mc: Dict[int, SubgroupMulticast] = {}

        for sg in view.subgroups:
            if self.node_id not in sg.members:
                continue
            cols = blocks[sg.subgroup_id]
            mc = SubgroupMulticast(
                sim=sim,
                sst=self.sst,
                cols=cols,
                subgroup_id=sg.subgroup_id,
                members=sg.members,
                senders=sg.senders,
                config=config,
                timing=self.timing,
                thread=self.thread,
                deliver_cb=self._make_dispatcher(sg.subgroup_id),
                stats=SubgroupStats(registry=self._view_scope,
                                    node=self.node_id,
                                    subgroup=sg.subgroup_id),
                delivery_mode=sg.delivery_mode,
            )
            self.multicasts[sg.subgroup_id] = mc
            self._delivery_callbacks[sg.subgroup_id] = []
            if sg.persistent:
                from .persistence import PersistenceEngine

                # The node's per-subgroup device (cluster stable
                # storage, so the log survives epoch restarts); a
                # standalone GroupNode gets a private device.
                device = (storage.device(self.node_id,
                                         f"sg{sg.subgroup_id}")
                          if storage is not None else None)
                engine = PersistenceEngine(mc, cols.persisted,
                                           device=device)
                self.persistence[sg.subgroup_id] = engine
                self._delivery_callbacks[sg.subgroup_id].append(
                    engine.enqueue
                )
            # Any ack-column update may free ring slots: map every
            # control column to the subgroup so arriving acks wake
            # blocked senders.
            lo, hi = cols.control_span
            for col in range(lo, hi):
                self._delivered_col_to_mc[col] = mc

        self.membership = None
        if membership_params is not None:
            from .view_change import MembershipService

            if isinstance(membership_params, dict):
                kwargs = dict(membership_params)
            else:  # legacy (heartbeat_period, suspicion_timeout) tuple
                heartbeat_period, suspicion_timeout = membership_params
                kwargs = dict(heartbeat_period=heartbeat_period,
                              suspicion_timeout=suspicion_timeout)
            self.membership = MembershipService(self, membership_cols, **kwargs)

        rdma_node.on_remote_write.append(self._on_remote_write)

    # --------------------------------------------------------------- wiring

    def _make_dispatcher(self, subgroup_id: int):
        callbacks = None

        def dispatch(delivery: Delivery) -> None:
            for cb in self._delivery_callbacks[subgroup_id]:
                cb(delivery)

        return dispatch

    def _on_remote_write(self, region: Region, snap: WriteSnapshot) -> None:
        """Remote write landed: wake the polling thread; if the write may
        have advanced a delivered_num, wake blocked senders too."""
        self.thread.doorbell.ring()
        if len(snap.data) <= 64:  # control spans are small; bulk slot
            for col in range(snap.offset, snap.offset + len(snap.data)):
                mc = self._delivered_col_to_mc.get(col)
                if mc is not None:
                    mc.slot_doorbell.ring()
                    break

    # ------------------------------------------------------------ public API

    def subgroup(self, subgroup_id: int) -> SubgroupMulticast:
        """The multicast endpoint for a subgroup this node belongs to."""
        return self.multicasts[subgroup_id]

    def on_delivery(self, subgroup_id: int,
                    callback: Callable[[Delivery], None]) -> None:
        """Register an application delivery upcall for a subgroup."""
        self._delivery_callbacks[subgroup_id].append(callback)

    def on_durable(self, subgroup_id: int,
                   callback: Callable[[int], None]) -> None:
        """Register a durability-watermark callback (persistent
        subgroups only): fires with the highest sequence number durable
        on *every* member."""
        self.persistence[subgroup_id].on_durable.append(callback)

    def start(self) -> None:
        """Register all predicates and start the polling thread."""
        for mc in self.multicasts.values():
            mc.register_predicates()
        self.thread.start()
        for engine in self.persistence.values():
            engine.start()
        if self.membership is not None:
            self.membership.start()

    def stop(self) -> None:
        self.thread.stop()
        for engine in self.persistence.values():
            engine.stop()
        if self.membership is not None:
            self.membership.stop()

    def kill(self) -> None:
        """Crash-stop this node's protocol threads (failure injection)."""
        if self.thread._process is not None:
            self.thread._process.kill()
        for engine in self.persistence.values():
            engine.stop()
        if self.membership is not None:
            self.membership.stop()

    def protocol_processes(self, scope: str = "node") -> list:
        """Live protocol threads, for fault-plane stalls: the predicate
        thread, plus (scope="node") the failure detector's sender. The
        backend-generic accessor the fault plane uses instead of
        reaching into ``thread._process`` (docs/FAULTS.md)."""
        procs = []
        if self.thread._process is not None and self.thread._process.alive:
            procs.append(self.thread._process)
        if scope == "node" and self.membership is not None:
            detector = getattr(self.membership, "_detector_proc", None)
            if detector is not None and detector.alive:
                procs.append(detector)
        return procs

    def teardown(self) -> None:
        """Deregister this view's memory (epoch end). In-flight writes
        to the old regions are dropped, as on real hardware."""
        self.kill()
        for key in list(self.rdma_node.regions):
            self.rdma_node.deregister(key)
        self.rdma_node.on_remote_write.remove(self._on_remote_write)

    # -------------------------------------------------------------- metrics

    def stats(self, subgroup_id: int) -> SubgroupStats:
        return self.multicasts[subgroup_id].stats

    def __repr__(self) -> str:
        return f"<GroupNode {self.node_id} view={self.view.view_id}>"

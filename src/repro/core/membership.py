"""Membership model: views, subgroups, sender sets (paper §2.1).

A :class:`View` is one epoch of the virtual-synchrony protocol: a fixed,
ordered top-level membership plus the subgroup structure. Within a view
the set of designated senders of each subgroup is fixed; the round-robin
delivery order is a pure function of the senders list, so no consensus
is needed per message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

__all__ = ["SubgroupSpec", "View"]


@dataclass(frozen=True)
class SubgroupSpec:
    """Static description of one subgroup within a view.

    ``members`` receive and deliver every message; ``senders`` (an
    ordered subset of members) may initiate multicasts. The order of
    ``senders`` defines sender ranks and hence the delivery order.
    """

    subgroup_id: int
    members: Tuple[int, ...]
    senders: Tuple[int, ...]
    window: int = 100
    message_size: int = 10240
    #: "atomic" = totally-ordered stable delivery (default);
    #: "unordered" = deliver on receipt, no ordering/stability wait
    #: (the DDS unordered QoS, §4.6).
    delivery_mode: str = "atomic"
    #: Durable mode: members persist deliveries to stable storage and a
    #: global durability watermark is reported (== durable Paxos, §2.1).
    persistent: bool = False

    def __post_init__(self):
        if self.delivery_mode not in ("atomic", "unordered"):
            raise ValueError(f"unknown delivery mode {self.delivery_mode!r}")
        if self.persistent and self.delivery_mode != "atomic":
            raise ValueError("persistent subgroups require atomic delivery")
        if not self.members:
            raise ValueError("subgroup needs at least one member")
        if not self.senders:
            raise ValueError("subgroup needs at least one sender")
        if len(set(self.members)) != len(self.members):
            raise ValueError("duplicate subgroup members")
        if len(set(self.senders)) != len(self.senders):
            raise ValueError("duplicate subgroup senders")
        missing = [s for s in self.senders if s not in self.members]
        if missing:
            raise ValueError(f"senders {missing} not subgroup members")
        if self.window <= 0:
            raise ValueError("window must be positive")
        if self.message_size <= 0:
            raise ValueError("message size must be positive")

    @classmethod
    def of(cls, subgroup_id: int, members: Sequence[int],
           senders: Optional[Sequence[int]] = None,
           window: int = 100, message_size: int = 10240,
           delivery_mode: str = "atomic",
           persistent: bool = False) -> "SubgroupSpec":
        """Convenience constructor; senders default to all members."""
        members = tuple(members)
        senders = tuple(senders) if senders is not None else members
        return cls(subgroup_id, members, senders, window, message_size,
                   delivery_mode, persistent)

    def rank_of(self, node_id: int) -> Optional[int]:
        """Sender rank of ``node_id`` (None for non-senders)."""
        try:
            return self.senders.index(node_id)
        except ValueError:
            return None


@dataclass(frozen=True)
class View:
    """One membership epoch: ordered members + subgroup structure."""

    view_id: int
    members: Tuple[int, ...]
    subgroups: Tuple[SubgroupSpec, ...]
    #: nodes that departed relative to the previous view (info only)
    departed: Tuple[int, ...] = ()
    #: nodes that joined relative to the previous view (info only)
    joined: Tuple[int, ...] = ()

    def __post_init__(self):
        if len(set(self.members)) != len(self.members):
            raise ValueError("duplicate members in view")
        ids = [sg.subgroup_id for sg in self.subgroups]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate subgroup ids in view")
        for sg in self.subgroups:
            outside = [m for m in sg.members if m not in self.members]
            if outside:
                raise ValueError(
                    f"subgroup {sg.subgroup_id} members {outside} not in view"
                )

    @property
    def leader(self) -> int:
        """Lowest-ranked member: the view-change leader."""
        return self.members[0]

    def rank_of(self, node_id: int) -> int:
        """Position of a node in the (ordered) top-level membership."""
        return self.members.index(node_id)

    def without(self, failed: Sequence[int], next_view_id: Optional[int] = None
                ) -> "View":
        """The successor view after removing ``failed`` nodes.

        Subgroups shrink accordingly; a subgroup whose members all
        failed is dropped. Sender order among survivors is preserved.
        """
        failed_set = set(failed)
        members = tuple(m for m in self.members if m not in failed_set)
        if not members:
            raise ValueError("cannot form an empty view")
        new_subgroups = []
        for sg in self.subgroups:
            new_members = tuple(m for m in sg.members if m not in failed_set)
            if not new_members:
                continue
            new_senders = tuple(s for s in sg.senders if s not in failed_set)
            if not new_senders:
                new_senders = (new_members[0],)
            new_subgroups.append(
                SubgroupSpec(sg.subgroup_id, new_members, new_senders,
                             sg.window, sg.message_size, sg.delivery_mode,
                             sg.persistent)
            )
        return View(
            view_id=self.view_id + 1 if next_view_id is None else next_view_id,
            members=members,
            subgroups=tuple(new_subgroups),
            departed=tuple(failed_set & set(self.members)),
        )

    def with_joined(
        self,
        joiners: Sequence[int],
        subgroups_to_join: Optional[Sequence[int]] = None,
        as_senders: bool = True,
    ) -> "View":
        """The successor view after nodes join at an epoch boundary.

        Joins are handled between epochs (paper §2.1: membership changes
        happen at view changes): the joiners are appended to the
        top-level membership and, optionally, to the listed subgroups —
        at the end of the member (and sender) lists, so existing ranks
        are preserved.
        """
        joiner_set = set(joiners)
        if joiner_set & set(self.members):
            raise ValueError("joiners already members")
        if len(joiner_set) != len(joiners):
            raise ValueError("duplicate joiners")
        target = set(subgroups_to_join) if subgroups_to_join is not None \
            else {sg.subgroup_id for sg in self.subgroups}
        new_subgroups = []
        for sg in self.subgroups:
            if sg.subgroup_id in target:
                new_subgroups.append(SubgroupSpec(
                    sg.subgroup_id,
                    sg.members + tuple(joiners),
                    sg.senders + tuple(joiners) if as_senders else sg.senders,
                    sg.window, sg.message_size, sg.delivery_mode,
                    sg.persistent,
                ))
            else:
                new_subgroups.append(sg)
        return View(
            view_id=self.view_id + 1,
            members=self.members + tuple(joiners),
            subgroups=tuple(new_subgroups),
            joined=tuple(joiners),
        )

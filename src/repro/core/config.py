"""Configuration for the Derecho/Spindle protocol stack.

Two dataclasses:

* :class:`SpindleConfig` — feature toggles. Each Spindle optimization
  from the paper (§3) can be enabled independently, which is exactly how
  the paper evaluates them (Fig. 5 adds delivery, receive and send
  batching one at a time; Fig. 12 adds early lock release on top; etc.).
  ``SpindleConfig.baseline()`` reproduces pre-Spindle Derecho;
  ``SpindleConfig.optimized()`` enables everything.

* :class:`TimingModel` — CPU cost constants for protocol actions. The
  RDMA-side constants live in :class:`repro.rdma.latency.LatencyModel`;
  these are the host-side costs (predicate evaluation, upcalls, memcpy,
  lock operations) calibrated to the magnitudes the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..sim.units import gb_per_s, us

__all__ = ["SpindleConfig", "TimingModel"]


@dataclass(frozen=True)
class SpindleConfig:
    """Feature toggles for the Spindle optimizations (paper §3).

    The default-constructed config is the *baseline*: per-message sends
    and acknowledgments, no null messages, RDMA writes posted while
    holding the shared lock — pre-Spindle Derecho behaviour.
    """

    #: §3.2 — send predicate aggregates all queued messages into at most
    #: two RDMA writes per remote member (ring wrap-around).
    batch_send: bool = False
    #: §3.2 — receive predicate sweeps every sender's slots, consuming
    #: all arrived messages, then acknowledges once.
    batch_receive: bool = False
    #: §3.2 — delivery predicate delivers every deliverable message,
    #: then acknowledges once.
    batch_delivery: bool = False
    #: §3.3 — null-send scheme for lagging senders.
    null_sends: bool = False
    #: §3.3 — announce the nulls determined by one receive sweep as a
    #: single integer rather than one announcement per null.
    null_send_batched: bool = True
    #: §3.4 — restructure predicates to post RDMA writes after releasing
    #: the shared lock.
    early_lock_release: bool = False
    #: §3.5 option 1 — deliver a whole batch to the application in one
    #: upcall instead of one upcall per message.
    batched_upcall: bool = False
    #: §3.1/§4.4 — application copies data into the send slot rather
    #: than constructing in place (adds a memcpy on the send path).
    copy_on_send: bool = False
    #: §4.4 — application memcpy's the message out of the ring buffer
    #: during the delivery upcall.
    copy_on_delivery: bool = False
    #: Ablation (§3.2: "performance collapsed"): if > 0, the send
    #: predicate *waits* until this many messages are queued. 0 means
    #: opportunistic (send whatever is there).
    fixed_send_batch: int = 0

    # -- canned configurations ------------------------------------------------

    @classmethod
    def baseline(cls) -> "SpindleConfig":
        """Pre-Spindle Derecho: no batching, no nulls, locks held across posts."""
        return cls()

    @classmethod
    def batching_only(cls) -> "SpindleConfig":
        """Opportunistic batching at all three stages (§4.1)."""
        return cls(batch_send=True, batch_receive=True, batch_delivery=True)

    @classmethod
    def batching_and_nulls(cls) -> "SpindleConfig":
        """Batching plus the null-send scheme (§4.2)."""
        return cls(batch_send=True, batch_receive=True, batch_delivery=True,
                   null_sends=True)

    @classmethod
    def optimized(cls) -> "SpindleConfig":
        """All Spindle optimizations (§4.3 onward: 'final')."""
        return cls(batch_send=True, batch_receive=True, batch_delivery=True,
                   null_sends=True, early_lock_release=True)

    def with_(self, **changes) -> "SpindleConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


@dataclass(frozen=True)
class TimingModel:
    """Host-side CPU cost constants (seconds).

    Calibrated so the simulated system matches the paper's reported
    magnitudes: posting dominates the baseline predicate thread (>30 %
    of its time, §3.2), predicate evaluation is cheap but adds up across
    tens of subgroups (§4.1.3), and a 10 KB memcpy costs well under a
    microsecond (§4.4).
    """

    #: Cost to test one predicate that finds nothing (branchy poll code).
    predicate_eval: float = us(0.05)
    #: Extra cost to check one sender's slot in the receive predicate.
    slot_check: float = us(0.05)
    #: Fixed cost of running any trigger body (bookkeeping, min-scan).
    trigger_base: float = us(0.15)
    #: Per-message cost in the receive trigger (counter update etc.).
    receive_per_message: float = us(0.15)
    #: Per-message protocol cost in the delivery trigger.
    delivery_per_message: float = us(0.15)
    #: Application processing time per delivered message (the upcall).
    delivery_upcall: float = us(0.40)
    #: With batched upcalls: fixed cost per batch...
    batched_upcall_base: float = us(0.20)
    #: ...plus this much per message in the batch.
    batched_upcall_per_message: float = us(0.05)
    #: Application-thread cost to claim a slot and queue a send.
    send_queue_cost: float = us(0.15)
    #: Application-thread cost to construct a message in place
    #: (excluding any payload memcpy, which is modeled separately).
    message_construct: float = us(0.20)
    #: CPU cost of a lock acquire or release operation.
    lock_op: float = us(0.02)
    #: Poll granularity: how often an otherwise-idle application sender
    #: rechecks for a free slot if not woken through a doorbell.
    sender_poll: float = us(0.50)

    # -- memcpy model (paper Fig. 14) -----------------------------------------

    #: Base latency of any memcpy call.
    memcpy_base: float = us(0.05)
    #: Copy bandwidth while data fits in cache (≤ cache_boundary).
    memcpy_bw_cached: float = gb_per_s(25.0)
    #: Copy bandwidth beyond the cache boundary.
    memcpy_bw_uncached: float = gb_per_s(8.0)
    #: Working-set size where copy bandwidth degrades.
    memcpy_cache_boundary: int = 256 * 1024

    def memcpy_time(self, size: int) -> float:
        """Latency of copying ``size`` bytes (Fig. 14 shape: flat for
        small sizes, deteriorating past the cache boundary)."""
        if size <= self.memcpy_cache_boundary:
            return self.memcpy_base + size / self.memcpy_bw_cached
        cached = self.memcpy_cache_boundary / self.memcpy_bw_cached
        rest = (size - self.memcpy_cache_boundary) / self.memcpy_bw_uncached
        return self.memcpy_base + cached + rest

    def memcpy_bandwidth(self, size: int) -> float:
        """Effective memcpy bandwidth in bytes/second for ``size``."""
        return size / self.memcpy_time(size)

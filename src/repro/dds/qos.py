"""DDS quality-of-service levels (paper §4.6).

The avionics DDS offers four QoS levels, each mapping to a delivery
mode plus receiver-side storage behaviour:

1. **UNORDERED** — data is delivered to the application as it arrives,
   without waiting for stability, and discarded after delivery.
2. **ATOMIC** — Derecho atomic multicast (total order, stability);
   discarded after the delivery upcall.
3. **VOLATILE** — atomic multicast + the sample is copied into an
   in-memory store on each receiver (a joining subscriber can catch up).
4. **LOGGED** — volatile + the sample is appended to a log file on SSD.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Optional

__all__ = ["QosLevel", "QosProfile"]


class QosLevel(IntEnum):
    """The four QoS levels, ordered by increasing guarantees."""

    UNORDERED = 1
    ATOMIC = 2
    VOLATILE = 3
    LOGGED = 4

    @property
    def ordered(self) -> bool:
        """True if the level guarantees a total delivery order."""
        return self is not QosLevel.UNORDERED

    @property
    def stores(self) -> bool:
        """True if receivers retain the sample after the upcall."""
        return self in (QosLevel.VOLATILE, QosLevel.LOGGED)


@dataclass(frozen=True)
class QosProfile:
    """A QoS level plus its tunables."""

    level: QosLevel = QosLevel.ATOMIC
    #: Samples retained per topic in the volatile store (None = unbounded).
    history_depth: Optional[int] = None

    def __post_init__(self):
        if self.history_depth is not None and self.history_depth <= 0:
            raise ValueError("history_depth must be positive")
        if self.history_depth is not None and not self.level.stores:
            raise ValueError(
                f"history_depth is meaningless for QoS {self.level.name}"
            )

"""DDS topics: 8-bit topic numbers bound to a data type and QoS."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .marshal import DataType
from .qos import QosProfile

__all__ = ["Topic", "MAX_TOPICS"]

#: The OMG avionics profile uses 8-bit topic numbers (paper §1).
MAX_TOPICS = 256


@dataclass(frozen=True)
class Topic:
    """One publish-subscribe topic in the Global Data Space.

    The domain maps each topic to a Derecho subgroup whose members are
    the topic's publishers plus subscribers (§4.6).
    """

    topic_id: int
    name: str
    data_type: DataType
    qos: QosProfile
    publishers: Tuple[int, ...]
    subscribers: Tuple[int, ...]
    message_size: int = 10240
    window: int = 100

    def __post_init__(self):
        if not 0 <= self.topic_id < MAX_TOPICS:
            raise ValueError(
                f"topic id {self.topic_id} outside the 8-bit range"
            )
        if not self.publishers:
            raise ValueError("topic needs at least one publisher")
        if self.message_size <= 0 or self.window <= 0:
            raise ValueError("message_size and window must be positive")

    @property
    def participants(self) -> Tuple[int, ...]:
        """Publisher and subscriber nodes, deduplicated, in node order."""
        return tuple(sorted(set(self.publishers) | set(self.subscribers)))

"""External DDS clients: publish/subscribe through a relay member.

The paper's DDS "also supports 'external clients' that connect to the
DDS via TCP or RDMA, requiring an extra relaying step" (§4.6 — built
but not evaluated there). This module supplies that mode:

* an :class:`ExternalClient` lives *outside* the RDMA group — it talks
  to one group member (its relay) over a point-to-point transport,
* publishes are shipped to the relay, which multicasts them into the
  topic's subgroup on the client's behalf (so they gain the same
  atomicity and ordering guarantees as native publishes),
* subscriptions are served by the relay forwarding each delivered
  sample back over the client link.

Two stock transports model the paper's options: kernel TCP (tens of µs,
per-message syscall cost) and one-sided RDMA to the client's NIC.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, List, Optional, Tuple

from ..sim.sync import Doorbell
from ..sim.units import gb_per_s, us
from .domain import DataWriter, DdsDomain, Sample
from .topic import Topic

__all__ = ["ClientTransport", "TCP_TRANSPORT", "RDMA_TRANSPORT",
           "ExternalClient"]


@dataclass(frozen=True)
class ClientTransport:
    """Timing model of a client-to-relay link."""

    name: str
    #: One-way propagation + stack latency per message.
    latency: float
    #: Link bandwidth, bytes/second.
    bandwidth: float
    #: CPU time per message on each endpoint (syscalls, (de)framing).
    per_message_cpu: float

    def transfer_time(self, size: int) -> float:
        return self.latency + size / self.bandwidth


#: Kernel TCP over the datacenter network.
TCP_TRANSPORT = ClientTransport("tcp", latency=us(30),
                                bandwidth=gb_per_s(1.25),
                                per_message_cpu=us(2.0))
#: One-sided RDMA to the external client's own NIC.
RDMA_TRANSPORT = ClientTransport("rdma", latency=us(2.0),
                                 bandwidth=gb_per_s(12.5),
                                 per_message_cpu=us(0.3))


class ExternalClient:
    """A process outside the group, attached to one relay member.

    Create after ``domain.build()``::

        client = ExternalClient(domain, relay_node=0)
        client.subscribe(topic, listener=...)
        domain.spawn(client.publisher(topic, samples))
    """

    def __init__(
        self,
        domain: DdsDomain,
        relay_node: int,
        transport: ClientTransport = TCP_TRANSPORT,
        name: str = "client",
    ):
        if relay_node not in domain.cluster.node_ids:
            raise ValueError(f"unknown relay node {relay_node}")
        self.domain = domain
        self.relay_node = relay_node
        self.transport = transport
        self.name = name
        self.sim = domain.sim
        #: Client uplink/downlink serialization (shared full-duplex pair).
        self._uplink_free = 0.0
        self._downlink_free = 0.0
        #: Pending publishes at the relay: (topic, payload bytes).
        self._relay_queue: Deque[Tuple[Topic, Any]] = deque()
        self._relay_bell = Doorbell(self.sim, name=f"{name}.relay")
        self._writers: dict = {}
        self._relay_proc = self.sim.spawn(
            self._relay_loop(), name=f"{name}.relay@{relay_node}"
        )
        self.published = 0
        self.relayed = 0
        self.received: List[Sample] = []
        self._listeners: List[Callable[[Sample], None]] = []

    # ------------------------------------------------------------ publishing

    def publish(self, topic: Topic, value: Any):
        """Ship one sample to the relay (generator for the client's
        process); the relay multicasts it into the topic's subgroup."""
        data = topic.data_type.serialize(value)
        yield self.transport.per_message_cpu
        start = max(self.sim.now, self._uplink_free)
        finish = start + len(data) / self.transport.bandwidth
        self._uplink_free = finish
        arrival = finish + self.transport.latency
        self.published += 1
        self.sim.call_at(arrival, self._relay_enqueue, topic, data)
        # The client returns once the sample is on the wire.
        yield max(0.0, finish - self.sim.now)

    def publisher(self, topic: Topic, samples):
        """Convenience process: publish each sample, then finish."""
        for value in samples:
            yield from self.publish(topic, value)
        writer = self._writer(topic)
        writer.finish()

    def _relay_enqueue(self, topic: Topic, data: bytes) -> None:
        self._relay_queue.append((topic, data))
        self._relay_bell.ring()

    def _writer(self, topic: Topic) -> DataWriter:
        writer = self._writers.get(topic.topic_id)
        if writer is None:
            writer = self.domain.participant(self.relay_node).create_writer(topic)
            self._writers[topic.topic_id] = writer
        return writer

    def _relay_loop(self):
        """The relay member's forwarding thread: drains the client's
        publish queue into atomic multicasts."""
        while True:
            while self._relay_queue:
                topic, data = self._relay_queue.popleft()
                yield self.transport.per_message_cpu
                writer = self._writer(topic)
                yield from writer.write(data if isinstance(data, bytes)
                                        else topic.data_type.serialize(data))
                self.relayed += 1
            yield self._relay_bell.wait()

    # ----------------------------------------------------------- subscribing

    def subscribe(self, topic: Topic,
                  listener: Optional[Callable[[Sample], None]] = None) -> None:
        """Subscribe via the relay: each sample the relay delivers is
        forwarded to the client over the transport."""
        if listener is not None:
            self._listeners.append(listener)
        reader = self.domain.participant(self.relay_node).create_reader(
            topic, listener=lambda sample: self._forward(sample)
        )
        self._reader = reader

    def _forward(self, sample: Sample) -> None:
        start = max(self.sim.now, self._downlink_free)
        finish = start + sample.size / self.transport.bandwidth
        self._downlink_free = finish
        self.sim.call_at(finish + self.transport.latency,
                         self._client_receive, sample)

    def _client_receive(self, sample: Sample) -> None:
        self.received.append(sample)
        for listener in self._listeners:
            listener(sample)

    def close(self) -> None:
        """Detach: stop the relay loop."""
        if self._relay_proc.alive:
            self._relay_proc.kill()

"""OMG-DDS layer over Derecho+Spindle (paper §4.6).

Data-Centric Publish-Subscribe mapped onto Derecho subgroups: one topic
per subgroup, publishers as designated senders, four QoS levels
(unordered, atomic multicast, volatile storage, logged storage).
"""

from .domain import DataReader, DataWriter, DdsDomain, DomainParticipant, Sample
from .marshal import DataType, SequenceType, StructType
from .qos import QosLevel, QosProfile
from .storage import SsdLog, SsdModel, VolatileStore
from .topic import MAX_TOPICS, Topic

__all__ = [
    "DdsDomain",
    "DomainParticipant",
    "DataWriter",
    "DataReader",
    "Sample",
    "DataType",
    "SequenceType",
    "StructType",
    "QosLevel",
    "QosProfile",
    "VolatileStore",
    "SsdLog",
    "SsdModel",
    "Topic",
    "MAX_TOPICS",
]

from .external import (
    ClientTransport,
    ExternalClient,
    RDMA_TRANSPORT,
    TCP_TRANSPORT,
)

__all__ += [
    "ExternalClient",
    "ClientTransport",
    "TCP_TRANSPORT",
    "RDMA_TRANSPORT",
]

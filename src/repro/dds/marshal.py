"""DDS data types and marshalling.

The paper's DDS exchanges byte-vector *Sequence* samples constructed in
place, avoiding serialization entirely (§4.6: "because the data type did
not require serialization, our experiment does not encounter the
potentially significant delays that such a step would have introduced").
A standard marshaller is used "if a setting requires full generality"
(§3.1) — :class:`StructType` provides that path, with its cost modeled
as a copy of the marshalled size.
"""

from __future__ import annotations

import struct
from typing import Any, List, Sequence as Seq, Tuple

__all__ = ["DataType", "SequenceType", "StructType"]


class DataType:
    """Base class for DDS data types."""

    name = "abstract"
    #: True if samples must be serialized into the send slot (costs a
    #: copy); False means the application constructs bytes in place.
    needs_marshalling = False

    def serialize(self, value: Any) -> bytes:
        raise NotImplementedError

    def deserialize(self, data: bytes) -> Any:
        raise NotImplementedError


class SequenceType(DataType):
    """The paper's *Sequence* type: a plain byte vector, zero-copy."""

    name = "Sequence"
    needs_marshalling = False

    def serialize(self, value: bytes) -> bytes:
        if not isinstance(value, (bytes, bytearray, memoryview)):
            raise TypeError(f"Sequence samples must be bytes, got {type(value)}")
        return bytes(value)

    def deserialize(self, data: bytes) -> bytes:
        return data


class StructType(DataType):
    """A fixed-layout struct type marshalled with the OMG-style CDR
    flavour of :mod:`struct` (little-endian, packed).

    >>> t = StructType("Position", [("lat", "d"), ("lon", "d"), ("alt", "f")])
    >>> t.deserialize(t.serialize({"lat": 1.0, "lon": 2.0, "alt": 3.0}))["lon"]
    2.0
    """

    needs_marshalling = True

    def __init__(self, name: str, fields: Seq[Tuple[str, str]]):
        if not fields:
            raise ValueError("struct type needs at least one field")
        self.name = name
        self.fields: List[Tuple[str, str]] = list(fields)
        self._struct = struct.Struct("<" + "".join(fmt for _, fmt in fields))

    @property
    def size(self) -> int:
        """Marshalled size in bytes."""
        return self._struct.size

    def serialize(self, value: dict) -> bytes:
        try:
            ordered = [value[name] for name, _ in self.fields]
        except KeyError as missing:
            raise ValueError(f"sample missing field {missing}") from None
        return self._struct.pack(*ordered)

    def deserialize(self, data: bytes) -> dict:
        values = self._struct.unpack(data[: self._struct.size])
        return {name: v for (name, _), v in zip(self.fields, values)}

"""Receiver-side storage for the VOLATILE and LOGGED QoS levels.

The time cost of storing is charged on the delivery path through the
subgroup's ``extra_delivery_cost`` hook (set up by the domain); these
classes hold the *contents* so tests and late-joining subscribers can
read them back.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from ..sim.units import gb_per_s, us

__all__ = ["VolatileStore", "SsdModel", "SsdLog"]


class VolatileStore:
    """In-memory sample store, bounded by an optional history depth.

    One per (node, topic): a joining subscriber can be initialized from
    a peer's snapshot (the catch-up use case of QoS 3, §4.6).
    """

    def __init__(self, history_depth: Optional[int] = None):
        self.history_depth = history_depth
        self._samples: Deque[Tuple[int, bytes]] = deque(
            maxlen=history_depth
        )
        self.total_stored = 0

    def store(self, seq: int, data: bytes) -> None:
        self._samples.append((seq, data))
        self.total_stored += 1

    def snapshot(self) -> List[Tuple[int, bytes]]:
        """Copy of the retained (seq, sample) history, oldest first."""
        return list(self._samples)

    def __len__(self) -> int:
        return len(self._samples)


@dataclass(frozen=True)
class SsdModel:
    """Timing model of the log device (§4.6: a log file on SSD).

    Appends are modeled with group-commit amortization: a small fixed
    overhead plus bandwidth-proportional time per sample, rather than a
    full fsync per append.
    """

    append_base: float = us(2.0)
    write_bandwidth: float = gb_per_s(2.0)

    def append_time(self, size: int) -> float:
        return self.append_base + size / self.write_bandwidth


class SsdLog:
    """One node's append-only message log."""

    def __init__(self, model: Optional[SsdModel] = None):
        self.model = model if model is not None else SsdModel()
        self.entries: List[Tuple[int, int, bytes]] = []  # (topic, seq, data)
        self.total_bytes = 0

    def append(self, topic_id: int, seq: int, data: bytes) -> None:
        self.entries.append((topic_id, seq, data))
        self.total_bytes += len(data) if data is not None else 0

    def replay(self, topic_id: int) -> List[Tuple[int, bytes]]:
        """All logged (seq, sample) entries of one topic, in log order —
        the debugging/time-series use case the paper mentions."""
        return [(seq, data) for (t, seq, data) in self.entries if t == topic_id]

    def __len__(self) -> int:
        return len(self.entries)

"""The DDS domain: DCPS entities mapped onto Derecho subgroups.

Mirrors the paper's DDS prototype (§4.6): one Derecho top-level group
contains all publishers and subscribers; each topic becomes a subgroup
whose members are exactly the processes that publish or subscribe to
that topic, with the publishers as the designated senders. Messages are
constructed in place in Derecho-provided slots and marked ready to send.

    domain = DdsDomain(num_nodes=4, config=SpindleConfig.optimized())
    topic = domain.create_topic("altitude", publishers=[0],
                                subscribers=[1, 2, 3],
                                qos=QosProfile(QosLevel.ATOMIC))
    domain.build()
    writer = domain.participant(0).create_writer(topic)
    reader = domain.participant(1).create_reader(topic, listener=...)
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from ..core.config import SpindleConfig, TimingModel
from ..rdma.latency import LatencyModel
from ..workloads.cluster import Cluster
from .marshal import DataType, SequenceType
from .qos import QosLevel, QosProfile
from .storage import SsdLog, SsdModel, VolatileStore
from .topic import MAX_TOPICS, Topic

__all__ = ["DdsDomain", "DomainParticipant", "DataWriter", "DataReader", "Sample"]


class Sample:
    """One received sample, as handed to reader listeners."""

    __slots__ = ("topic", "publisher", "seq", "value", "size")

    def __init__(self, topic: Topic, publisher: int, seq: int,
                 value: Any, size: int):
        self.topic = topic
        self.publisher = publisher
        self.seq = seq
        self.value = value
        self.size = size

    def __repr__(self) -> str:
        return (f"<Sample topic={self.topic.name!r} seq={self.seq} "
                f"from={self.publisher} {self.size}B>")


class DdsDomain:
    """Cluster-level DDS builder and registry."""

    def __init__(
        self,
        num_nodes: int,
        config: Optional[SpindleConfig] = None,
        timing: Optional[TimingModel] = None,
        latency: Optional[LatencyModel] = None,
        ssd: Optional[SsdModel] = None,
        seed: int = 0,
    ):
        self.cluster = Cluster(num_nodes, config=config, timing=timing,
                               latency=latency, seed=seed)
        self.ssd_model = ssd if ssd is not None else SsdModel()
        self.topics: Dict[int, Topic] = {}
        self.topics_by_name: Dict[str, Topic] = {}
        self._topic_subgroup: Dict[int, int] = {}
        self._participants: Dict[int, "DomainParticipant"] = {}
        self.ssd_logs: Dict[int, SsdLog] = {}
        self._built = False

    # ----------------------------------------------------------------- setup

    def create_topic(
        self,
        name: str,
        publishers: Sequence[int],
        subscribers: Sequence[int],
        data_type: Optional[DataType] = None,
        qos: Optional[QosProfile] = None,
        message_size: int = 10240,
        window: int = 100,
    ) -> Topic:
        """Declare a topic (before :meth:`build`)."""
        if self._built:
            raise RuntimeError("domain already built")
        if name in self.topics_by_name:
            raise ValueError(f"duplicate topic name {name!r}")
        if len(self.topics) >= MAX_TOPICS:
            raise ValueError("8-bit topic space exhausted")
        topic = Topic(
            topic_id=len(self.topics),
            name=name,
            data_type=data_type if data_type is not None else SequenceType(),
            qos=qos if qos is not None else QosProfile(),
            publishers=tuple(publishers),
            subscribers=tuple(subscribers),
            message_size=message_size,
            window=window,
        )
        mode = "unordered" if topic.qos.level is QosLevel.UNORDERED else "atomic"
        spec = self.cluster.add_subgroup(
            members=topic.participants,
            senders=topic.publishers,
            window=window,
            message_size=message_size,
            delivery_mode=mode,
        )
        self.topics[topic.topic_id] = topic
        self.topics_by_name[name] = topic
        self._topic_subgroup[topic.topic_id] = spec.subgroup_id
        return topic

    def build(self) -> "DdsDomain":
        """Build the underlying cluster and wire QoS delivery costs."""
        self.cluster.build()
        timing = self.cluster.timing
        for topic in self.topics.values():
            level = topic.qos.level
            if not level.stores:
                continue
            if level is QosLevel.VOLATILE:
                cost = timing.memcpy_time
            else:  # LOGGED: copy into the store, then append to SSD
                cost = lambda size, t=timing: (
                    t.memcpy_time(size) + self.ssd_model.append_time(size)
                )
            sg = self._topic_subgroup[topic.topic_id]
            for node_id in topic.participants:
                self.cluster.mc(node_id, sg).extra_delivery_cost = cost
        self._built = True
        return self

    # ------------------------------------------------------------------ access

    def participant(self, node_id: int) -> "DomainParticipant":
        """The (cached) participant endpoint on one node."""
        if node_id not in self._participants:
            self._participants[node_id] = DomainParticipant(self, node_id)
        return self._participants[node_id]

    def subgroup_of(self, topic: Topic) -> int:
        return self._topic_subgroup[topic.topic_id]

    def ssd_log(self, node_id: int) -> SsdLog:
        """The node's simulated SSD log (created on first use)."""
        if node_id not in self.ssd_logs:
            self.ssd_logs[node_id] = SsdLog(self.ssd_model)
        return self.ssd_logs[node_id]

    # -------------------------------------------------------------- running

    @property
    def sim(self):
        return self.cluster.sim

    def spawn(self, generator, name: str = "dds-app"):
        return self.cluster.spawn_sender(generator, name=name)

    def run(self, until: Optional[float] = None) -> float:
        return self.cluster.run(until=until)

    def run_to_quiescence(self, max_time: float = 5.0) -> float:
        return self.cluster.run_to_quiescence(max_time=max_time)

    # -------------------------------------------------------------- metrics

    def topic_throughput(self, topic: Topic) -> float:
        """Delivered bytes/second averaged over the topic's members."""
        return self.cluster.aggregate_throughput(self.subgroup_of(topic))

    def topic_latency(self, topic: Topic) -> float:
        return self.cluster.mean_latency(self.subgroup_of(topic))


class DomainParticipant:
    """One node's DCPS endpoint factory."""

    def __init__(self, domain: DdsDomain, node_id: int):
        if node_id not in domain.cluster.node_ids:
            raise ValueError(f"unknown node {node_id}")
        self.domain = domain
        self.node_id = node_id

    def create_writer(self, topic: Topic) -> "DataWriter":
        """A writer for a topic this node publishes."""
        if self.node_id not in topic.publishers:
            raise ValueError(
                f"node {self.node_id} is not a publisher of {topic.name!r}"
            )
        return DataWriter(self.domain, topic, self.node_id)

    def create_reader(
        self,
        topic: Topic,
        listener: Optional[Callable[[Sample], None]] = None,
    ) -> "DataReader":
        """A reader for a topic this node subscribes to (publishers may
        also read their own topic — they are subgroup members)."""
        if self.node_id not in topic.participants:
            raise ValueError(
                f"node {self.node_id} does not participate in {topic.name!r}"
            )
        return DataReader(self.domain, topic, self.node_id, listener)


class DataWriter:
    """DCPS DataWriter: publishes samples into the topic's subgroup."""

    def __init__(self, domain: DdsDomain, topic: Topic, node_id: int):
        self.domain = domain
        self.topic = topic
        self.node_id = node_id
        self.mc = domain.cluster.mc(node_id, domain.subgroup_of(topic))
        self.samples_written = 0

    def write(self, value: Any):
        """Publish one sample (a generator for the app's process).

        Marshals the value if the topic's type requires it (charging the
        marshalling copy); Sequence samples go zero-copy.
        """
        data = self.topic.data_type.serialize(value)
        if len(data) > self.topic.message_size:
            raise ValueError(
                f"sample of {len(data)}B exceeds topic max "
                f"{self.topic.message_size}B"
            )
        if self.topic.data_type.needs_marshalling:
            yield self.domain.cluster.timing.memcpy_time(len(data))
        yield from self.mc.send(max(len(data), 1), data)
        self.samples_written += 1

    def write_sized(self, size: int):
        """Publish a timing-only sample of ``size`` bytes (benchmarks)."""
        yield from self.mc.send(size, None)
        self.samples_written += 1

    def finish(self) -> None:
        """Signal that this writer is done (lets the pipeline settle)."""
        self.mc.mark_finished()


class DataReader:
    """DCPS DataReader: receives samples; stores them per the QoS."""

    def __init__(self, domain: DdsDomain, topic: Topic, node_id: int,
                 listener: Optional[Callable[[Sample], None]] = None):
        self.domain = domain
        self.topic = topic
        self.node_id = node_id
        self.listener = listener
        self.received = 0
        self._queue: List[Sample] = []
        self.store: Optional[VolatileStore] = (
            VolatileStore(topic.qos.history_depth)
            if topic.qos.level.stores else None
        )
        group = domain.cluster.group(node_id)
        group.on_delivery(domain.subgroup_of(topic), self._on_delivery)

    def _on_delivery(self, delivery) -> None:
        value = (self.topic.data_type.deserialize(delivery.payload)
                 if delivery.payload is not None else None)
        sample = Sample(self.topic, delivery.sender, delivery.seq,
                        value, delivery.size)
        self.received += 1
        if self.store is not None:
            self.store.store(delivery.seq, delivery.payload)
        if self.topic.qos.level is QosLevel.LOGGED:
            self.domain.ssd_log(self.node_id).append(
                self.topic.topic_id, delivery.seq, delivery.payload
            )
        if self.listener is not None:
            self.listener(sample)
        else:
            self._queue.append(sample)

    def take(self) -> List[Sample]:
        """Drain and return queued samples (polling-style access)."""
        samples, self._queue = self._queue, []
        return samples

"""Crash-recovery & rejoin plane (docs/RECOVERY.md).

Modules:

* :mod:`repro.recovery.trim` — the ragged-edge trim formalized:
  :class:`TrimDecision`, :class:`TrimLedger`, :func:`compute_trim`.
* :mod:`repro.recovery.transfer` — chunked state transfer over the
  simulated fabric with per-chunk timeout, bounded exponential backoff
  with jitter, source failover and CRC validation.
* :mod:`repro.recovery.coordinator` — the
  :class:`RecoveryCoordinator` driving restart → replay → catch-up →
  rejoin at the next epoch boundary.
* :mod:`repro.recovery.verify` — the cross-view virtual-synchrony
  safety verifier (atomicity, total order, gap-freedom, trim
  conformance).
* :mod:`repro.recovery.powerloss` — whole-cluster power-loss recovery:
  every node restarts from its durable devices, logs reconcile
  longest-log-wins (docs/DURABILITY.md).

Exports resolve lazily (PEP 562) so that :mod:`repro.core` modules can
import :mod:`repro.recovery.trim` — which is dependency-free — without
dragging the coordinator (and hence the core) back in.
"""

from typing import TYPE_CHECKING

__all__ = [
    "TrimDecision",
    "TrimLedger",
    "compute_trim",
    "TransferConfig",
    "TransferOutcome",
    "StateTransfer",
    "encode_entries",
    "decode_entries",
    "RecoveryConfig",
    "NodeRecovery",
    "RecoveryCoordinator",
    "VsyncVerifier",
    "VsyncReport",
    "PowerLossReport",
    "recover_power_loss",
    "TxnRecoveryReport",
    "recover_txns",
]

_HOMES = {
    "TrimDecision": "trim",
    "TrimLedger": "trim",
    "compute_trim": "trim",
    "TransferConfig": "transfer",
    "TransferOutcome": "transfer",
    "StateTransfer": "transfer",
    "encode_entries": "transfer",
    "decode_entries": "transfer",
    "RecoveryConfig": "coordinator",
    "NodeRecovery": "coordinator",
    "RecoveryCoordinator": "coordinator",
    "VsyncVerifier": "verify",
    "VsyncReport": "verify",
    "PowerLossReport": "powerloss",
    "recover_power_loss": "powerloss",
    # Coordinator-crash txn recovery lives with the txn plane but is
    # part of the recovery surface (docs/TRANSACTIONS.md).
    "TxnRecoveryReport": "repro.txn.recover",
    "recover_txns": "repro.txn.recover",
}

if TYPE_CHECKING:  # pragma: no cover - typing aid only
    from .coordinator import NodeRecovery, RecoveryConfig, RecoveryCoordinator
    from .powerloss import PowerLossReport, recover_power_loss
    from .transfer import (StateTransfer, TransferConfig, TransferOutcome,
                           decode_entries, encode_entries)
    from .trim import TrimDecision, TrimLedger, compute_trim
    from .verify import VsyncReport, VsyncVerifier
    from ..txn.recover import TxnRecoveryReport, recover_txns  # noqa: F401


def __getattr__(name):
    home = _HOMES.get(name)
    if home is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    if "." in home:  # absolute home outside this package
        module = importlib.import_module(home)
    else:
        module = importlib.import_module(f".{home}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))

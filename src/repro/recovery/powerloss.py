"""Whole-cluster power-loss recovery (docs/DURABILITY.md).

The crash-restart-rejoin path (:mod:`repro.recovery.coordinator`)
assumes a surviving majority to rejoin *into*. A datacenter power event
kills every node in the same window: there is no survivor to transfer
state from, so recovery is storage-only — each node powers back on,
CRC-scans its devices (:meth:`StorageDevice.reopen
<repro.storage.StorageDevice.reopen>` truncates torn/corrupt tails),
and the cluster reconciles the per-node durable logs.

Reconciliation is longest-log-wins, which is safe here by the
durability contract: the ``on_durable`` watermark only fires for
entries fsynced on *every* member, so any acknowledged entry is on all
disks and every scanned log is a prefix of the longest (entries are
appended in delivery order, which is identical everywhere — atomic
multicast). A non-prefix log is therefore a real protocol violation and
fails the recovery. Un-acknowledged suffix entries present on some
disks ride along with the adopted longest log — re-completing
unacknowledged work is legal; losing acknowledged work is not.

The Multi-Paxos backend needs none of this: with
``PaxosConfig(durable_acceptors=True)`` each acceptor recovers its own
promise/accept WAL on restart and the ordinary leader-election +
learn-from-zero path reconstructs the log (docs/ORDERING.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..storage.device import decode_log_entry, encode_log_entry

__all__ = ["PowerLossReport", "recover_power_loss"]


@dataclass
class PowerLossReport:
    """Outcome of one whole-cluster power-loss recovery."""

    ok: bool = True
    problems: List[str] = field(default_factory=list)
    restarted: List[int] = field(default_factory=list)
    #: subgroup -> entry count of the adopted (longest) log.
    adopted: Dict[int, int] = field(default_factory=dict)
    #: subgroup -> highest seq in the adopted log (-1 when empty).
    adopted_seq: Dict[int, int] = field(default_factory=dict)
    #: records CRC-truncated at reopen, across all devices.
    dropped_on_reopen: int = 0
    #: simulated seconds spent streaming logs off the disks.
    read_cost: float = 0.0
    view_id: Optional[int] = None

    def problem(self, text: str) -> None:
        self.ok = False
        self.problems.append(text)


def recover_power_loss(cluster) -> "PowerLossReport":
    """Generator process: recover a fully-crashed cluster from its disks.

    Spawn it after the lights come back on::

        cluster.spawn_sender(driver())   # driver yields from this

    Every node must currently be crashed (a *partial* outage is the
    coordinator's job, not this path). Powers each NIC back on, reopens
    every persistent subgroup's device on every member (charging
    ``StorageModel.read_time`` per log), checks the logs are mutual
    prefixes, adopts the longest per subgroup onto every member, and
    installs the successor view (same members, same subgroups, next
    view id). Returns a :class:`PowerLossReport`.
    """
    from ..core.membership import View

    report = PowerLossReport()
    dead = sorted(cluster.dead_nodes)
    if set(dead) != set(cluster.node_ids):
        raise RuntimeError(
            f"power-loss recovery needs the whole cluster down; dead="
            f"{dead}, provisioned={sorted(cluster.node_ids)}")

    for nid in dead:
        cluster.restart_node(nid)
        report.restarted.append(nid)

    old_view = cluster.view
    for spec in old_view.subgroups:
        if not spec.persistent:
            continue
        sg = spec.subgroup_id
        logs: Dict[int, List[tuple]] = {}
        billed: Dict[int, int] = {}
        for nid in spec.members:
            device = cluster.storage.peek(nid, f"sg{sg}")
            if device is None:
                logs[nid], billed[nid] = [], 0
                continue
            bodies = device.reopen()
            report.dropped_on_reopen += device.counters[
                "records_dropped_on_reopen"]
            logs[nid] = [decode_log_entry(b) for b in bodies]
            billed[nid] = device.billed_total
            cost = cluster.storage_model.read_time(billed[nid])
            report.read_cost += cost
            if cost > 0.0:
                yield cost
        # Longest-log-wins, ties broken by node id for determinism.
        winner = max(spec.members, key=lambda n: (len(logs[n]), -n))
        longest = logs[winner]
        for nid in spec.members:
            mine = logs[nid]
            if mine != longest[:len(mine)]:
                diverge = next(
                    (i for i, (a, b) in enumerate(zip(mine, longest))
                     if a != b), min(len(mine), len(longest)))
                report.problem(
                    f"sg{sg}: node {nid}'s durable log is not a prefix "
                    f"of node {winner}'s (diverges at entry {diverge})")
        report.adopted[sg] = len(longest)
        report.adopted_seq[sg] = longest[-1][0] if longest else -1
        if report.ok:
            pairs = [(encode_log_entry(s, n, p),
                      len(p) if p is not None else 0)
                     for s, n, p in longest]
            winner_base = billed[winner] - sum(b for _f, b in pairs)
            for nid in spec.members:
                cluster.storage.device(nid, f"sg{sg}").rewrite(
                    pairs, billed_base=winner_base)

    if not report.ok:
        return report
    new_view = View(old_view.view_id + 1, old_view.members,
                    old_view.subgroups)
    cluster.install_view(new_view)
    report.view_id = new_view.view_id
    return report

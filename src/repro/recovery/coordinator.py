"""RecoveryCoordinator: restart → replay → catch-up → rejoin.

The fault plane (docs/FAULTS.md) can crash a node and revive its NIC at
``restart_at``, but protocol re-admission is deliberately *not* the
NIC's business: joins happen only at epoch boundaries (paper §2.1).
This module closes that loop. A :class:`RecoveryCoordinator` subscribes
to :attr:`FaultPlane.on_restart <repro.faults.plane.FaultPlane.on_restart>`
and drives each revived node through four audited stages:

1. **wait-view** — wait until the membership protocol has excised the
   crashed node from the installed view (a node cannot rejoin a view it
   is still nominally part of) and no reconfiguration is in flight;
2. **replay** — read the node's durable log back off its (simulated)
   SSD via the persistence plane's carryover store: the replayed prefix
   is state the node does *not* need to fetch, so only the delta moves
   over the wire;
3. **transfer** — pull the delta from a live member with
   :class:`~repro.recovery.transfer.StateTransfer` (chunked, per-chunk
   timeout, bounded exponential backoff with jitter, source failover,
   CRC-validated);
4. **rejoin** — cut an epoch: wedge the survivors' subgroups, wait for
   in-flight traffic to settle, trim to the minimum received index
   (recorded as a ``kind="join"``
   :class:`~repro.recovery.trim.TrimDecision` in the cluster's ledger),
   drain the survivors' persistence engines, take a final tail sync so
   the adopted log is byte-complete, seed the joiner's durable log, and
   install ``view.with_joined([node])``. The joiner's application state
   is rebuilt through registered appliers and validated against a
   survivor's ``checksum()``.

The coordinator also (optionally) **auto-installs** failure view
changes: the membership protocol computes the successor view but leaves
installation to the embedding (epoch restart rebuilds every GroupNode);
with ``auto_install=True`` the first commit of each successor view
schedules ``cluster.install_view`` on the next simulator tick, so chaos
scenarios no longer hand-roll the epoch restart.

Every stage is timed into the metrics registry
(``spindle_recovery_stage_seconds{stage=...}``) and summarized in a
per-node :class:`NodeRecovery` report for the CLI / tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.membership import View
from ..sim.units import us
from .transfer import (StateTransfer, TransferConfig, TransferOutcome,
                       decode_entries, encode_entries)
from .trim import TrimDecision, compute_trim

__all__ = ["RecoveryConfig", "NodeRecovery", "RecoveryCoordinator"]

Entry = Tuple[int, int, Optional[bytes]]


@dataclass(frozen=True)
class RecoveryConfig:
    """Knobs of the recovery pipeline (docs/RECOVERY.md)."""

    #: Chunked-transfer parameters (timeouts, backoff, failover).
    transfer: TransferConfig = field(default_factory=TransferConfig)
    #: Polling period for wait-view / settle loops.
    poll_interval: float = us(100.0)
    #: Give up waiting for the membership protocol to excise the node.
    view_wait_timeout: float = 0.25
    #: Consecutive identical received_num snapshots that count as
    #: "settled" after wedging (in-flight multicasts drained).
    settle_polls: int = 3
    #: Cap on wedge→settle→install retries when a concurrent failure
    #: view change races the join cut.
    max_cut_retries: int = 3
    #: Subgroups the node rejoins (None = all it was a member of).
    rejoin_subgroups: Optional[Tuple[int, ...]] = None
    #: Whether the rejoiner comes back as a sender.
    as_senders: bool = True
    #: Install committed *failure* view changes automatically.
    auto_install: bool = True


@dataclass
class NodeRecovery:
    """Audit record of one node's trip through the recovery pipeline."""

    node: int
    state: str = "waiting-view"
    started_at: float = 0.0
    finished_at: float = 0.0
    #: stage name -> simulated seconds spent in it.
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    #: subgroup -> entries recovered from the local durable log.
    replayed: Dict[int, int] = field(default_factory=dict)
    #: subgroup -> entries fetched over the wire (delta + tail).
    fetched: Dict[int, int] = field(default_factory=dict)
    #: subgroup -> transfer outcome of the main delta pull.
    transfers: Dict[int, TransferOutcome] = field(default_factory=dict)
    #: subgroup -> application checksum match vs the source (None if no
    #: checksum hook was registered for that subgroup).
    checksum_ok: Dict[int, Optional[bool]] = field(default_factory=dict)
    rejoin_view_id: Optional[int] = None
    cut_retries: int = 0
    problems: List[str] = field(default_factory=list)

    @property
    def done(self) -> bool:
        return self.state == "done"

    def to_dict(self) -> dict:
        return {
            "node": self.node,
            "state": self.state,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "stage_seconds": dict(self.stage_seconds),
            "replayed": dict(self.replayed),
            "fetched": dict(self.fetched),
            "transfers": {str(sg): t.to_dict()
                          for sg, t in sorted(self.transfers.items())},
            "checksum_ok": {str(sg): v
                            for sg, v in sorted(self.checksum_ok.items())},
            "rejoin_view_id": self.rejoin_view_id,
            "cut_retries": self.cut_retries,
            "problems": list(self.problems),
        }


class RecoveryCoordinator:
    """Orchestrates crash recovery for one cluster.

    Create via :attr:`Cluster.recovery <repro.workloads.cluster.Cluster
    .recovery>` (which constructs and attaches it), or explicitly::

        coord = RecoveryCoordinator(cluster, RecoveryConfig(...))
        coord.set_applier(0, lambda node, entries: ...)
        coord.set_checksum(0, lambda node: stores[node].checksum())
        coord.attach()
    """

    def __init__(self, cluster, config: Optional[RecoveryConfig] = None):
        self.cluster = cluster
        self.config = config if config is not None else RecoveryConfig()
        self.sim = cluster.sim
        self.reports: Dict[int, NodeRecovery] = {}
        self.on_rejoined: List[Callable[[int, View], None]] = []
        self._appliers: Dict[int, Callable[[int, List[Entry]], None]] = {}
        self._checksums: Dict[int, Callable[[int], int]] = {}
        self._attached = False
        self._transfer_count = 0
        self._installed_views: set = set()
        self._wired_services: set = set()
        self._metrics = cluster.metrics
        self._counters = {
            "recoveries_started": self._metrics.counter(
                "spindle_recovery_started_total",
                "recovery pipelines launched by restart callbacks"),
            "recoveries_done": self._metrics.counter(
                "spindle_recovery_completed_total",
                "nodes fully rejoined after a crash"),
            "recoveries_failed": self._metrics.counter(
                "spindle_recovery_failed_total",
                "recovery pipelines that gave up"),
            "transfer_timeouts": self._metrics.counter(
                "spindle_recovery_transfer_timeouts_total",
                "per-chunk timeouts during state transfer"),
            "transfer_failovers": self._metrics.counter(
                "spindle_recovery_transfer_failovers_total",
                "mid-transfer source failovers"),
            "transfer_bytes": self._metrics.counter(
                "spindle_recovery_transfer_bytes_total",
                "state-transfer bytes pulled by rejoining nodes"),
        }

    # ------------------------------------------------------------ app hooks

    def set_applier(self, subgroup_id: int,
                    fn: Callable[[int, List[Entry]], None]) -> None:
        """Register the app-state rebuild hook for a subgroup: called as
        ``fn(node, entries)`` once the rejoiner's durable log is
        complete (entries cover the *whole* log, oldest first)."""
        self._appliers[subgroup_id] = fn

    def set_checksum(self, subgroup_id: int,
                     fn: Callable[[int], int]) -> None:
        """Register the app checksum hook, ``fn(node) -> int`` (e.g.
        ``KvNode.checksum`` / ``ReplicatedQueue.checksum``), used to
        validate convergence after rejoin."""
        self._checksums[subgroup_id] = fn

    # --------------------------------------------------------------- wiring

    def attach(self) -> "RecoveryCoordinator":
        """Subscribe to restart callbacks and (if configured) wire
        auto-install of committed failure view changes. Idempotent."""
        if self._attached:
            return self
        self._attached = True
        self.cluster.faults.on_restart.append(self._on_restart)
        self.cluster.on_view_installed.append(
            lambda _view: self._wire_membership())
        self._wire_membership()
        return self

    def _wire_membership(self) -> None:
        """Hook every current epoch's membership services (re-run after
        each install: groups are rebuilt per epoch)."""
        if not self.config.auto_install:
            return
        for group in self.cluster.groups.values():
            svc = group.membership
            if svc is not None and id(svc) not in self._wired_services:
                self._wired_services.add(id(svc))
                svc.on_new_view.append(self._on_committed_view)

    def _on_committed_view(self, new_view: View) -> None:
        """First commit of a successor view: schedule the epoch restart.

        Scheduled on the next simulator tick rather than installed
        inline — the commit fires from inside the predicate thread that
        the install is about to tear down."""
        if new_view.view_id in self._installed_views:
            return
        self._installed_views.add(new_view.view_id)
        self.sim.call_after(0.0, self._install_committed, new_view)

    def _install_committed(self, new_view: View) -> None:
        current = self.cluster.view
        if current is not None and current.view_id >= new_view.view_id:
            return
        self.cluster.install_view(new_view)

    def _on_restart(self, node_id: int) -> None:
        report = NodeRecovery(node=node_id, started_at=self.sim.now)
        self.reports[node_id] = report
        self._counters["recoveries_started"].inc()
        self.sim.spawn(self._recover(report), name=f"recover@{node_id}")

    # -------------------------------------------------------------- pipeline

    def _fail(self, report: NodeRecovery, problem: str) -> None:
        report.problems.append(problem)
        report.state = "failed"
        report.finished_at = self.sim.now
        self._counters["recoveries_failed"].inc()

    def _stage(self, report: NodeRecovery, stage: str, started: float) -> None:
        elapsed = self.sim.now - started
        report.stage_seconds[stage] = (
            report.stage_seconds.get(stage, 0.0) + elapsed)
        self._metrics.timer(
            "spindle_recovery_stage_seconds",
            "simulated time per recovery stage",
            stage=stage).add(elapsed)

    def _reconfig_in_flight(self) -> bool:
        for group in self.cluster.groups.values():
            svc = group.membership
            if svc is None:
                continue
            node = self.cluster.fabric.nodes.get(group.node_id)
            if node is not None and node.alive \
                    and svc.wedged and not svc.installed:
                return True
        return False

    def _recover(self, report: NodeRecovery):
        cluster = self.cluster
        cfg = self.config
        node = report.node

        # ---- stage 1: wait until the old view has excised the node ------
        t0 = self.sim.now
        deadline = t0 + cfg.view_wait_timeout
        while (node in cluster.view.members) or self._reconfig_in_flight():
            if self.sim.now >= deadline:
                self._stage(report, "wait-view", t0)
                self._fail(report,
                           f"view still contains node {node} after "
                           f"{cfg.view_wait_timeout}s (membership disabled, "
                           f"or the view change never committed)")
                return
            yield cfg.poll_interval
        self._stage(report, "wait-view", t0)

        # ---- stage 2: replay the durable log off the local SSD ----------
        report.state = "replaying"
        t0 = self.sim.now
        target_sgs = self._target_subgroups(node)
        own: Dict[int, List[Entry]] = {}
        for sg_id in target_sgs:
            entries, log_bytes = cluster.durable_log(node, sg_id)
            own[sg_id] = list(entries)
            report.replayed[sg_id] = len(entries)
            read_cost = cluster.storage_model.read_time(log_bytes)
            if read_cost > 0.0:
                yield read_cost
        self._stage(report, "replay", t0)

        # ---- stage 3: pull the delta from a live member -----------------
        report.state = "transferring"
        t0 = self.sim.now
        fetched: Dict[int, List[Entry]] = {}
        for sg_id in target_sgs:
            pulled = yield from self._pull_delta(report, node, sg_id,
                                                 own[sg_id])
            if pulled is None:
                self._stage(report, "transfer", t0)
                return  # _pull_delta already failed the report
            fetched[sg_id] = pulled[0]
        self._stage(report, "transfer", t0)

        # ---- stage 4: epoch-cut rejoin ----------------------------------
        report.state = "rejoining"
        t0 = self.sim.now
        for attempt in range(cfg.max_cut_retries):
            done = yield from self._cut_and_rejoin(report, node, own, fetched)
            if done:
                break
            report.cut_retries += 1
            if attempt + 1 >= cfg.max_cut_retries:
                self._stage(report, "rejoin", t0)
                self._fail(report,
                           f"join cut aborted {report.cut_retries} times by "
                           f"concurrent view changes")
                return
            yield cfg.poll_interval
        self._stage(report, "rejoin", t0)
        if report.state != "done":
            return
        report.finished_at = self.sim.now
        self._counters["recoveries_done"].inc()
        for callback in self.on_rejoined:
            callback(node, cluster.view)

    # --------------------------------------------------------------- helpers

    def _target_subgroups(self, node: int) -> List[int]:
        cfg = self.config
        out = []
        for sg in self.cluster.view.subgroups:
            if cfg.rejoin_subgroups is not None \
                    and sg.subgroup_id not in cfg.rejoin_subgroups:
                continue
            if sg.persistent:
                out.append(sg.subgroup_id)
        return out

    def _live_sources(self, sg_id: int) -> List[int]:
        cluster = self.cluster
        view = cluster.view
        for sg in view.subgroups:
            if sg.subgroup_id == sg_id:
                return [m for m in sg.members
                        if m in cluster.live_nodes() and m in cluster.groups]
        return []

    def _source_log(self, source: int, sg_id: int) -> Optional[List[Entry]]:
        group = self.cluster.groups.get(source)
        if group is None:
            return None
        engine = group.persistence.get(sg_id)
        if engine is None:
            return None
        return engine.log

    def _pull_delta(self, report: NodeRecovery, node: int, sg_id: int,
                    own: List[Entry], record: bool = True):
        """Transfer the durable-log delta past ``own`` for one subgroup,
        over the wire. Returns the decoded entries, or None after
        failing the report. ``record=False`` (tail syncs) accumulates
        counters without overwriting the main transfer outcome."""
        cluster = self.cluster
        prefix = len(own)

        def fetch(source: int) -> Optional[bytes]:
            src_log = self._source_log(source, sg_id)
            if src_log is None or len(src_log) < prefix:
                return None
            # Prefix consistency: the survivor's log must extend ours
            # entry-for-entry (logs are position-aligned — sequence
            # numbers reset each epoch, so positions, not seqs, index
            # the cumulative durable order).
            if src_log[:prefix] != own:
                report.problems.append(
                    f"sg{sg_id}: source {source} log diverges from the "
                    f"local durable prefix; skipping source")
                return None
            return encode_entries(src_log[prefix:])

        sources = self._live_sources(sg_id)
        if not sources:
            self._fail(report, f"sg{sg_id}: no live source to recover from")
            return None
        self._transfer_count += 1
        rng = Random(cluster.seed * 1000003 + node * 1009 + sg_id * 13
                     + self._transfer_count)
        st = StateTransfer(self.sim, cluster.fabric, dest=node,
                           sources=sources, fetch_payload=fetch,
                           config=self.config.transfer, rng=rng)
        outcome = yield from st.run()
        if record or sg_id not in report.transfers:
            report.transfers[sg_id] = outcome
        self._counters["transfer_timeouts"].inc(outcome.timeouts)
        self._counters["transfer_failovers"].inc(outcome.failovers)
        self._counters["transfer_bytes"].inc(outcome.bytes_transferred)
        if not outcome.ok:
            self._fail(report, f"sg{sg_id}: state transfer failed: "
                               f"{outcome.error}")
            return None
        try:
            entries = decode_entries(outcome.data)
        except ValueError as exc:
            self._fail(report, f"sg{sg_id}: transfer stream corrupt: {exc}")
            return None
        report.fetched[sg_id] = report.fetched.get(sg_id, 0) + len(entries)
        return entries, outcome.source

    def _cut_and_rejoin(self, report: NodeRecovery, node: int,
                        own: Dict[int, List[Entry]],
                        fetched: Dict[int, List[Entry]]):
        """One attempt at the epoch cut. Returns True when the joiner is
        installed; False if a concurrent view change invalidated the cut
        (caller retries against the new epoch)."""
        cluster = self.cluster
        cfg = self.config
        cut_view = cluster.view
        cut_view_id = cut_view.view_id

        def view_moved() -> bool:
            return cluster.view.view_id != cut_view_id

        target_sgs = self._target_subgroups(node)
        live = [m for m in cut_view.members if m in cluster.live_nodes()]

        # Wedge the survivors' subgroups: no new multicasts this epoch.
        for member in live:
            group = cluster.groups.get(member)
            if group is None:
                continue
            for mc in group.multicasts.values():
                mc.wedge()

        # Settle: wait until in-flight traffic drains (received counters
        # stop moving for settle_polls consecutive polls).
        stable = 0
        previous = None
        while stable < cfg.settle_polls:
            if view_moved():
                return False
            snapshot = tuple(
                (m, sg_id, cluster.groups[m].multicasts[sg_id].received_seq)
                for m in live if m in cluster.groups
                for sg_id in cluster.groups[m].multicasts
            )
            stable = stable + 1 if snapshot == previous else 1
            previous = snapshot
            yield cfg.poll_interval

        if view_moved():
            return False

        # Trim: minimum received index over the live members, per
        # subgroup; force-deliver that prefix everywhere and record the
        # decision in the ledger for the verifier.
        subgroup_members = {
            sg.subgroup_id: [m for m in sg.members if m in live]
            for sg in cut_view.subgroups
        }
        decision = compute_trim(
            prior_view_id=cut_view_id,
            next_view_id=cut_view_id + 1,
            leader=cut_view.leader,
            failed=(),
            subgroup_members=subgroup_members,
            received_of=lambda m, sg_id:
                cluster.groups[m].multicasts[sg_id].received_seq,
            joined=(node,),
            decided_at=self.sim.now,
            kind="join",
        )
        for sg_id, trim in decision.trims.items():
            for member in subgroup_members[sg_id]:
                group = cluster.groups.get(member)
                if group is not None and sg_id in group.multicasts:
                    group.multicasts[sg_id].force_deliver_up_to(trim)
        if cluster.trim_ledger is not None:
            cluster.trim_ledger.record_join(decision)

        # Drain the survivors' persistence engines so their durable logs
        # are byte-complete through the trim.
        for member in live:
            group = cluster.groups.get(member)
            if group is None:
                continue
            for engine in group.persistence.values():
                while not engine.drained:
                    if view_moved():
                        return False
                    yield cfg.poll_interval

        if view_moved():
            return False

        # Tail sync: the epoch is wedged, trimmed and drained, so the
        # survivors' logs are final. Pull whatever grew past the main
        # delta over the wire (same chunked protocol, one bounded round
        # — nothing can append while the epoch is quiesced).
        full: Dict[int, List[Entry]] = {}
        sources_of: Dict[int, int] = {}
        for sg_id in target_sgs:
            known = list(own.get(sg_id, [])) + list(fetched.get(sg_id, []))
            pulled = yield from self._pull_delta(report, node, sg_id, known,
                                                 record=False)
            if pulled is None:
                return True  # unrecoverable (report already failed)
            tail, source = pulled
            full[sg_id] = known + tail
            sources_of[sg_id] = source
        if view_moved():
            return False

        # Seed the joiner's durable log *before* the install: the new
        # epoch's persistence engine adopts it (PersistenceEngine
        # .adopt_log via Cluster.install_view).
        for sg_id, entries in full.items():
            cluster.adopt_durable_log(node, sg_id, entries)

        new_view = cut_view.with_joined(
            [node],
            subgroups_to_join=cfg.rejoin_subgroups,
            as_senders=cfg.as_senders,
        )
        if view_moved():
            return False
        cluster.install_view(new_view)
        self._installed_views.add(new_view.view_id)
        report.rejoin_view_id = new_view.view_id
        report.state = "done"

        # Rebuild the joiner's application state and validate it against
        # the source's checksum.
        for sg_id, entries in full.items():
            applier = self._appliers.get(sg_id)
            if applier is not None:
                applier(node, entries)
            checksum = self._checksums.get(sg_id)
            if checksum is not None:
                ok = checksum(node) == checksum(sources_of[sg_id])
                report.checksum_ok[sg_id] = ok
                if not ok:
                    report.problems.append(
                        f"sg{sg_id}: checksum mismatch vs source "
                        f"{sources_of[sg_id]} after rejoin")
            else:
                report.checksum_ok[sg_id] = None
        return True

"""Ragged-edge trim, formalized (paper §2.1, Derecho's virtual synchrony).

When an epoch ends — because a member failed or because a joiner is
admitted — the survivors hold a *ragged edge*: each has received some
prefix of the round-robin total order, and the prefixes differ. The
leader computes a **trim**: per subgroup, the minimum ``received_num``
over the surviving members. Every survivor necessarily holds all
messages up to the trim, so each force-delivers exactly that prefix; a
message past the trim is delivered *nowhere* and must be resent in the
next view. That is the failure-atomicity guarantee.

This module extracts the computation from the view-change path into an
auditable artifact: a :class:`TrimDecision` records what the leader saw
(per-survivor received counters), what it decided (per-subgroup trims),
and why (the failed set), and a :class:`TrimLedger` accumulates one
decision per epoch transition so the virtual-synchrony verifier
(:mod:`repro.recovery.verify`) can later check that no node delivered
beyond the trim and that every survivor delivered exactly through it.

Two kinds of decisions appear in the ledger:

* ``kind="failure"`` — recorded by the membership protocol's leader when
  it publishes a proposal (:mod:`repro.core.view_change`), and marked
  committed when survivors install the successor view;
* ``kind="join"`` — recorded by the
  :class:`~repro.recovery.coordinator.RecoveryCoordinator` when it cuts
  an epoch to admit a rejoining member (wedge → settle → trim → install).

The module is deliberately dependency-free (no protocol imports), so
both :mod:`repro.core.view_change` and the recovery plane can use it
without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["TrimDecision", "TrimLedger", "compute_trim"]


@dataclass(frozen=True)
class TrimDecision:
    """One epoch transition's ragged-edge cleanup, as decided.

    ``trims`` maps subgroup id -> highest sequence number every survivor
    must (and may) deliver before the epoch ends. ``survivor_received``
    is the evidence: the per-survivor ``received_num`` snapshot the
    minimum was taken over (subgroup id -> {node -> received}).
    """

    #: View id of the epoch being ended.
    prior_view_id: int
    #: View id of the successor epoch this decision installs.
    next_view_id: int
    #: Node that computed the trim (membership leader or coordinator).
    leader: int
    #: Members removed by the transition (empty for pure joins).
    failed: Tuple[int, ...]
    #: Members added by the transition (empty for failure transitions).
    joined: Tuple[int, ...]
    #: subgroup id -> min received_num over survivors (the trim).
    trims: Dict[int, int]
    #: subgroup id -> {survivor -> received_num seen by the leader}.
    survivor_received: Dict[int, Dict[int, int]]
    #: Simulated time the decision was taken.
    decided_at: float = 0.0
    #: "failure" (membership protocol) or "join" (recovery coordinator).
    kind: str = "failure"

    def trims_tuple(self) -> Tuple[Tuple[int, int], ...]:
        """The (sg_id, trim) tuple shipped in the SST proposal payload."""
        return tuple(sorted(self.trims.items()))

    def to_dict(self) -> dict:
        return {
            "prior_view_id": self.prior_view_id,
            "next_view_id": self.next_view_id,
            "leader": self.leader,
            "failed": list(self.failed),
            "joined": list(self.joined),
            "trims": {str(k): v for k, v in sorted(self.trims.items())},
            "survivor_received": {
                str(sg): {str(n): v for n, v in sorted(per.items())}
                for sg, per in sorted(self.survivor_received.items())
            },
            "decided_at": self.decided_at,
            "kind": self.kind,
        }


def compute_trim(
    *,
    prior_view_id: int,
    next_view_id: int,
    leader: int,
    failed: Tuple[int, ...],
    subgroup_members: Dict[int, List[int]],
    received_of,
    joined: Tuple[int, ...] = (),
    decided_at: float = 0.0,
    kind: str = "failure",
) -> TrimDecision:
    """Compute the ragged-edge trim for an epoch transition.

    ``subgroup_members`` maps subgroup id -> that subgroup's member list
    in the *prior* view; ``received_of(node, sg_id)`` returns the
    ``received_num`` the leader observes for a member (an SST read in
    the membership protocol, a direct endpoint read in the coordinator).
    Survivors of each subgroup are its members minus ``failed``; the
    trim is the minimum of their received counters — every survivor
    holds that prefix, nobody is asked to deliver more.
    """
    trims: Dict[int, int] = {}
    evidence: Dict[int, Dict[int, int]] = {}
    for sg_id, members in sorted(subgroup_members.items()):
        survivors = [m for m in members if m not in failed]
        if not survivors:
            continue
        per = {m: received_of(m, sg_id) for m in survivors}
        trims[sg_id] = min(per.values())
        evidence[sg_id] = per
    return TrimDecision(
        prior_view_id=prior_view_id,
        next_view_id=next_view_id,
        leader=leader,
        failed=tuple(failed),
        joined=tuple(joined),
        trims=trims,
        survivor_received=evidence,
        decided_at=decided_at,
        kind=kind,
    )


class TrimLedger:
    """Per-epoch audit log of trim decisions (one cluster, all epochs).

    The membership leader *proposes* (possibly several times, if
    suspicions grow before commit — the guard version bumps and the
    proposal is extended); survivors *commit* exactly one decision per
    successor view. The ledger keeps every proposal, the committed
    decision per transition, and flags any committer whose trims
    disagree with the first commit — that would be a failure-atomicity
    bug, and the verifier reports it.
    """

    def __init__(self):
        #: Every proposal, in decision order (republications included).
        self.proposals: List[TrimDecision] = []
        #: next_view_id -> the committed decision for that transition.
        self.committed: Dict[int, TrimDecision] = {}
        #: next_view_id -> committers observed (commit is per-survivor).
        self.committers: Dict[int, List[int]] = {}
        #: Human-readable mismatches between commits of one transition.
        self.conflicts: List[str] = []

    # ------------------------------------------------------------- recording

    def propose(self, decision: TrimDecision) -> None:
        self.proposals.append(decision)

    def commit(self, next_view_id: int,
               trims: Tuple[Tuple[int, int], ...],
               committer: int) -> None:
        """Record one survivor's commit of the transition to
        ``next_view_id``. The first commit pins the decision (matched
        against the latest proposal for that view, if any); later
        commits must carry identical trims."""
        trims_dict = dict(trims)
        existing = self.committed.get(next_view_id)
        if existing is None:
            decision = None
            for proposal in reversed(self.proposals):
                if (proposal.next_view_id == next_view_id
                        and proposal.trims == trims_dict):
                    decision = proposal
                    break
            if decision is None:
                # Commit without a recorded proposal (e.g. ledger wired
                # mid-protocol): synthesize a bare decision.
                decision = TrimDecision(
                    prior_view_id=next_view_id - 1,
                    next_view_id=next_view_id,
                    leader=committer,
                    failed=(),
                    joined=(),
                    trims=trims_dict,
                    survivor_received={},
                    kind="failure",
                )
            self.committed[next_view_id] = decision
        elif existing.trims != trims_dict:
            self.conflicts.append(
                f"node {committer} committed trims {sorted(trims_dict.items())} "
                f"for view {next_view_id}, but the pinned decision has "
                f"{sorted(existing.trims.items())}"
            )
        self.committers.setdefault(next_view_id, []).append(committer)

    def record_join(self, decision: TrimDecision) -> None:
        """Record a coordinator-driven join cut (proposed and committed
        in one step: the coordinator is the only decision maker)."""
        self.proposals.append(decision)
        self.committed[decision.next_view_id] = decision
        self.committers.setdefault(decision.next_view_id, []).append(
            decision.leader)

    # --------------------------------------------------------------- queries

    def decision_for(self, next_view_id: int) -> Optional[TrimDecision]:
        """The committed decision installing ``next_view_id`` (if any)."""
        return self.committed.get(next_view_id)

    def decision_ending(self, prior_view_id: int) -> Optional[TrimDecision]:
        """The committed decision that *ended* ``prior_view_id``."""
        for decision in self.committed.values():
            if decision.prior_view_id == prior_view_id:
                return decision
        return None

    def to_dict(self) -> dict:
        return {
            "proposals": [d.to_dict() for d in self.proposals],
            "committed": {str(v): d.to_dict()
                          for v, d in sorted(self.committed.items())},
            "committers": {str(v): list(c)
                           for v, c in sorted(self.committers.items())},
            "conflicts": list(self.conflicts),
        }

"""Chunked state transfer over the simulated RDMA fabric.

A rejoining member holds a durable *prefix* of a subgroup's log (what its
SSD persisted before the crash) and must fetch the *delta* — everything
the survivors appended while it was down — before it can be admitted at
the next epoch boundary (paper §2.1: joins happen only between views).
Related RDMA multicast systems treat exactly this receiver-recovery path
as first-class (Gleam's NACK/retransmission plane, PAPERS.md); here it is
a point-to-point bulk transfer because the joiner is not yet a member and
cannot appear in any SST.

The protocol is deliberately boring and therefore auditable:

* the source serializes the delta (:func:`encode_entries`) and ships it
  in fixed-size **chunks**, each framed with a 16-byte header
  (transfer id, chunk index, payload length, total chunks) so the
  destination can reassemble out of an RDMA landing buffer;
* every chunk is covered by a **per-chunk timeout**; a lost or late
  chunk (source crashed, partition cut, injected loss) triggers bounded
  **exponential backoff with seeded jitter** and a retransmit;
* after ``giveup_attempts`` consecutive failures on one source the
  transfer **fails over** to the next live source and restarts from
  chunk 0 (survivor logs are prefix-consistent but not length-identical,
  so a mid-stream splice would be unsound);
* the reassembled bytes are validated with **CRC-32** against the
  source-side checksum before anything is applied.

Chunks ride real :class:`~repro.rdma.nic.QueuePair` writes, so the fault
plane's partitions/jitter/crash windows apply to recovery traffic exactly
as they do to protocol traffic — a transfer stalls for the same reasons a
multicast would. Deterministic tests can additionally force timeouts via
``TransferConfig.drop_chunks`` (the first attempt of the named chunk is
swallowed before it reaches the NIC).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from random import Random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..rdma.fabric import RdmaFabric
from ..rdma.memory import ByteRegion, Region, WriteSnapshot
from ..sim.engine import Simulator
from ..sim.sync import Event
from ..sim.units import us

__all__ = [
    "TransferConfig",
    "TransferOutcome",
    "StateTransfer",
    "encode_entries",
    "decode_entries",
]

# --------------------------------------------------------------------------
# Log-entry codec
# --------------------------------------------------------------------------

#: Per-entry header: seq (i32), sender (i32), payload length (i32,
#: -1 = None payload — control messages persist without a body).
_ENTRY = struct.Struct("<iii")

#: Per-chunk frame header: transfer id, chunk index, payload length,
#: total chunk count (all u32).
_CHUNK = struct.Struct("<IIII")


def encode_entries(entries: Sequence[Tuple[int, int, Optional[bytes]]]) -> bytes:
    """Serialize durable-log entries ``(seq, sender, payload)`` to bytes."""
    parts: List[bytes] = []
    for seq, sender, payload in entries:
        if payload is None:
            parts.append(_ENTRY.pack(seq, sender, -1))
        else:
            parts.append(_ENTRY.pack(seq, sender, len(payload)))
            parts.append(bytes(payload))
    return b"".join(parts)


def decode_entries(data: bytes) -> List[Tuple[int, int, Optional[bytes]]]:
    """Inverse of :func:`encode_entries`; raises ``ValueError`` on a
    truncated or corrupt stream (a failed transfer must not half-apply)."""
    entries: List[Tuple[int, int, Optional[bytes]]] = []
    off = 0
    n = len(data)
    while off < n:
        if off + _ENTRY.size > n:
            raise ValueError("truncated entry header in transfer stream")
        seq, sender, plen = _ENTRY.unpack_from(data, off)
        off += _ENTRY.size
        if plen < 0:
            entries.append((seq, sender, None))
            continue
        if off + plen > n:
            raise ValueError("truncated entry payload in transfer stream")
        entries.append((seq, sender, bytes(data[off:off + plen])))
        off += plen
    return entries


# --------------------------------------------------------------------------
# Configuration and outcome records
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class TransferConfig:
    """Knobs of the chunked transfer (docs/RECOVERY.md)."""

    #: Payload bytes per chunk (the frame header rides on top).
    chunk_size: int = 4096
    #: Seconds to wait for a chunk before declaring it lost.
    chunk_timeout: float = us(200.0)
    #: Retransmit attempts per chunk before the chunk is abandoned
    #: (which abandons the source: see ``giveup_attempts``).
    max_attempts: int = 6
    #: First backoff delay; doubles per consecutive failure.
    backoff_base: float = us(50.0)
    #: Ceiling on a single backoff delay (bounded exponential).
    backoff_cap: float = us(800.0)
    #: Multiplicative jitter: the delay is scaled by a seeded uniform
    #: draw from ``[1, 1 + backoff_jitter]`` (decorrelates retry storms
    #: without breaking determinism — the RNG is seeded per transfer).
    backoff_jitter: float = 0.25
    #: Consecutive timeouts on one source before failing over to the
    #: next live source (restarting from chunk 0).
    giveup_attempts: int = 4
    #: Idle gap inserted between successful chunks (stretches a transfer
    #: across simulated time; lets tests crash the source mid-stream).
    inter_chunk_gap: float = 0.0
    #: Chunk indices whose *first* attempt is swallowed before posting —
    #: a deterministic injected loss that forces the timeout + backoff
    #: path in tests without touching the fault plane.
    drop_chunks: frozenset = field(default_factory=frozenset)
    #: CPU cost charged for preparing + posting one chunk.
    post_overhead: float = us(1.0)


@dataclass
class TransferOutcome:
    """What one :class:`StateTransfer` run did, for reports and tests."""

    ok: bool = False
    #: Source that ultimately served the full payload (None on failure).
    source: Optional[int] = None
    #: Every source attempted, in order.
    sources_used: List[int] = field(default_factory=list)
    #: The reassembled, checksum-validated bytes (b"" until success).
    data: bytes = b""
    bytes_transferred: int = 0
    chunks: int = 0
    attempts: int = 0
    timeouts: int = 0
    injected_timeouts: int = 0
    backoff_total: float = 0.0
    failovers: int = 0
    checksum_ok: bool = False
    elapsed: float = 0.0
    error: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "source": self.source,
            "sources_used": list(self.sources_used),
            "bytes_transferred": self.bytes_transferred,
            "chunks": self.chunks,
            "attempts": self.attempts,
            "timeouts": self.timeouts,
            "injected_timeouts": self.injected_timeouts,
            "backoff_total": self.backoff_total,
            "failovers": self.failovers,
            "checksum_ok": self.checksum_ok,
            "elapsed": self.elapsed,
            "error": self.error,
        }


# --------------------------------------------------------------------------
# The transfer protocol
# --------------------------------------------------------------------------

class StateTransfer:
    """One chunked pull of a byte payload from a live source to ``dest``.

    ``fetch_payload(source)`` is called (and re-called on failover) to
    obtain the bytes to ship from that source — the coordinator passes a
    closure that slices the source's durable log past the destination's
    persisted prefix. Returning ``None`` marks the source unusable
    (e.g. its log no longer covers the prefix) and advances failover.

    Drive it from a simulated process::

        st = StateTransfer(sim, fabric, dest=3, sources=[0, 1],
                           fetch_payload=fetch, config=cfg, rng=rng)
        outcome = yield from st.run()
    """

    def __init__(
        self,
        sim: Simulator,
        fabric: RdmaFabric,
        dest: int,
        sources: Sequence[int],
        fetch_payload: Callable[[int], Optional[bytes]],
        config: Optional[TransferConfig] = None,
        rng: Optional[Random] = None,
    ):
        self.sim = sim
        self.fabric = fabric
        self.dest = dest
        self.sources = list(sources)
        self.fetch_payload = fetch_payload
        self.config = config if config is not None else TransferConfig()
        self.rng = rng if rng is not None else Random(0)
        #: Frame-disambiguation tag (stale chunks from an earlier
        #: transfer generation are ignored by the landing hook). Drawn
        #: from the seeded RNG so runs are bit-deterministic — a
        #: process-wide counter would leak across repeated runs into
        #: the chunk frames (and thus the trace fingerprint).
        self.transfer_id = self.rng.randrange(1, 2 ** 32)
        self.outcome = TransferOutcome()
        # -- landing state (valid while run() is active) ------------------
        self._region: Optional[ByteRegion] = None
        self._received: Dict[int, bytes] = {}
        self._wanted: Optional[Tuple[int, Event]] = None
        self._injected_once: set = set()

    # ------------------------------------------------------------- landing

    def _on_remote_write(self, region: Region, snap: WriteSnapshot) -> None:
        """Dest-NIC hook: parse the chunk frame, stash the payload, and
        wake the waiter if this is the chunk it is blocked on."""
        if region is not self._region:
            return
        data = region.read(0, _CHUNK.size)
        tid, idx, length, _total = _CHUNK.unpack(data)
        if tid != self.transfer_id:
            return  # stale frame from an earlier transfer generation
        if idx not in self._received:
            self._received[idx] = region.read(_CHUNK.size, length)
        if self._wanted is not None:
            want_idx, event = self._wanted
            if want_idx == idx and not event.triggered:
                event.trigger("ok")

    # ----------------------------------------------------------------- run

    def run(self):
        """Generator: performs the transfer, returns a
        :class:`TransferOutcome` (never raises for protocol-level
        failure — ``outcome.ok`` / ``outcome.error`` carry the verdict)."""
        cfg = self.config
        out = self.outcome
        started = self.sim.now
        dest_node = self.fabric.nodes[self.dest]
        self._region = ByteRegion(
            _CHUNK.size + cfg.chunk_size,
            name=f"xfer{self.transfer_id}@{self.dest}",
        )
        dest_key = dest_node.register(self._region)
        dest_node.on_remote_write.append(self._on_remote_write)
        try:
            for source in self.sources:
                src_node = self.fabric.nodes.get(source)
                if src_node is None or not src_node.alive:
                    continue
                if out.sources_used:
                    out.failovers += 1
                out.sources_used.append(source)
                payload = self.fetch_payload(source)
                if payload is None:
                    continue
                done = yield from self._pull_from(source, payload, dest_key)
                if done:
                    out.ok = True
                    out.source = source
                    out.data = payload
                    out.elapsed = self.sim.now - started
                    return out
            if out.error is None:
                out.error = "no live source could serve the transfer"
            out.elapsed = self.sim.now - started
            return out
        finally:
            dest_node.on_remote_write.remove(self._on_remote_write)
            if self._region.key in dest_node.regions:
                dest_node.deregister(self._region.key)
            self._region = None

    def _pull_from(self, source: int, payload: bytes, dest_key: int):
        """Pull the full ``payload`` from one source. Returns True on a
        checksum-validated completion, False to fail over."""
        cfg = self.config
        out = self.outcome
        expected_crc = zlib.crc32(payload)
        total = max(1, -(-len(payload) // cfg.chunk_size))
        # Fresh reassembly per source: survivor logs are prefix-consistent
        # but not length-identical, so chunks from different sources must
        # never be spliced together.
        self._received = {}
        staging = ByteRegion(_CHUNK.size + cfg.chunk_size,
                             name=f"xfer{self.transfer_id}@{source}.src")
        qp = self.fabric.queue_pair(source, self.dest)
        consecutive_failures = 0

        for idx in range(total):
            chunk = payload[idx * cfg.chunk_size:(idx + 1) * cfg.chunk_size]
            frame = _CHUNK.pack(self.transfer_id, idx, len(chunk), total)
            attempt = 0
            while True:
                if idx in self._received:
                    break  # a late retransmit already delivered it
                if attempt >= cfg.max_attempts:
                    out.error = (
                        f"chunk {idx}/{total} from node {source} abandoned "
                        f"after {attempt} attempts"
                    )
                    return False
                attempt += 1
                out.attempts += 1
                injected = (idx in cfg.drop_chunks
                            and idx not in self._injected_once)
                if injected:
                    # Deterministic loss injection: swallow the first
                    # attempt of this chunk before it reaches the NIC.
                    self._injected_once.add(idx)
                    out.injected_timeouts += 1
                else:
                    src_node = self.fabric.nodes.get(source)
                    if src_node is None or not src_node.alive:
                        out.error = f"source node {source} died mid-transfer"
                        return False
                    # Bulk staging buffer, not an SST cell: chunk frames
                    # are not monotonic counters.
                    staging.write_local(0, frame + chunk)  # spindle-lint: allow[sst-monotonic-write]
                    yield cfg.post_overhead
                    qp.post_write(staging, 0, dest_key, 0,
                                  _CHUNK.size + len(chunk))
                event = Event(self.sim,
                              name=f"xfer{self.transfer_id}.c{idx}.a{attempt}")
                self._wanted = (idx, event)
                timer = self.sim.call_after(
                    cfg.chunk_timeout,
                    lambda ev=event: ev.trigger("timeout")
                    if not ev.triggered else None,
                )
                result = yield event
                timer.cancel()
                self._wanted = None
                if result == "ok" or idx in self._received:
                    consecutive_failures = 0
                    break
                # -- timeout ------------------------------------------------
                out.timeouts += 1
                consecutive_failures += 1
                if consecutive_failures >= cfg.giveup_attempts:
                    out.error = (
                        f"{consecutive_failures} consecutive timeouts from "
                        f"node {source}; failing over"
                    )
                    return False
                delay = min(cfg.backoff_cap,
                            cfg.backoff_base * (2 ** (attempt - 1)))
                delay *= 1.0 + cfg.backoff_jitter * self.rng.random()
                out.backoff_total += delay
                yield delay
            if cfg.inter_chunk_gap > 0.0 and idx + 1 < total:
                yield cfg.inter_chunk_gap

        assembled = b"".join(self._received[i] for i in range(total))
        out.chunks = total
        out.bytes_transferred = len(assembled)
        out.checksum_ok = (zlib.crc32(assembled) == expected_crc
                           and assembled == payload)
        if not out.checksum_ok:
            out.error = f"checksum mismatch on transfer from node {source}"
            return False
        out.error = None
        return True

"""Cross-view virtual-synchrony safety verifier.

Derecho's correctness story (paper §2.1) is *virtual synchrony*: within
an epoch every member delivers the same totally-ordered, gap-free prefix
of the round-robin order, and at an epoch boundary the ragged edge is
trimmed so that survivors agree byte-for-byte on what the ending epoch
delivered. This module turns that story into a machine-checked audit.

A :class:`VsyncVerifier` attaches to a
:class:`~repro.workloads.cluster.Cluster` and passively records:

* every delivery upcall, per ``(view, subgroup, node)`` — as
  ``(seq, sender, payload-digest)`` triples (re-hooked on each installed
  view, since groups are rebuilt per epoch);
* an **epoch-end snapshot** of each node's ``delivered_seq`` /
  ``received_seq`` at the instant the old epoch is torn down;
* the sequence of installed :class:`~repro.core.membership.View`\\ s;
* the cluster's :class:`~repro.recovery.trim.TrimLedger`.

``check()`` then audits four invariant families across *all* recorded
epochs:

1. **Atomicity** — members that survive a view transition hold
   *identical* delivery logs for the ending view; a departed (failed)
   member's log is a *prefix* of the survivors' log (it may have died
   early, it must not have diverged).
2. **Total order & gap-freedom** — per node and view, delivered
   sequence numbers are strictly increasing, and no node skips an
   *application* message below its own high-water mark (sequence
   numbers are shared with §3.3 null rounds, which are skipped without
   an upcall, so the union over members defines which seqs were real).
3. **Trim conformance** — for every committed
   :class:`~repro.recovery.trim.TrimDecision`, no survivor delivered
   past the trim in the ending view, and every survivor delivered
   *through* it (the force-delivered prefix), as witnessed by both the
   recorded upcalls and the epoch-end counter snapshot.
4. **Ledger coherence** — divergent trim commits recorded by the
   :class:`~repro.recovery.trim.TrimLedger` are surfaced verbatim.

The verifier is read-only: it never perturbs protocol timing beyond the
(simulated-zero-cost) Python callbacks, so a run with the verifier
attached is event-for-event the run without it.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.membership import View

__all__ = ["VsyncVerifier", "VsyncReport"]


def _digest(payload: Optional[bytes]) -> Optional[int]:
    return None if payload is None else zlib.crc32(payload)


@dataclass
class VsyncReport:
    """Outcome of one :meth:`VsyncVerifier.check` audit."""

    ok: bool = True
    #: Human-readable violations, each prefixed with its category
    #: (``atomicity:``, ``order:``, ``gap:``, ``trim:``, ``ledger:``).
    violations: List[str] = field(default_factory=list)
    views_seen: List[int] = field(default_factory=list)
    epochs_checked: int = 0
    deliveries_checked: int = 0

    def by_category(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for v in self.violations:
            cat = v.split(":", 1)[0]
            out[cat] = out.get(cat, 0) + 1
        return out

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "violations": list(self.violations),
            "by_category": self.by_category(),
            "views_seen": list(self.views_seen),
            "epochs_checked": self.epochs_checked,
            "deliveries_checked": self.deliveries_checked,
        }


class VsyncVerifier:
    """Passive recorder + auditor of virtual-synchrony invariants.

    Usage::

        cluster = Cluster(...); ...; cluster.build()
        verifier = VsyncVerifier(cluster)   # attaches immediately
        ... run, crash, recover ...
        report = verifier.check()
        assert report.ok, report.violations
    """

    def __init__(self, cluster):
        self.cluster = cluster
        #: (view_id, sg_id, node) -> [(seq, sender, digest), ...]
        self.logs: Dict[Tuple[int, int, int],
                        List[Tuple[int, int, Optional[int]]]] = {}
        #: view_id -> View
        self.views: Dict[int, View] = {}
        #: view_id -> {node -> {sg -> (delivered_seq, received_seq)}}
        self.epoch_end: Dict[int, Dict[int, Dict[int, Tuple[int, int]]]] = {}
        #: view_id -> set of nodes whose NIC was alive at epoch end
        self.alive_at_end: Dict[int, set] = {}
        self._attached = False
        self.attach()

    # ------------------------------------------------------------- recording

    def attach(self) -> None:
        """Hook the cluster's view-lifecycle callbacks (idempotent)."""
        if self._attached:
            return
        self._attached = True
        self.cluster.on_view_installed.append(self._record_view)
        self.cluster.on_epoch_end.append(self._record_epoch_end)
        if self.cluster.view is not None:
            self._record_view(self.cluster.view)

    def _record_view(self, view: View) -> None:
        self.views[view.view_id] = view
        for node_id, group in self.cluster.groups.items():
            for sg_id in group.multicasts:
                self._hook_delivery(view.view_id, sg_id, node_id, group)

    def _hook_delivery(self, view_id: int, sg_id: int, node_id: int,
                       group) -> None:
        key = (view_id, sg_id, node_id)
        self.logs.setdefault(key, [])

        def record(delivery, _key=key):
            self.logs[_key].append(
                (delivery.seq, delivery.sender, _digest(delivery.payload))
            )

        group.on_delivery(sg_id, record)

    def _record_epoch_end(self, view: View, groups: Dict[int, object]) -> None:
        snap: Dict[int, Dict[int, Tuple[int, int]]] = {}
        alive = set()
        for node_id, group in groups.items():
            per: Dict[int, Tuple[int, int]] = {}
            for sg_id, mc in group.multicasts.items():
                per[sg_id] = (mc.delivered_seq, mc.received_seq)
            snap[node_id] = per
            fabric_node = self.cluster.fabric.nodes.get(node_id)
            if fabric_node is not None and fabric_node.alive:
                alive.add(node_id)
        self.epoch_end[view.view_id] = snap
        self.alive_at_end[view.view_id] = alive

    # --------------------------------------------------------------- auditing

    def check(self) -> VsyncReport:
        """Audit all recorded epochs; see the module docstring for the
        invariant families."""
        report = VsyncReport()
        report.views_seen = sorted(self.views)
        report.deliveries_checked = sum(len(v) for v in self.logs.values())
        ledger = getattr(self.cluster, "trim_ledger", None)

        for view_id in report.views_seen:
            view = self.views[view_id]
            successor = self.views.get(view_id + 1)
            if successor is not None:
                survivors = [m for m in view.members
                             if m in successor.members]
            else:
                # Final epoch: judge the members still alive at the end.
                alive = self.alive_at_end.get(view_id)
                if alive is None:
                    alive = {m for m in view.members
                             if self.cluster.fabric.nodes[m].alive}
                survivors = [m for m in view.members if m in alive]
            departed = [m for m in view.members if m not in survivors]
            report.epochs_checked += 1

            for sg in view.subgroups:
                self._check_subgroup(report, view_id, sg.subgroup_id,
                                     [m for m in survivors
                                      if m in sg.members],
                                     [m for m in departed
                                      if m in sg.members])

            # Trim conformance for the decision that *ended* this view.
            if ledger is not None and successor is not None:
                decision = ledger.decision_for(successor.view_id)
                if decision is not None \
                        and decision.prior_view_id == view_id:
                    self._check_trim(report, view_id, decision, survivors)

        if ledger is not None:
            for conflict in ledger.conflicts:
                report.violations.append(f"ledger: {conflict}")

        report.ok = not report.violations
        return report

    # ----------------------------------------------------------- sub-checks

    def _log(self, view_id: int, sg_id: int, node: int):
        return self.logs.get((view_id, sg_id, node), [])

    def _check_subgroup(self, report: VsyncReport, view_id: int, sg_id: int,
                        survivors: List[int], departed: List[int]) -> None:
        # Total order, per node (survivor or not: a failed node must
        # also have delivered in order while it lived).
        for node in survivors + departed:
            seqs = [e[0] for e in self._log(view_id, sg_id, node)]
            if any(b <= a for a, b in zip(seqs, seqs[1:])):
                bad = next(i for i, (a, b) in
                           enumerate(zip(seqs, seqs[1:])) if b <= a)
                report.violations.append(
                    f"order: view {view_id} sg{sg_id} node {node} delivered "
                    f"seq {seqs[bad + 1]} after {seqs[bad]}"
                )
        # Gap-freedom: sequence numbers are shared with *null* rounds
        # (§3.3), which are skipped over without an upcall — so the
        # delivered seqs need not be contiguous. What must hold is that
        # every node delivered every *application* message up to its own
        # high-water mark; the union over all members is the ground
        # truth for which seqs carried one (reals vs nulls are globally
        # agreed by the round-robin order).
        real_seqs = sorted({e[0]
                            for node in survivors + departed
                            for e in self._log(view_id, sg_id, node)})
        for node in survivors + departed:
            seqs = [e[0] for e in self._log(view_id, sg_id, node)]
            if not seqs:
                continue
            expected = [s for s in real_seqs if s <= seqs[-1]]
            missed = sorted(set(expected) - set(seqs))
            if missed:
                report.violations.append(
                    f"gap: view {view_id} sg{sg_id} node {node} skipped "
                    f"application seqs {missed[:4]}"
                    + ("…" if len(missed) > 4 else "")
                    + f" below its high-water mark {seqs[-1]}"
                )
        # Atomicity: all survivors hold identical logs for the epoch.
        if survivors:
            reference = self._log(view_id, sg_id, survivors[0])
            for node in survivors[1:]:
                log = self._log(view_id, sg_id, node)
                if log != reference:
                    report.violations.append(
                        f"atomicity: view {view_id} sg{sg_id}: node {node} "
                        f"delivered {len(log)} messages but node "
                        f"{survivors[0]} delivered {len(reference)}"
                        + ("" if len(log) != len(reference) else
                           " (same length, diverging contents)")
                    )
            # Departed members' logs must be prefixes of the agreed log.
            for node in departed:
                log = self._log(view_id, sg_id, node)
                if log != reference[:len(log)]:
                    report.violations.append(
                        f"atomicity: view {view_id} sg{sg_id}: departed node "
                        f"{node}'s {len(log)}-message log is not a prefix of "
                        f"the survivors' log"
                    )

    def _check_trim(self, report: VsyncReport, view_id: int,
                    decision, survivors: List[int]) -> None:
        snap = self.epoch_end.get(view_id, {})
        view = self.views[view_id]
        sg_members = {sg.subgroup_id: set(sg.members) for sg in view.subgroups}
        for sg_id, trim in sorted(decision.trims.items()):
            for node in survivors:
                if node not in sg_members.get(sg_id, ()):
                    continue
                log = self._log(view_id, sg_id, node)
                if log and log[-1][0] > trim:
                    report.violations.append(
                        f"trim: view {view_id} sg{sg_id} node {node} "
                        f"delivered seq {log[-1][0]} past the committed "
                        f"trim {trim}"
                    )
                counters = snap.get(node, {}).get(sg_id)
                if counters is not None and counters[0] != trim:
                    report.violations.append(
                        f"trim: view {view_id} sg{sg_id} node {node} ended "
                        f"the epoch at delivered_seq {counters[0]}, "
                        f"committed trim is {trim}"
                    )
                elif counters is None and log and log[-1][0] != trim:
                    report.violations.append(
                        f"trim: view {view_id} sg{sg_id} node {node} "
                        f"last delivered seq {log[-1][0]} != trim {trim} "
                        f"(no epoch-end snapshot)"
                    )

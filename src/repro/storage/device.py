"""Append-only simulated storage devices with explicit fsync semantics.

A :class:`StorageDevice` models one append-only file on one node's SSD:

* :meth:`write` frames a record (``[len][billed][crc32]`` header + body)
  into the device's *volatile* tail at zero simulated cost — the bytes
  sit in the OS/device write cache.
* :meth:`fsync` is a simulated-process generator that charges the
  :class:`~repro.core.persistence.StorageModel` append time for the
  pending billed bytes (one yield), then moves the tail into the
  durable image. Only fsynced bytes survive a crash.
* :meth:`crash` drops the un-fsynced tail. If a *torn-append* fault is
  armed, a partial prefix of the first pending frame lands on the image
  instead — the classic torn write, detected by CRC on reopen.
* :meth:`reopen` CRC-scans the image from the start and truncates at
  the first invalid record (torn tail or injected corruption), exactly
  like a journal replay after power loss.

``billed`` decouples accounting from encoding: the persistence engine
bills a delivery's wire *size* (payloads may be ``None`` for
timing-only runs), and recovery's replay cost is charged on billed
bytes (docs/RECOVERY.md), so the device carries it per record.

:class:`ClusterStorage` is the per-cluster registry keyed
``(node_id, name)``; devices persist across epoch restarts and node
crashes — that persistence *is* the durability story
(docs/DURABILITY.md).
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple
from zlib import crc32

__all__ = ["StorageDevice", "ClusterStorage",
           "encode_log_entry", "decode_log_entry"]

_FRAME_HDR = struct.Struct("<III")  # (body_len, billed, crc32)
_LOG_HDR = struct.Struct("<qii")    # (seq, sender, payload_len | -1)


# ---------------------------------------------------------------------------
# Durable-log record codec (what PersistenceEngine stores per delivery)
# ---------------------------------------------------------------------------


def encode_log_entry(seq: int, sender: int,
                     payload: Optional[bytes]) -> bytes:
    """Encode one durable-log entry. ``payload`` may be ``None``
    (timing-only deliveries) — encoded as length ``-1``, distinct from
    an empty payload."""
    if payload is None:
        return _LOG_HDR.pack(seq, sender, -1)
    return _LOG_HDR.pack(seq, sender, len(payload)) + payload


def decode_log_entry(data: bytes) -> Tuple[int, int, Optional[bytes]]:
    """Inverse of :func:`encode_log_entry`."""
    seq, sender, plen = _LOG_HDR.unpack_from(data, 0)
    if plen < 0:
        return seq, sender, None
    body = bytes(data[_LOG_HDR.size:_LOG_HDR.size + plen])
    if len(body) != plen:
        raise ValueError("truncated log entry body")
    return seq, sender, body


# ---------------------------------------------------------------------------
# The device
# ---------------------------------------------------------------------------


class StorageDevice:
    """One append-only device image plus its volatile write cache."""

    def __init__(self, sim, model, name: str = "dev", node_id: int = -1):
        self.sim = sim
        self.model = model
        self.name = name
        self.node_id = node_id
        #: Durable bytes (CRC-framed records, possibly with a torn or
        #: corrupted suffix awaiting :meth:`reopen`).
        self._image = bytearray()
        #: Un-fsynced frames: (frame_bytes, billed).
        self._pending: List[Tuple[bytes, int]] = []
        self._pending_billed = 0
        #: Billed bytes adopted wholesale (adopt-time log_bytes minus
        #: the per-record billed sum — keeps :attr:`billed_total` exact
        #: for logs whose per-entry billing predates the device).
        self._billed_base = 0
        self._synced_billed = 0
        #: Bumped on every crash so an in-flight fsync knows its batch
        #: died with the write cache.
        self._crash_epoch = 0
        # -------- armed faults (set by repro.faults, docs/FAULTS.md)
        #: Crashes left that tear (partially persist) the pending tail.
        self.torn_crashes_armed = 0
        #: Simulated instant until which fsyncs stall (0 = no stall).
        self.fsync_stalled_until = 0.0
        self.counters: Dict[str, int] = {
            "appends": 0, "fsyncs": 0, "crashes": 0,
            "torn_writes": 0, "lost_tail_records": 0,
            "corrupted_records": 0, "reopens": 0,
            "records_dropped_on_reopen": 0,
        }

    # ----------------------------------------------------------- write path

    def write(self, data: bytes, billed: Optional[int] = None) -> None:
        """Append one record to the volatile tail (no simulated cost:
        the bytes land in the write cache; durability needs fsync)."""
        if billed is None:
            billed = len(data)
        hdr = _FRAME_HDR.pack(len(data), billed,
                              crc32(data, billed & 0xFFFFFFFF))
        self._pending.append((hdr + data, billed))
        self._pending_billed += billed
        self.counters["appends"] += 1

    def fsync(self):
        """Flush the volatile tail to the image (simulated-process
        generator). Charges ``model.append_time(pending billed)`` in a
        single yield — plus any armed stall — then the tail is durable.
        A clean no-op (zero yields) when nothing is pending.

        Concurrent-safe: the record count and billed total are
        snapshotted at call time, so two processes fsyncing the same
        device never flush a frame twice, and a crash during the device
        delay loses the batch (it was not yet durable)."""
        if not self._pending:
            return
        target = len(self._pending)
        billed = self._pending_billed
        epoch = self._crash_epoch
        delay = self.model.append_time(billed)
        if self.fsync_stalled_until > self.sim.now:
            delay += self.fsync_stalled_until - self.sim.now
        yield delay
        if self._crash_epoch != epoch:
            return  # power was lost mid-flush; the tail is gone
        take = min(target, len(self._pending))
        for frame, frame_billed in self._pending[:take]:
            self._image += frame
            self._synced_billed += frame_billed
            self._pending_billed -= frame_billed
        del self._pending[:take]
        self.counters["fsyncs"] += 1

    # ----------------------------------------------------------- fault path

    def crash(self) -> None:
        """Power loss: the un-fsynced tail is gone. With a torn-append
        fault armed, a partial prefix of the first pending frame makes
        it to the image instead — CRC-invalid, dropped on reopen."""
        self.counters["crashes"] += 1
        self._crash_epoch += 1
        if self._pending and self.torn_crashes_armed > 0:
            self.torn_crashes_armed -= 1
            frame, _billed = self._pending[0]
            torn = frame[:max(1, len(frame) // 2)]
            self._image += torn
            self.counters["torn_writes"] += 1
        self.counters["lost_tail_records"] += len(self._pending)
        self._pending.clear()
        self._pending_billed = 0

    def corrupt(self, record_index: int = 0) -> bool:
        """Flip one byte in the ``record_index``-th durable record's
        body (whole-device corruption from that record on, once reopen
        truncates at the CRC mismatch). Returns False when the image
        has no such record."""
        offset = 0
        index = 0
        n = len(self._image)
        while offset + _FRAME_HDR.size <= n:
            body_len, _billed, _crc = _FRAME_HDR.unpack_from(
                self._image, offset)
            end = offset + _FRAME_HDR.size + body_len
            if end > n:
                break
            if index == record_index:
                flip_at = offset + _FRAME_HDR.size if body_len else offset
                self._image[flip_at] ^= 0xFF
                self.counters["corrupted_records"] += 1
                return True
            offset = end
            index += 1
        return False

    # ------------------------------------------------------------ read path

    def _scan(self) -> Tuple[List[Tuple[bytes, int]], int]:
        """CRC-scan the image: ``(valid (body, billed) records, offset
        of first invalid byte)``."""
        records: List[Tuple[bytes, int]] = []
        offset = 0
        n = len(self._image)
        while offset + _FRAME_HDR.size <= n:
            body_len, billed, crc = _FRAME_HDR.unpack_from(self._image, offset)
            end = offset + _FRAME_HDR.size + body_len
            if end > n:
                break  # torn: header promises more bytes than exist
            body = bytes(self._image[offset + _FRAME_HDR.size:end])
            if crc32(body, billed & 0xFFFFFFFF) != crc:
                break  # corrupt record
            records.append((body, billed))
            offset = end
        return records, offset

    def reopen(self) -> List[bytes]:
        """Recovery-time open: CRC-scan, truncate the image at the first
        invalid record (torn tail / corruption), drop any volatile
        state, and return the surviving record bodies in append order.
        Takes no simulated time — callers charge
        ``StorageModel.read_time`` on :attr:`billed_total` themselves
        (as the recovery replay stage does, docs/RECOVERY.md)."""
        self.counters["reopens"] += 1
        self._pending.clear()
        self._pending_billed = 0
        records, valid_end = self._scan()
        if valid_end != len(self._image):
            total = self._count_records_raw()
            self.counters["records_dropped_on_reopen"] += max(
                0, total - len(records))
            del self._image[valid_end:]
        self._synced_billed = sum(b for _body, b in records)
        return [body for body, _b in records]

    def records(self) -> List[bytes]:
        """Durable record bodies up to the first invalid frame (a
        zero-cost peek — :meth:`reopen` is the recovery-path read)."""
        records, _valid_end = self._scan()
        return [body for body, _b in records]

    def _count_records_raw(self) -> int:
        """Records the image *claims* to hold, CRC-blind (so reopen can
        count how many a corruption truncated away)."""
        count = 0
        offset = 0
        n = len(self._image)
        while offset + _FRAME_HDR.size <= n:
            body_len, _b, _c = _FRAME_HDR.unpack_from(self._image, offset)
            end = offset + _FRAME_HDR.size + body_len
            if end > n:
                count += 1  # the torn one
                break
            count += 1
            offset = end
        return count

    # ------------------------------------------------------------- adoption

    def rewrite(self, pairs: List[Tuple[bytes, int]],
                billed_base: int = 0) -> None:
        """Atomically replace the device contents with ``pairs`` of
        ``(record body, billed)``, already durable (recovery state
        transfer installs a replayed-plus-fetched log wholesale;
        docs/RECOVERY.md). ``billed_base`` carries billed bytes not
        attributable to individual records (adopted-log accounting)."""
        self._image = bytearray()
        self._pending.clear()
        self._pending_billed = 0
        self._synced_billed = 0
        self._billed_base = billed_base
        for body, billed in pairs:
            hdr = _FRAME_HDR.pack(len(body), billed,
                                  crc32(body, billed & 0xFFFFFFFF))
            self._image += hdr
            self._image += body
            self._synced_billed += billed

    # -------------------------------------------------------------- queries

    @property
    def billed_total(self) -> int:
        """Billed bytes durable on the device (drives replay read-time
        charges). Adopted-base bytes survive reopen even if corruption
        truncates adopted records — a documented overcount confined to
        armed-corruption runs."""
        return self._billed_base + self._synced_billed

    @property
    def pending_records(self) -> int:
        return len(self._pending)

    @property
    def image_bytes(self) -> int:
        return len(self._image)

    def __repr__(self) -> str:
        return (f"<StorageDevice {self.name}@{self.node_id} "
                f"image={len(self._image)}B pending={len(self._pending)}>")


# ---------------------------------------------------------------------------
# Per-cluster registry
# ---------------------------------------------------------------------------


class ClusterStorage:
    """All of a cluster's devices, keyed ``(node_id, name)``.

    Devices are created on first use and *never* destroyed by crashes
    or view changes — they are the stable storage that epoch restarts
    and power-loss recovery read back (docs/DURABILITY.md)."""

    def __init__(self, sim, model):
        self.sim = sim
        self.model = model
        self.devices: Dict[Tuple[int, str], StorageDevice] = {}

    def device(self, node_id: int, name: str) -> StorageDevice:
        """Get-or-create a node's named device."""
        key = (node_id, name)
        dev = self.devices.get(key)
        if dev is None:
            dev = StorageDevice(self.sim, self.model, name=name,
                                node_id=node_id)
            self.devices[key] = dev
        return dev

    def peek(self, node_id: int, name: str) -> Optional[StorageDevice]:
        """The device if it exists; never creates."""
        return self.devices.get((node_id, name))

    def devices_of(self, node_id: int) -> List[StorageDevice]:
        return [dev for (nid, _name), dev in sorted(self.devices.items())
                if nid == node_id]

    def crash_node(self, node_id: int) -> None:
        """Power loss on one node: every device loses (or tears) its
        un-fsynced tail."""
        for dev in self.devices_of(node_id):
            dev.crash()

    def counters(self) -> Dict[str, int]:
        """Fleet-wide device counters (summed)."""
        total: Dict[str, int] = {}
        for dev in self.devices.values():
            for key, value in dev.counters.items():
                total[key] = total.get(key, 0) + value
        return total

"""Simulated stable storage: per-node append-only devices.

The durability plane's ground truth. Every byte a protocol calls
"durable" lives on a :class:`StorageDevice` — an append-only, CRC-framed
device with explicit ``write``/``fsync`` semantics on the simulation
clock (timing from :class:`~repro.core.persistence.StorageModel`).
Writes are volatile until fsynced; a crash drops (or tears) the
un-fsynced tail; reopen CRC-scans the image and truncates at the first
invalid record. Fault modes (torn appends, fsync stalls, device
corruption) are armed by :mod:`repro.faults` — see docs/DURABILITY.md.
"""

from .device import (
    ClusterStorage,
    StorageDevice,
    decode_log_entry,
    encode_log_entry,
)

__all__ = [
    "ClusterStorage",
    "StorageDevice",
    "decode_log_entry",
    "encode_log_entry",
]

"""The RDMA fabric: a set of nodes plus the switch connecting them.

The fabric is where nodes and queue pairs are created, and where failures
are injected. It mirrors the paper's testbed: every pair of nodes is
connected through a non-blocking switch, so the only shared resources are
the per-node links (modeled in :mod:`repro.rdma.nic`).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..sim.engine import Simulator
from .latency import LatencyModel
from .nic import QueuePair, RdmaNode

__all__ = ["RdmaFabric"]


class RdmaFabric:
    """Factory and registry for :class:`RdmaNode` and :class:`QueuePair`.

    >>> from repro.sim import Simulator
    >>> fabric = RdmaFabric(Simulator())
    >>> a, b = fabric.add_node(), fabric.add_node()
    >>> qp = fabric.queue_pair(a.node_id, b.node_id)
    """

    def __init__(self, sim: Simulator, latency: Optional[LatencyModel] = None):
        self.sim = sim
        self.latency = latency if latency is not None else LatencyModel()
        self.nodes: Dict[int, RdmaNode] = {}
        self._qps: Dict[Tuple[int, int], QueuePair] = {}
        self._next_id = 0

    def add_node(self, node_id: Optional[int] = None) -> RdmaNode:
        """Create a node; ids auto-increment unless given explicitly."""
        if node_id is None:
            node_id = self._next_id
        if node_id in self.nodes:
            raise ValueError(f"node id {node_id} already exists")
        self._next_id = max(self._next_id, node_id + 1)
        node = RdmaNode(node_id, self.sim, self.latency)
        self.nodes[node_id] = node
        return node

    def queue_pair(self, src_id: int, dst_id: int) -> QueuePair:
        """Get (or lazily create) the QP from ``src`` to ``dst``."""
        if src_id == dst_id:
            raise ValueError("no loopback queue pairs: local state is read directly")
        key = (src_id, dst_id)
        qp = self._qps.get(key)
        if qp is None:
            qp = QueuePair(self.nodes[src_id], self.nodes[dst_id])
            self._qps[key] = qp
        return qp

    def fail_node(self, node_id: int) -> None:
        """Crash-stop a node: all future writes to/from it are dropped.

        Higher layers (membership) observe the silence and run the view
        change protocol; the fabric itself raises nothing.
        """
        self.nodes[node_id].alive = False

    def total_writes_posted(self) -> int:
        """Sum of RDMA writes posted by all nodes (paper §4.1.1 metric)."""
        return sum(n.writes_posted for n in self.nodes.values())

    def total_bytes_posted(self) -> int:
        """Sum of bytes posted by all nodes."""
        return sum(n.bytes_posted for n in self.nodes.values())

    def total_writes_dropped(self) -> int:
        """Sum of lost writes across all nodes (any reason)."""
        return sum(n.writes_dropped for n in self.nodes.values())

    def drops_by_reason(self) -> Dict[str, int]:
        """Fabric-wide breakdown of lost writes by reason code
        (see :mod:`repro.rdma.nic` for the code list)."""
        out: Dict[str, int] = {}
        for node in self.nodes.values():
            for reason, count in node.writes_dropped_by_reason.items():
                out[reason] = out.get(reason, 0) + count
        return out

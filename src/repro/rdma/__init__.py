"""Simulated one-sided RDMA fabric.

Models the properties of the paper's 100 Gbps InfiniBand testbed that
the Spindle optimizations interact with: write latency nearly flat up to
4 KB (Fig. 1), ~1 µs CPU cost to post a write, per-QP FIFO ordering (the
memory-fence guarantee), cache-line-atomic writes, and egress-link
serialization at 12.5 GB/s.
"""

from .fabric import RdmaFabric
from .latency import LatencyModel
from .memory import ByteRegion, CellRegion, Region, WriteSnapshot
from .nic import FaultDecision, QueuePair, RdmaNode
from .verbs import MemoryRegionHandle, ProtectionDomain, WorkRequest, post_write

__all__ = [
    "RdmaFabric",
    "LatencyModel",
    "ByteRegion",
    "CellRegion",
    "Region",
    "WriteSnapshot",
    "QueuePair",
    "RdmaNode",
    "FaultDecision",
    "MemoryRegionHandle",
    "ProtectionDomain",
    "WorkRequest",
    "post_write",
]

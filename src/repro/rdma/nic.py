"""Simulated RDMA NICs and reliable-connection queue pairs.

Modeling decisions (see DESIGN.md §2):

* Each node owns one NIC with a full-duplex link; *egress* is the
  contended resource: writes serialize FIFO through it at link bandwidth.
  Ingress contention is not modeled separately (in the paper's workloads
  each node's ingress and egress are symmetric and the observed limits
  are protocol/CPU-side).
* A write posted on a queue pair becomes visible in the remote region
  after ``occupancy(size)`` (egress serialization) plus
  ``wire_latency(size)``. Per-QP arrival order matches post order —
  RDMA reliable connections guarantee this, and it is what gives the SST
  its memory-fence property (§2.2 of the paper).
* ``post_write`` itself consumes *no* simulated time: the ~1 µs of CPU
  the paper attributes to posting is charged by the calling thread (see
  :class:`~repro.rdma.latency.LatencyModel.post_overhead`), because it
  is caller CPU, and whether it happens inside or outside a lock is
  precisely what the §3.4 optimization changes.
* Local send completions fire when the NIC has finished reading the
  source buffer (end of egress occupancy).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..sim.engine import Simulator
from .latency import LatencyModel
from .memory import Region, WriteSnapshot

__all__ = ["RdmaNode", "QueuePair"]

#: Minimum spacing enforced between same-QP arrivals to preserve ordering.
_ORDERING_EPS = 1e-12


class RdmaNode:
    """A machine on the RDMA fabric: NIC + registered memory regions."""

    def __init__(self, node_id: int, sim: Simulator, latency: LatencyModel):
        self.node_id = node_id
        self.sim = sim
        self.latency = latency
        self.alive = True
        self.regions: Dict[int, Region] = {}
        self._next_key = 1
        #: Time at which the egress link frees up.
        self.egress_free_at = 0.0
        #: Hooks fired when a remote write lands (used to ring doorbells).
        self.on_remote_write: List[Callable[[Region, WriteSnapshot], None]] = []
        #: Hooks fired when this node *posts* a write, as
        #: ``hook(queue_pair, snapshot)`` — used by the runtime sanitizer
        #: to check §3.4 lock discipline at the lowest level.
        self.on_post: List[Callable[["QueuePair", WriteSnapshot], None]] = []
        # -- counters ---------------------------------------------------------
        self.writes_posted = 0
        self.bytes_posted = 0
        self.writes_received = 0
        self.bytes_received = 0
        self.writes_dropped = 0

    def register(self, region: Region) -> int:
        """Register a memory region with the NIC; returns its key (rkey)."""
        key = self._next_key
        self._next_key += 1
        region.key = key
        self.regions[key] = region
        return key

    def deregister(self, key: int) -> None:
        """Remove a region (e.g. at the end of a membership view)."""
        region = self.regions.pop(key)
        region.key = -1

    def _receive(self, snap: WriteSnapshot, region_key: int) -> None:
        """Apply an arriving remote write and notify listeners."""
        region = self.regions.get(region_key)
        if region is None:
            # Region was deregistered (view change) while the write was
            # in flight; the write is lost, as on real hardware.
            self.writes_dropped += 1
            return
        region.apply_write(snap)
        self.writes_received += 1
        self.bytes_received += snap.size_bytes
        for hook in self.on_remote_write:
            hook(region, snap)

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return f"<RdmaNode {self.node_id} {state}>"


class QueuePair:
    """A reliable-connection queue pair from ``src`` to ``dst``.

    Writes posted on the same QP are applied at the destination in post
    order (the RDMA memory-fence guarantee Derecho's SST relies on).
    """

    def __init__(self, src: RdmaNode, dst: RdmaNode):
        self.src = src
        self.dst = dst
        self._last_arrival = 0.0
        self.writes = 0
        self.bytes = 0

    def post_write(
        self,
        local_region: Region,
        local_offset: int,
        remote_key: int,
        remote_offset: int,
        length: int,
        on_complete: Optional[Callable[[], None]] = None,
    ) -> None:
        """Post a one-sided write of ``length`` units to the remote region.

        The source span is snapshotted *now* (DMA from pinned memory);
        later local mutations do not affect the in-flight write. If
        either endpoint is down the write is silently dropped, matching
        the behaviour the membership protocol must tolerate.
        """
        src, dst = self.src, self.dst
        if not src.alive:
            src.writes_dropped += 1
            return
        snap = local_region.snapshot(local_offset, length)
        size = snap.size_bytes
        sim = src.sim
        model = src.latency

        start = max(sim.now, src.egress_free_at)
        finish = start + model.occupancy(size)
        src.egress_free_at = finish
        arrival = max(finish + model.wire_latency(size),
                      self._last_arrival + _ORDERING_EPS)
        self._last_arrival = arrival

        src.writes_posted += 1
        src.bytes_posted += size
        self.writes += 1
        self.bytes += size
        for hook in src.on_post:
            hook(self, snap)

        remote_snap = WriteSnapshot(remote_offset, snap.data, size)
        if dst.alive:
            sim.call_at(arrival, self._arrive, remote_snap, remote_key)
        else:
            src.writes_dropped += 1
        if on_complete is not None:
            sim.call_at(finish, on_complete)

    def _arrive(self, snap: WriteSnapshot, remote_key: int) -> None:
        if self.dst.alive:
            self.dst._receive(snap, remote_key)
        else:
            self.src.writes_dropped += 1

    def __repr__(self) -> str:
        return f"<QP {self.src.node_id}->{self.dst.node_id}>"

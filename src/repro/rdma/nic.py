"""Simulated RDMA NICs and reliable-connection queue pairs.

Modeling decisions (see DESIGN.md §2):

* Each node owns one NIC with a full-duplex link; *egress* is the
  contended resource: writes serialize FIFO through it at link bandwidth.
  Ingress contention is not modeled separately (in the paper's workloads
  each node's ingress and egress are symmetric and the observed limits
  are protocol/CPU-side).
* A write posted on a queue pair becomes visible in the remote region
  after ``occupancy(size)`` (egress serialization) plus
  ``wire_latency(size)``. Per-QP arrival order matches post order —
  RDMA reliable connections guarantee this, and it is what gives the SST
  its memory-fence property (§2.2 of the paper).
* ``post_write`` itself consumes *no* simulated time: the ~1 µs of CPU
  the paper attributes to posting is charged by the calling thread (see
  :class:`~repro.rdma.latency.LatencyModel.post_overhead`), because it
  is caller CPU, and whether it happens inside or outside a lock is
  precisely what the §3.4 optimization changes.
* Local send completions fire when the NIC has finished reading the
  source buffer (end of egress occupancy).

Fault injection (docs/FAULTS.md): a node may carry a ``fault_hook``
consulted on every posted write. The hook can *drop* the write (hard
link cut, injected loss), *hold* it (an RC retransmit surviving a
transient partition: redelivered at heal time, per-QP order preserved)
or *delay* it (latency jitter / degradation windows). Every dropped
write is tagged with a reason code in ``writes_dropped_by_reason`` so
tests can assert exactly why bytes went missing.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional

from ..sim.engine import Simulator
from .latency import LatencyModel
from .memory import Region, WriteSnapshot

__all__ = [
    "RdmaNode",
    "QueuePair",
    "FaultDecision",
    "DROP_SRC_DOWN",
    "DROP_DST_DOWN_AT_POST",
    "DROP_DST_DOWN_IN_FLIGHT",
    "DROP_REGION_DEREGISTERED",
    "DROP_PARTITION",
    "DROP_INJECTED_LOSS",
]

#: Minimum spacing enforced between same-QP arrivals to preserve ordering.
_ORDERING_EPS = 1e-12

# --------------------------------------------------------------------------
# Drop reason codes (every lost write is tagged with exactly one of these)
# --------------------------------------------------------------------------

#: Posted while the source node itself was crashed.
DROP_SRC_DOWN = "src-down"
#: Destination already dead when the write was posted (drop decided at
#: post time; the bytes still occupy the source's egress link).
DROP_DST_DOWN_AT_POST = "dst-down-at-post"
#: Destination died while the write was in flight.
DROP_DST_DOWN_IN_FLIGHT = "dst-down-in-flight"
#: Arrived after the target region was deregistered (view change razed
#: the epoch's memory layout while the write was in flight).
DROP_REGION_DEREGISTERED = "region-deregistered"
#: Crossed an active hard network cut (repro.faults partition/sever with
#: ``mode="drop"``).
DROP_PARTITION = "partition"
#: Random injected loss from a repro.faults jitter/degradation window.
DROP_INJECTED_LOSS = "injected-loss"


class FaultDecision(NamedTuple):
    """What a fault hook decided about one posted write.

    At most one of ``drop_reason`` / ``hold`` should be set; a pure
    latency fault sets only ``extra_latency``.
    """

    #: Drop the write, tagged with this reason code (None = don't drop).
    drop_reason: Optional[str] = None
    #: Extra one-way latency (seconds) added to this write's arrival.
    extra_latency: float = 0.0
    #: Buffer the write for later redelivery (RC retransmit across a
    #: transient cut). Called as ``hold(qp, remote_snapshot, remote_key)``;
    #: the holder is responsible for eventual delivery via
    #: :meth:`QueuePair.deliver_held`.
    hold: Optional[Callable[["QueuePair", WriteSnapshot, int], None]] = None


class RdmaNode:
    """A machine on the RDMA fabric: NIC + registered memory regions."""

    #: Happens-before tracker hook (repro.analysis.lint.hb): called as
    #: ``hb_hook(region, snap)`` after a remote write is applied — the
    #: tracker parks the writer's clock on the region so that polling
    #: reads of it (the SST's one-sided synchronization mechanism) can
    #: pick up the cross-node causality edge.
    hb_hook = None

    def __init__(self, node_id: int, sim: Simulator, latency: LatencyModel):
        self.node_id = node_id
        self.sim = sim
        self.latency = latency
        self.alive = True
        self.regions: Dict[int, Region] = {}
        self._next_key = 1
        #: Time at which the egress link frees up.
        self.egress_free_at = 0.0
        #: Hooks fired when a remote write lands (used to ring doorbells).
        self.on_remote_write: List[Callable[[Region, WriteSnapshot], None]] = []
        #: Hooks fired when this node *posts* a write, as
        #: ``hook(queue_pair, snapshot)`` — used by the runtime sanitizer
        #: to check §3.4 lock discipline at the lowest level.
        self.on_post: List[Callable[["QueuePair", WriteSnapshot], None]] = []
        #: Egress fault hook, ``hook(queue_pair, size) -> FaultDecision
        #: or None`` — installed by :class:`repro.faults.FaultPlane` to
        #: inject partitions, loss and latency (docs/FAULTS.md).
        self.fault_hook: Optional[
            Callable[["QueuePair", int], Optional[FaultDecision]]
        ] = None
        # -- counters ---------------------------------------------------------
        self.writes_posted = 0
        self.bytes_posted = 0
        self.writes_received = 0
        self.bytes_received = 0
        self.writes_dropped = 0
        #: Per-reason breakdown of ``writes_dropped`` (reason code ->
        #: count); the values always sum to ``writes_dropped``.
        self.writes_dropped_by_reason: Dict[str, int] = {}

    def register(self, region: Region) -> int:
        """Register a memory region with the NIC; returns its key (rkey)."""
        key = self._next_key
        self._next_key += 1
        region.key = key
        self.regions[key] = region
        return key

    def deregister(self, key: int) -> None:
        """Remove a region (e.g. at the end of a membership view)."""
        region = self.regions.pop(key)
        region.key = -1

    def count_drop(self, reason: str) -> None:
        """Account one lost write under ``reason`` (see module docs)."""
        self.writes_dropped += 1
        self.writes_dropped_by_reason[reason] = (
            self.writes_dropped_by_reason.get(reason, 0) + 1
        )

    def _receive(self, snap: WriteSnapshot, region_key: int) -> None:
        """Apply an arriving remote write and notify listeners."""
        region = self.regions.get(region_key)
        if region is None:
            # Region was deregistered (view change) while the write was
            # in flight; the write is lost, as on real hardware.
            self.count_drop(DROP_REGION_DEREGISTERED)
            return
        region.apply_write(snap)
        if RdmaNode.hb_hook is not None:
            RdmaNode.hb_hook(region, snap)
        self.writes_received += 1
        self.bytes_received += snap.size_bytes
        for hook in self.on_remote_write:
            hook(region, snap)

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return f"<RdmaNode {self.node_id} {state}>"


class QueuePair:
    """A reliable-connection queue pair from ``src`` to ``dst``.

    Writes posted on the same QP are applied at the destination in post
    order (the RDMA memory-fence guarantee Derecho's SST relies on).
    """

    def __init__(self, src: RdmaNode, dst: RdmaNode):
        self.src = src
        self.dst = dst
        self._last_arrival = 0.0
        self.writes = 0
        self.bytes = 0

    def post_write(
        self,
        local_region: Region,
        local_offset: int,
        remote_key: int,
        remote_offset: int,
        length: int,
        on_complete: Optional[Callable[[], None]] = None,
    ) -> None:
        """Post a one-sided write of ``length`` units to the remote region.

        The source span is snapshotted *now* (DMA from pinned memory);
        later local mutations do not affect the in-flight write. If
        either endpoint is down the write is silently dropped, matching
        the behaviour the membership protocol must tolerate. An
        installed fault hook may additionally drop, hold, or delay the
        write (docs/FAULTS.md).
        """
        src, dst = self.src, self.dst
        if not src.alive:
            src.count_drop(DROP_SRC_DOWN)
            return
        snap = local_region.snapshot(local_offset, length)
        size = snap.size_bytes
        sim = src.sim
        model = src.latency

        # Egress serialization is charged regardless of the write's fate
        # past the NIC: the bytes leave the node either way, and where
        # they die afterwards is the network's business.
        start = max(sim.now, src.egress_free_at)
        finish = start + model.occupancy(size)
        src.egress_free_at = finish

        src.writes_posted += 1
        src.bytes_posted += size
        self.writes += 1
        self.bytes += size
        for hook in src.on_post:
            hook(self, snap)

        decision = src.fault_hook(self, size) if src.fault_hook else None
        remote_snap = WriteSnapshot(remote_offset, snap.data, size)
        if decision is not None and decision.drop_reason is not None:
            src.count_drop(decision.drop_reason)
        elif decision is not None and decision.hold is not None:
            # Transient cut with RC retransmit semantics: the fault
            # plane buffers the write and redelivers it at heal time.
            decision.hold(self, remote_snap, remote_key)
        elif dst.alive:
            extra = decision.extra_latency if decision is not None else 0.0
            arrival = max(finish + model.wire_latency(size) + extra,
                          self._last_arrival + _ORDERING_EPS)
            self._last_arrival = arrival
            sim.call_at(arrival, self._arrive, remote_snap, remote_key)
        else:
            src.count_drop(DROP_DST_DOWN_AT_POST)
        if on_complete is not None:
            sim.call_at(finish, on_complete)

    def deliver_held(self, snap: WriteSnapshot, remote_key: int) -> None:
        """Redeliver a write that was held across a transient cut.

        Arrival is scheduled one wire latency from *now* (the retransmit
        leaves as soon as the QP's retry timer fires after the heal);
        per-QP post order is preserved through the usual arrival chain.
        """
        sim = self.src.sim
        arrival = max(sim.now + self.src.latency.wire_latency(snap.size_bytes),
                      self._last_arrival + _ORDERING_EPS)
        self._last_arrival = arrival
        sim.call_at(arrival, self._arrive, snap, remote_key)

    def _arrive(self, snap: WriteSnapshot, remote_key: int) -> None:
        if self.dst.alive:
            self.dst._receive(snap, remote_key)
        else:
            self.src.count_drop(DROP_DST_DOWN_IN_FLIGHT)

    def __repr__(self) -> str:
        return f"<QP {self.src.node_id}->{self.dst.node_id}>"

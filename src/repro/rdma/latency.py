"""RDMA timing model, calibrated to the paper's Figure 1.

The paper measures one-sided RDMA write latency of 1.73 µs for 1-byte
payloads rising only to 2.46 µs at 4 KB on a 100 Gbps (12.5 GB/s)
InfiniBand fabric, and reports that *posting* a write costs the CPU about
1 µs (§3.2).

We decompose a write into three separately-accounted quantities:

* **post overhead** — CPU time burned by the *posting thread* (MMIO +
  descriptor build). Charged by the protocol code that calls
  ``post_write`` (it is a property of the caller's thread, not the NIC).
* **occupancy** — how long the write occupies the sender's egress link:
  ``size / link_bandwidth`` plus a small per-operation gap. This is the
  quantity that limits *throughput*.
* **wire latency** — time from leaving the egress queue to the bytes
  being visible in remote memory: an affine function fitted to Figure 1.
  This is the quantity that limits *latency* and is pipelined (it does
  not consume egress capacity).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.units import gb_per_s, ns, us

__all__ = ["LatencyModel"]


@dataclass
class LatencyModel:
    """Timing constants for the simulated RDMA fabric.

    The defaults are calibrated so the *end-to-end* write latency on an
    idle fabric (egress occupancy + wire latency) reproduces Figure 1:

    >>> m = LatencyModel()
    >>> round(m.end_to_end(1) * 1e6, 2)
    1.73
    >>> round(m.end_to_end(4096) * 1e6, 2)
    2.46
    """

    #: Base one-way latency of a minimal write after leaving the egress
    #: queue (calibrated so end_to_end(1) matches Fig. 1's 1.73 µs).
    base_latency: float = us(1.68)
    #: Additional pipelined latency per byte (DMA/PCIe stages; fitted so
    #: end_to_end(4 KB) matches Fig. 1's 2.46 µs).
    per_byte_latency: float = ns(0.110)
    #: Egress link bandwidth in bytes/second (100 Gbps InfiniBand).
    link_bandwidth: float = gb_per_s(12.5)
    #: Minimum egress occupancy per operation (per-op NIC processing).
    min_op_gap: float = ns(50)
    #: CPU time consumed by the thread that posts a write (§3.2: ~1 µs).
    post_overhead: float = us(1.0)

    def wire_latency(self, size: int) -> float:
        """One-way latency from egress to remote-memory visibility."""
        return self.base_latency + size * self.per_byte_latency

    def occupancy(self, size: int) -> float:
        """Egress-link busy time for a write of ``size`` bytes."""
        return max(size / self.link_bandwidth, self.min_op_gap)

    def end_to_end(self, size: int) -> float:
        """Idle-fabric write latency: occupancy + wire (Fig. 1's metric)."""
        return self.occupancy(size) + self.wire_latency(size)

    @classmethod
    def tcp(cls) -> "LatencyModel":
        """A kernel-TCP datacenter fabric instead of RDMA.

        The paper notes (§1) that Derecho also runs over fast datacenter
        TCP and that the same observations and optimizations apply.
        Representative numbers: ~30 µs stack latency, 10 Gbps links,
        ~3 µs of CPU per send (syscall + copy into socket buffers).
        """
        return cls(
            base_latency=us(30.0),
            per_byte_latency=ns(0.2),
            link_bandwidth=gb_per_s(1.25),
            min_op_gap=us(1.0),
            post_overhead=us(3.0),
        )

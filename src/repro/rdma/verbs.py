"""A small ibverbs-flavoured facade over the simulated fabric.

The Derecho layers use :mod:`repro.rdma.fabric` directly; this module
offers the familiar verbs vocabulary (protection domains, memory
regions, work requests) for applications and for the low-level tests
that validate fabric semantics byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .fabric import RdmaFabric
from .memory import ByteRegion, Region
from .nic import QueuePair, RdmaNode

__all__ = ["ProtectionDomain", "MemoryRegionHandle", "WorkRequest", "post_write"]


@dataclass(frozen=True)
class MemoryRegionHandle:
    """Registration receipt: which node registered which region."""

    node_id: int
    key: int
    region: Region


@dataclass(frozen=True)
class WorkRequest:
    """A one-sided RDMA write work request."""

    local: MemoryRegionHandle
    local_offset: int
    remote: MemoryRegionHandle
    remote_offset: int
    length: int
    on_complete: Optional[Callable[[], None]] = None


class ProtectionDomain:
    """Per-node registration context, in the style of ``ibv_pd``."""

    def __init__(self, fabric: RdmaFabric, node: RdmaNode):
        self.fabric = fabric
        self.node = node

    def register_memory(self, region: Region) -> MemoryRegionHandle:
        """Register a region for remote access; returns its handle."""
        key = self.node.register(region)
        return MemoryRegionHandle(self.node.node_id, key, region)

    def alloc_buffer(self, size: int, name: str = "buffer") -> MemoryRegionHandle:
        """Allocate + register a fresh byte region in one step."""
        return self.register_memory(ByteRegion(size, name=name))

    def queue_pair(self, remote_node_id: int) -> QueuePair:
        """Connect (or reuse) a reliable queue pair to a remote node."""
        return self.fabric.queue_pair(self.node.node_id, remote_node_id)


def post_write(qp: QueuePair, wr: WorkRequest) -> None:
    """Post a work request on a queue pair (``ibv_post_send`` analogue)."""
    if wr.local.node_id != qp.src.node_id:
        raise ValueError("local buffer not registered on the QP's source node")
    if wr.remote.node_id != qp.dst.node_id:
        raise ValueError("remote buffer not registered on the QP's destination node")
    qp.post_write(
        wr.local.region,
        wr.local_offset,
        wr.remote.key,
        wr.remote_offset,
        wr.length,
        on_complete=wr.on_complete,
    )

"""Registered memory regions for the simulated RDMA fabric.

Two granularities are provided:

* :class:`ByteRegion` — a plain byte-addressed region backed by a
  ``bytearray``. Used by the low-level verbs tests to validate the
  byte-level semantics (fence ordering, cache-line atomicity) and
  available to any application that wants full byte fidelity.

* :class:`CellRegion` — a region organized as a sequence of *cells*,
  each holding an arbitrary immutable Python value with a declared byte
  size. Writes are atomic per cell, which models RDMA's cache-line
  atomicity for the SST's monotonic counters, and lets bulk payloads be
  transferred as opaque snapshots whose *size* (not content) drives
  timing. The SST and SMC are built on cell regions.

A remote write carries a :class:`WriteSnapshot` — an immutable copy of
the source cells/bytes taken at post time, exactly like a real NIC DMA
from pinned memory.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

__all__ = ["Region", "ByteRegion", "CellRegion", "WriteSnapshot"]


@dataclass(frozen=True)
class WriteSnapshot:
    """Immutable payload of an RDMA write: (offset, data, size_bytes).

    For a :class:`ByteRegion`, ``data`` is ``bytes`` and ``offset`` is a
    byte offset. For a :class:`CellRegion`, ``data`` is a tuple of cell
    values and ``offset`` is a cell index.
    """

    offset: int
    data: Any
    size_bytes: int


class Region:
    """Base class for registered memory regions.

    Each region has an integer key (assigned at registration) used by
    remote peers to address it, mirroring RDMA rkeys.
    """

    kind = "abstract"

    def __init__(self, name: str = "region"):
        self.name = name
        self.key: int = -1  # assigned by the node at registration

    # -- interface -----------------------------------------------------------

    def snapshot(self, offset: int, length: int) -> WriteSnapshot:
        """Copy ``length`` units starting at ``offset`` for transmission."""
        raise NotImplementedError

    def apply_write(self, snap: WriteSnapshot) -> None:
        """Apply an incoming remote write."""
        raise NotImplementedError

    def size_of(self, offset: int, length: int) -> int:
        """Byte size of the span (used for timing)."""
        raise NotImplementedError


class ByteRegion(Region):
    """A byte-addressed region backed by a ``bytearray``."""

    kind = "bytes"

    def __init__(self, size: int, name: str = "byte-region"):
        super().__init__(name)
        if size <= 0:
            raise ValueError("region size must be positive")
        self.buf = bytearray(size)

    def __len__(self) -> int:
        return len(self.buf)

    def write_local(self, offset: int, data: bytes) -> None:
        """Local (CPU) write into the region."""
        self._check(offset, len(data))
        self.buf[offset : offset + len(data)] = data

    def read(self, offset: int, length: int) -> bytes:
        """Local (CPU) read from the region."""
        self._check(offset, length)
        return bytes(self.buf[offset : offset + length])

    def snapshot(self, offset: int, length: int) -> WriteSnapshot:
        self._check(offset, length)
        return WriteSnapshot(offset, bytes(self.buf[offset : offset + length]), length)

    def apply_write(self, snap: WriteSnapshot) -> None:
        self._check(snap.offset, len(snap.data))
        self.buf[snap.offset : snap.offset + len(snap.data)] = snap.data

    def size_of(self, offset: int, length: int) -> int:
        return length

    def _check(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > len(self.buf):
            raise IndexError(
                f"access [{offset}, {offset + length}) out of bounds for "
                f"region {self.name!r} of size {len(self.buf)}"
            )


# Per-cell storage class codes (``CellRegion._code``): generic object
# slot, 64-bit signed integer slot, or flag (integer slot read back as
# bool).  Typed slots live in one contiguous ``array('q')`` — the SST's
# counters and flags become flat machine words instead of boxed objects.
_CELL_OBJ = 0
_CELL_INT = 1
_CELL_FLAG = 2

#: cell-kind string -> storage class (kind strings from repro.sst.fields).
_KIND_CODES = {"counter": _CELL_INT, "flag": _CELL_FLAG}


class CellRegion(Region):
    """A region of atomically-written typed cells.

    ``cell_sizes[i]`` is the byte size of cell ``i`` — it determines the
    transfer time of writes covering that cell. Values are arbitrary
    Python objects; callers must treat stored values as immutable (store
    tuples/bytes/ints), which the SST layer does.

    ``kinds`` optionally declares per-cell storage: cells whose kind is
    ``"counter"`` or ``"flag"`` are backed by a slot-indexed ``array('q')``
    of machine words (flags read back as ``bool``); everything else (and
    all cells when ``kinds`` is None) lives in a plain object slot. A
    typed cell handed a value that doesn't fit a signed 64-bit word is
    transparently demoted to an object slot.

    Every mutation (local write, applied remote write, bulk ``cells``
    assignment) bumps :attr:`version`, a strictly-increasing generation
    counter. Predicate memoization builds its invalidation tokens from
    row versions (docs/ENGINE.md).
    """

    kind = "cells"

    def __init__(self, cell_sizes: Sequence[int], name: str = "cell-region",
                 kinds: Optional[Sequence[str]] = None):
        super().__init__(name)
        if not cell_sizes:
            raise ValueError("cell region needs at least one cell")
        if any(s <= 0 for s in cell_sizes):
            raise ValueError("cell sizes must be positive")
        self.cell_sizes: Tuple[int, ...] = tuple(cell_sizes)
        n = len(self.cell_sizes)
        #: Generation counter: bumped on every mutation of the region.
        self.version = 0
        code = bytearray(n)
        if kinds is not None:
            if len(kinds) != n:
                raise ValueError("kinds must match cell_sizes in length")
            for i, k in enumerate(kinds):
                code[i] = _KIND_CODES.get(k, _CELL_OBJ)
        self._code = code
        self._ints = array("q", bytes(8 * n))
        self._objs: List[Any] = [None] * n
        # Prefix sums let size_of answer in O(1).
        self._prefix = [0]
        for s in self.cell_sizes:
            self._prefix.append(self._prefix[-1] + s)

    def __len__(self) -> int:
        return len(self._code)

    @property
    def cells(self) -> List[Any]:
        """Materialized list of current cell values (compat view; a
        fresh list each access — mutate via :meth:`write_local`)."""
        code = self._code
        ints = self._ints
        objs = self._objs
        return [
            objs[i] if code[i] == 0 else
            (ints[i] if code[i] == 1 else bool(ints[i]))
            for i in range(len(code))
        ]

    @cells.setter
    def cells(self, values: Sequence[Any]) -> None:
        values = list(values)
        if len(values) != len(self._code):
            raise ValueError(
                f"expected {len(self._code)} cell values, got {len(values)}"
            )
        self.version += 1
        for i, v in enumerate(values):
            self._store(i, v)

    @property
    def total_bytes(self) -> int:
        """Total registered byte footprint of the region."""
        return self._prefix[-1]

    def _store(self, index: int, value: Any) -> None:
        if self._code[index] == 0:
            self._objs[index] = value
        else:
            try:
                self._ints[index] = value
            except (TypeError, OverflowError):
                # Demote: the value doesn't fit a typed machine-word slot.
                self._code[index] = _CELL_OBJ
                self._objs[index] = value

    def write_local(self, index: int, value: Any) -> None:
        """Local (CPU) write of one cell."""
        self._check(index, 1)
        self.version += 1
        self._store(index, value)  # spindle-lint: allow[sst-monotonic-write]

    def read(self, index: int) -> Any:
        """Local (CPU) read of one cell."""
        self._check(index, 1)
        code = self._code[index]
        if code == 0:
            return self._objs[index]
        value = self._ints[index]
        return value if code == 1 else bool(value)

    def snapshot(self, offset: int, length: int) -> WriteSnapshot:
        self._check(offset, length)
        code = self._code
        ints = self._ints
        objs = self._objs
        data = tuple(
            objs[i] if code[i] == 0 else
            (ints[i] if code[i] == 1 else bool(ints[i]))
            for i in range(offset, offset + length)
        )
        return WriteSnapshot(
            offset, data, self._prefix[offset + length] - self._prefix[offset]
        )

    def apply_write(self, snap: WriteSnapshot) -> None:
        self._check(snap.offset, len(snap.data))
        # Incoming RDMA writes carry peers' rows; monotonicity of those is
        # the *sender's* obligation, enforced at its SST write point.
        # spindle-lint: allow[sst-monotonic-write]
        self.version += 1
        i = snap.offset
        for value in snap.data:
            self._store(i, value)
            i += 1

    def size_of(self, offset: int, length: int) -> int:
        self._check(offset, length)
        return self._prefix[offset + length] - self._prefix[offset]

    def _check(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > len(self._code):
            raise IndexError(
                f"access cells [{offset}, {offset + length}) out of bounds "
                f"for region {self.name!r} with {len(self._code)} cells"
            )

"""Registered memory regions for the simulated RDMA fabric.

Two granularities are provided:

* :class:`ByteRegion` — a plain byte-addressed region backed by a
  ``bytearray``. Used by the low-level verbs tests to validate the
  byte-level semantics (fence ordering, cache-line atomicity) and
  available to any application that wants full byte fidelity.

* :class:`CellRegion` — a region organized as a sequence of *cells*,
  each holding an arbitrary immutable Python value with a declared byte
  size. Writes are atomic per cell, which models RDMA's cache-line
  atomicity for the SST's monotonic counters, and lets bulk payloads be
  transferred as opaque snapshots whose *size* (not content) drives
  timing. The SST and SMC are built on cell regions.

A remote write carries a :class:`WriteSnapshot` — an immutable copy of
the source cells/bytes taken at post time, exactly like a real NIC DMA
from pinned memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Sequence, Tuple

__all__ = ["Region", "ByteRegion", "CellRegion", "WriteSnapshot"]


@dataclass(frozen=True)
class WriteSnapshot:
    """Immutable payload of an RDMA write: (offset, data, size_bytes).

    For a :class:`ByteRegion`, ``data`` is ``bytes`` and ``offset`` is a
    byte offset. For a :class:`CellRegion`, ``data`` is a tuple of cell
    values and ``offset`` is a cell index.
    """

    offset: int
    data: Any
    size_bytes: int


class Region:
    """Base class for registered memory regions.

    Each region has an integer key (assigned at registration) used by
    remote peers to address it, mirroring RDMA rkeys.
    """

    kind = "abstract"

    def __init__(self, name: str = "region"):
        self.name = name
        self.key: int = -1  # assigned by the node at registration

    # -- interface -----------------------------------------------------------

    def snapshot(self, offset: int, length: int) -> WriteSnapshot:
        """Copy ``length`` units starting at ``offset`` for transmission."""
        raise NotImplementedError

    def apply_write(self, snap: WriteSnapshot) -> None:
        """Apply an incoming remote write."""
        raise NotImplementedError

    def size_of(self, offset: int, length: int) -> int:
        """Byte size of the span (used for timing)."""
        raise NotImplementedError


class ByteRegion(Region):
    """A byte-addressed region backed by a ``bytearray``."""

    kind = "bytes"

    def __init__(self, size: int, name: str = "byte-region"):
        super().__init__(name)
        if size <= 0:
            raise ValueError("region size must be positive")
        self.buf = bytearray(size)

    def __len__(self) -> int:
        return len(self.buf)

    def write_local(self, offset: int, data: bytes) -> None:
        """Local (CPU) write into the region."""
        self._check(offset, len(data))
        self.buf[offset : offset + len(data)] = data

    def read(self, offset: int, length: int) -> bytes:
        """Local (CPU) read from the region."""
        self._check(offset, length)
        return bytes(self.buf[offset : offset + length])

    def snapshot(self, offset: int, length: int) -> WriteSnapshot:
        self._check(offset, length)
        return WriteSnapshot(offset, bytes(self.buf[offset : offset + length]), length)

    def apply_write(self, snap: WriteSnapshot) -> None:
        self._check(snap.offset, len(snap.data))
        self.buf[snap.offset : snap.offset + len(snap.data)] = snap.data

    def size_of(self, offset: int, length: int) -> int:
        return length

    def _check(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > len(self.buf):
            raise IndexError(
                f"access [{offset}, {offset + length}) out of bounds for "
                f"region {self.name!r} of size {len(self.buf)}"
            )


class CellRegion(Region):
    """A region of atomically-written typed cells.

    ``cell_sizes[i]`` is the byte size of cell ``i`` — it determines the
    transfer time of writes covering that cell. Values are arbitrary
    Python objects; callers must treat stored values as immutable (store
    tuples/bytes/ints), which the SST layer does.
    """

    kind = "cells"

    def __init__(self, cell_sizes: Sequence[int], name: str = "cell-region"):
        super().__init__(name)
        if not cell_sizes:
            raise ValueError("cell region needs at least one cell")
        if any(s <= 0 for s in cell_sizes):
            raise ValueError("cell sizes must be positive")
        self.cell_sizes: Tuple[int, ...] = tuple(cell_sizes)
        # Construction-time fill; no peer can observe a fresh region.
        self.cells: List[Any] = [None] * len(cell_sizes)  # spindle-lint: allow[sst-monotonic-write]
        # Prefix sums let size_of answer in O(1).
        self._prefix = [0]
        for s in self.cell_sizes:
            self._prefix.append(self._prefix[-1] + s)

    def __len__(self) -> int:
        return len(self.cells)

    @property
    def total_bytes(self) -> int:
        """Total registered byte footprint of the region."""
        return self._prefix[-1]

    def write_local(self, index: int, value: Any) -> None:
        """Local (CPU) write of one cell."""
        self._check(index, 1)
        self.cells[index] = value  # spindle-lint: allow[sst-monotonic-write]

    def read(self, index: int) -> Any:
        """Local (CPU) read of one cell."""
        self._check(index, 1)
        return self.cells[index]

    def snapshot(self, offset: int, length: int) -> WriteSnapshot:
        self._check(offset, length)
        data = tuple(self.cells[offset : offset + length])
        return WriteSnapshot(offset, data, self.size_of(offset, length))

    def apply_write(self, snap: WriteSnapshot) -> None:
        self._check(snap.offset, len(snap.data))
        # Incoming RDMA writes carry peers' rows; monotonicity of those is
        # the *sender's* obligation, enforced at its SST write point.
        # spindle-lint: allow[sst-monotonic-write]
        self.cells[snap.offset : snap.offset + len(snap.data)] = list(snap.data)

    def size_of(self, offset: int, length: int) -> int:
        self._check(offset, length)
        return self._prefix[offset + length] - self._prefix[offset]

    def _check(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > len(self.cells):
            raise IndexError(
                f"access cells [{offset}, {offset + length}) out of bounds "
                f"for region {self.name!r} with {len(self.cells)} cells"
            )

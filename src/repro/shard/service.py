"""Sharded RPC-style KV service: per-shard state-machine replication.

Generalizes :class:`repro.apps.kvstore.KvNode` into a sharded service:

* every request is framed with a client-chosen **request id** (rid) so
  retries across rejections, view changes and re-routes are
  **idempotent** — a replica applies each rid at most once and answers
  duplicates with ``"duplicate"`` instead of re-executing them
  (rid ``0`` is the "no dedup" sentinel used by fences and rebalance
  replay, which are idempotent by construction);
* replicas of one subgroup host *all* shards mapped there; per-shard
  reads/checksums/snapshots are projections through the
  :class:`~repro.shard.shardmap.ShardMap`;
* ``sync_read`` stays linearizable *per shard* (a fence through that
  shard's total order — cross-shard reads are not ordered against each
  other, see docs/SHARDING.md for the exact consistency scope), and the
  router optionally serves a **stale-read fast path** from the gateway
  replica's local state.

Checksums here are crc32 over the canonical item encoding — stable
across processes (``KvNode.checksum`` uses Python's salted ``hash`` and
is only good intra-process), which is what lets the cross-shard
verifier and the chaos artifacts compare digests between runs.
"""

from __future__ import annotations

import struct
import zlib
from typing import Dict, Generator, List, Optional, Tuple

from ..apps.kvstore import OP_CAS, OP_DELETE, OP_FENCE, OP_PUT, KvCommand, KvNode
from ..core.multicast import Delivery
from ..txn.records import (
    W_PUT,
    PrepareRecord,
    SettleRecord,
    decode_txn_record,
    is_txn_payload,
)
from .shardmap import ShardMap

__all__ = ["ShardReplica", "ShardedKv", "frame_request", "unframe_request"]

#: Request-id envelope prepended to every KvCommand payload.
_RID = struct.Struct("<Q")


def frame_request(rid: int, inner: bytes) -> bytes:
    """Prepend the idempotency envelope (rid 0 = no dedup)."""
    return _RID.pack(rid) + inner


def unframe_request(payload: bytes) -> Tuple[int, bytes]:
    """Split a framed payload into (rid, inner KvCommand bytes)."""
    (rid,) = _RID.unpack_from(payload)
    return rid, payload[_RID.size:]


class ShardReplica(KvNode):
    """A KvNode speaking the rid-framed sharded command encoding.

    State transitions happen exactly once per rid: a duplicate delivery
    (a client retry whose original did commit before a view change)
    skips the transition and completes the submitter's waiter with the
    string ``"duplicate"``.
    """

    def __init__(self, mc):
        super().__init__(mc)
        #: rids already applied (never re-executed).
        self.seen_requests: set = set()
        #: deliveries suppressed by rid dedup (retry landed twice).
        self.duplicates_skipped = 0
        # -- transaction state (docs/TRANSACTIONS.md) -----------------------
        # All three maps key by (txn_id, shard), not txn_id alone: a
        # replica can legitimately host two shards of the same txn
        # (co-hashed shards, or a migration landing a second participant
        # shard on this subgroup), and each per-shard slice must be
        # decided and settled independently.
        #: (txn_id, shard) -> PrepareRecord whose writes are buffered
        #: awaiting the settle verdict.
        self.txn_prepared: Dict[Tuple[int, int], PrepareRecord] = {}
        #: key -> txn_id holding the prepared lock (blocks conflicting
        #: prepares until the settle releases it).
        self.txn_locks: Dict[bytes, int] = {}
        #: (txn_id, shard) -> original prepare vote ("yes"/"no");
        #: replayed prepares (retries across view changes) answer with
        #: this instead of re-deciding — exactly-once txn semantics.
        self.txn_verdicts: Dict[Tuple[int, int], str] = {}
        #: (txn_id, shard) -> settle result ("committed"/"aborted"),
        #: same dedup contract for replayed settles.
        self.txn_settled: Dict[Tuple[int, int], str] = {}
        #: txn deliveries answered from verdict memory.
        self.txn_duplicates = 0

    # ---------------------------------------------------------- replication

    def apply(self, delivery: Delivery) -> None:
        rid, inner = unframe_request(delivery.payload)
        if rid and rid in self.seen_requests:
            self.duplicates_skipped += 1
            # Still consumes one FIFO slot from this sender (the ticket
            # counter must advance exactly once per delivery).
            token = self._next_token(delivery)
            waiter = self._write_waiters.pop(token, None)
            if waiter is not None:
                waiter.trigger("duplicate")
            fence = self._fence_waiters.pop(token, None)
            if fence is not None:
                fence.trigger(None)
            return
        if rid:
            self.seen_requests.add(rid)
        if is_txn_payload(inner):
            outcome = self._apply_txn(inner)
            self.applied += 1
            self.apply_log.append((delivery.seq, inner[0], b"txn"))
            token = self._next_token(delivery)
            waiter = self._write_waiters.pop(token, None)
            if waiter is not None:
                waiter.trigger(outcome)
            return
        super().apply(Delivery(delivery.subgroup_id, delivery.sender,
                               delivery.sender_rank, delivery.seq,
                               inner, delivery.size))

    def apply_command(self, payload: Optional[bytes]) -> None:
        """Recovery replay of a framed durable-log entry (dedup holds
        across replay too: a replayed rid blocks a later live retry)."""
        if payload is None:
            return
        rid, inner = unframe_request(payload)
        if rid:
            if rid in self.seen_requests:
                self.duplicates_skipped += 1
                return
            self.seen_requests.add(rid)
        if is_txn_payload(inner):
            self._apply_txn(inner)
            self.recovered += 1
            return
        super().apply_command(inner)

    # ------------------------------------------------------- txn transitions

    def _apply_txn(self, inner: bytes) -> str:
        """Decide a txn record at its delivery position. Pure state
        transition, deterministic in (state, record) alone, so every
        replica of the subgroup reaches the same verdict at the same
        place in the total order (and durable-log replay reproduces
        it)."""
        rec = decode_txn_record(inner)
        if isinstance(rec, SettleRecord):
            return self._apply_settle(rec)
        return self._apply_prepare(rec)

    def _apply_prepare(self, rec: PrepareRecord) -> str:
        slot = (rec.txn_id, rec.shard)
        if slot in self.txn_verdicts:
            self.txn_duplicates += 1
            return self.txn_verdicts[slot]
        vote = "yes"
        # A key pinned by another prepared-but-unsettled txn may still
        # change: conflicting prepares must wait for that settle (the
        # coordinator retries), so vote no.
        for key in rec.keys():
            holder = self.txn_locks.get(key)
            if holder is not None and holder != rec.txn_id:
                vote = "no"
                break
        if vote == "yes":
            # Authoritative (in-order) OCC validation: every observed
            # value must still match committed state.
            for key, expected in rec.reads:
                if self.data.get(key) != expected:
                    vote = "no"
                    break
        if vote == "yes":
            if rec.auto_commit:
                # No settle will follow: the single-shard fast path
                # applies its writes here (this order *is* the txn's
                # atomicity domain); an OCC validate-only slice has no
                # writes and just certified its reads in-order.
                self._apply_txn_writes(rec.writes)
                self.txn_settled[slot] = "committed"
            else:
                self.txn_prepared[slot] = rec
                for key in rec.write_keys():
                    self.txn_locks[key] = rec.txn_id
        self.txn_verdicts[slot] = vote
        return vote

    def _apply_settle(self, rec: SettleRecord) -> str:
        slot = (rec.txn_id, rec.shard)
        if slot in self.txn_settled:
            self.txn_duplicates += 1
            return self.txn_settled[slot]
        prepared = self.txn_prepared.pop(slot, None)
        if prepared is not None:
            for key in prepared.write_keys():
                if self.txn_locks.get(key) == rec.txn_id:
                    del self.txn_locks[key]
            if rec.commit:
                self._apply_txn_writes(prepared.writes)
        result = "committed" if (rec.commit and prepared is not None) \
            else "aborted"
        self.txn_settled[slot] = result
        return result

    def _apply_txn_writes(self, writes) -> None:
        for wop, key, value in writes:
            if wop == W_PUT:
                self.data[key] = value
            else:
                self.data.pop(key, None)

    def prepared_txns_touching(self, shard: int,
                               shard_map: ShardMap) -> List[int]:
        """Txn ids prepared-but-unsettled with buffered writes or
        prepared locks on one shard — the rebalance drain barrier."""
        return sorted({
            txn_id for (txn_id, _), rec in self.txn_prepared.items()
            if any(shard_map.shard_of(k) == shard for k in rec.keys())})

    # ------------------------------------------------------------- requests

    def put_req(self, rid: int, key: bytes, value: bytes) -> Generator:
        return self._submit(
            frame_request(rid, KvCommand.encode(OP_PUT, key, value)),
            self._write_waiters)

    def delete_req(self, rid: int, key: bytes) -> Generator:
        return self._submit(
            frame_request(rid, KvCommand.encode(OP_DELETE, key)),
            self._write_waiters)

    def cas_req(self, rid: int, key: bytes, expected: bytes,
                value: bytes) -> Generator:
        return self._submit(
            frame_request(rid, KvCommand.encode(OP_CAS, key, value, expected)),
            self._write_waiters)

    def fence_req(self) -> Generator:
        """Linearization fence through this subgroup's total order
        (idempotent: always rid 0)."""
        return self._submit(frame_request(0, KvCommand.encode(OP_FENCE)),
                            self._fence_waiters)

    def sync_read_req(self, key: bytes) -> Generator:
        yield from self.fence_req()
        return self.data.get(key)

    def txn_req(self, record: bytes) -> Generator:
        """Sequence an encoded txn record (prepare/settle) into this
        subgroup's total order; returns the verdict string decided at
        delivery. Always rid 0 — txn records dedup by txn id, replying
        with the *original* verdict instead of ``"duplicate"``."""
        return self._submit(frame_request(0, record), self._write_waiters)


class ShardedKv:
    """The sharded service: one :class:`ShardReplica` per (subgroup,
    member), rebound across epochs so state survives view changes.

    Created and driven by :func:`repro.shard.build_shard_plane`; the
    router talks to it through :meth:`gateway_replica`.
    """

    def __init__(self, cluster, subgroup_ids):
        self.cluster = cluster
        self.subgroup_ids: List[int] = list(subgroup_ids)
        #: (subgroup_id, node_id) -> replica. Replicas persist across
        #: epochs (rebind), so dedup state and data carry over.
        self.replicas: Dict[Tuple[int, int], ShardReplica] = {}

    # ------------------------------------------------------------- wiring

    def attach(self) -> "ShardedKv":
        """Wire replicas for the currently installed view."""
        self._wire(self.cluster.view)
        return self

    def rebind(self, view) -> None:
        """Re-attach every surviving replica to the new epoch's
        multicast endpoints (and create replicas for new members)."""
        self._wire(view)

    def _wire(self, view) -> None:
        if view is None:
            raise RuntimeError("cluster has no installed view; build() first")
        for spec in view.subgroups:
            if spec.subgroup_id not in self.subgroup_ids:
                continue
            for node_id in spec.members:
                group = self.cluster.groups.get(node_id)
                if group is None:
                    continue
                key = (spec.subgroup_id, node_id)
                replica = self.replicas.get(key)
                if replica is None:
                    replica = ShardReplica(group.subgroup(spec.subgroup_id))
                    self.replicas[key] = replica
                else:
                    replica.rebind(group.subgroup(spec.subgroup_id))
                group.on_delivery(spec.subgroup_id, replica.apply)

    # ------------------------------------------------------------ gateways

    def gateway(self, subgroup_id: int) -> int:
        """The node requests for this subgroup are executed on: the
        first live sender of the current view's spec."""
        view = self.cluster.view
        live = set(self.cluster.live_nodes())
        for spec in view.subgroups:
            if spec.subgroup_id == subgroup_id:
                for node in spec.senders:
                    if node in live:
                        return node
                raise RuntimeError(
                    f"subgroup {subgroup_id} has no live sender")
        raise KeyError(f"subgroup {subgroup_id} not in installed view")

    def gateway_replica(self, subgroup_id: int) -> ShardReplica:
        return self.replicas[(subgroup_id, self.gateway(subgroup_id))]

    def replica(self, subgroup_id: int, node_id: int) -> ShardReplica:
        return self.replicas[(subgroup_id, node_id)]

    # ------------------------------------------------- per-shard projections

    def shard_items(self, shard: int, shard_map: ShardMap,
                    node_id: Optional[int] = None
                    ) -> List[Tuple[bytes, bytes]]:
        """Sorted (key, value) pairs of one shard, read from the
        hosting subgroup's gateway (or an explicit member)."""
        sg = shard_map.subgroup_of(shard)
        replica = (self.replicas[(sg, node_id)] if node_id is not None
                   else self.gateway_replica(sg))
        return sorted(
            (k, v) for k, v in replica.data.items()
            if shard_map.shard_of(k) == shard
        )

    def shard_checksum(self, shard: int, shard_map: ShardMap,
                       node_id: Optional[int] = None) -> int:
        """crc32 over the canonical item encoding of one shard —
        process-stable, so it can be compared across runs and shipped
        in chaos artifacts."""
        h = 0
        for key, value in self.shard_items(shard, shard_map, node_id):
            h = zlib.crc32(struct.pack("<HI", len(key), len(value)), h)
            h = zlib.crc32(key, h)
            h = zlib.crc32(value, h)
        return h

    def shard_snapshot_entries(self, shard: int, shard_map: ShardMap,
                               node_id: Optional[int] = None
                               ) -> List[Tuple[int, int, bytes]]:
        """The shard's state as (index, 0, framed PUT) entries, ready
        for :func:`repro.recovery.transfer.encode_entries` (the
        rebalance hand-off payload). rid 0: snapshot replay must never
        collide with live request dedup."""
        return [
            (i, 0, frame_request(0, KvCommand.encode(OP_PUT, k, v)))
            for i, (k, v) in enumerate(
                self.shard_items(shard, shard_map, node_id))
        ]

"""Consistent-hash shard map: keys -> shards -> subgroups.

The sharded service plane (docs/SHARDING.md) splits the keyspace into a
fixed number of **shards** and places each shard on one **subgroup** —
one independent Spindle total order (paper §2.1/§3.2; the multi-active-
subgroup SST layout of Fig. 13 is the substrate). Aggregate throughput
then scales with the number of subgroups, the datacenter-multicast
partitioning argument of Gleam and of *Scaling atomic ordering in
shared memory* (PAPERS.md).

Two hash layers, both seeded and both deterministic across processes
(sha256 — never Python's salted ``hash()``):

* **key -> shard**: a consistent-hash ring with ``vnodes`` virtual
  points per shard. The ring depends only on ``(seed, num_shards,
  vnodes)`` — membership changes never move a key between shards.
* **shard -> subgroup**: capacity-bounded rendezvous (highest-random-
  weight) hashing over the *serviceable* subgroup ids. When a subgroup
  disappears its shards move (they must) and the capacity rebound may
  displace a few survivors — approximately minimal movement, exactly
  balanced. Explicit ``overrides`` (live rebalancing,
  repro.shard.rebalance) sit on top and never perturb the base
  placement.

A map is **versioned against the membership epoch**: ``rederive(view)``
produces the successor map for a committed view, deterministically, so
every router arrives at byte-identical placement without coordination —
``placement_bytes()``/``digest()`` are the audit surface for that claim
(tested: same seed + same view => identical digest).
"""

from __future__ import annotations

import hashlib
import struct
from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.membership import View

__all__ = ["ShardMap", "key_hash"]


def _h64(*parts: object) -> int:
    """64-bit stable hash of the ':'-joined parts (sha256 prefix)."""
    blob = ":".join(str(p) for p in parts).encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")


def key_hash(key: bytes, seed: int) -> int:
    """Stable 64-bit position of a key on the ring (seeded)."""
    digest = hashlib.sha256(b"key:%d:" % seed + bytes(key)).digest()
    return int.from_bytes(digest[:8], "big")


class ShardMap:
    """Immutable placement of ``num_shards`` shards over subgroups.

    Treat instances as values: every mutation-shaped operation
    (:meth:`rederive`, :meth:`with_assignment`) returns a new map with a
    bumped ``version``. Routers swap maps atomically
    (:meth:`~repro.shard.router.ShardRouter.install_map`).
    """

    __slots__ = ("num_shards", "subgroup_ids", "seed", "version", "vnodes",
                 "overrides", "_ring", "_assignment")

    def __init__(
        self,
        num_shards: int,
        subgroup_ids: Sequence[int],
        seed: int = 0,
        version: int = 0,
        vnodes: int = 32,
        overrides: Optional[Dict[int, int]] = None,
    ):
        if num_shards < 1:
            raise ValueError("need at least one shard")
        if not subgroup_ids:
            raise ValueError("need at least one serviceable subgroup")
        if vnodes < 1:
            raise ValueError("vnodes must be positive")
        self.num_shards = num_shards
        self.subgroup_ids: Tuple[int, ...] = tuple(sorted(set(subgroup_ids)))
        self.seed = seed
        self.version = version
        self.vnodes = vnodes
        overrides = dict(overrides or {})
        for shard, sg in overrides.items():
            if not 0 <= shard < num_shards:
                raise ValueError(f"override for unknown shard {shard}")
            if sg not in self.subgroup_ids:
                raise ValueError(
                    f"override targets unserviceable subgroup {sg}")
        self.overrides: Dict[int, int] = overrides
        # -- key ring: sorted (point, shard) --------------------------------
        ring: List[Tuple[int, int]] = []
        for shard in range(num_shards):
            for v in range(vnodes):
                ring.append((_h64("shard", seed, shard, v), shard))
        ring.sort()
        self._ring = ring
        # -- shard -> subgroup: capacity-bounded rendezvous + overrides -----
        # Plain rendezvous (argmax of the per-pair hash) is minimal-
        # movement but can land every shard on one subgroup for small
        # counts; bounding each subgroup at ceil(shards/subgroups) keeps
        # placement balanced (the bench's scaling claim depends on it)
        # at the price of *approximate* (not strict) rendezvous minimal
        # movement: a vanished subgroup's shards always move, and the
        # capacity rebound may displace a few survivors too.
        #
        # The base placement is a pure function of (seed, num_shards,
        # subgroup_ids, vnodes) — overrides overlay it *afterwards* and
        # never perturb it, so ``with_assignment(s, sg)`` moves exactly
        # shard ``s`` (the rebalance commit's correctness depends on
        # this: a flip that silently relocated *other* shards would
        # strand their keys on the old subgroup).
        capacity = -(-num_shards // len(self.subgroup_ids))
        load: Dict[int, int] = {sg: 0 for sg in self.subgroup_ids}
        assignment: Dict[int, int] = {}
        for shard in range(num_shards):
            prefs = sorted(
                self.subgroup_ids,
                key=lambda sg: (_h64("place", seed, shard, sg), sg),
                reverse=True,
            )
            chosen = next((sg for sg in prefs if load[sg] < capacity),
                          prefs[0])
            assignment[shard] = chosen
            load[chosen] += 1
        assignment.update(overrides)
        self._assignment = assignment

    # ------------------------------------------------------------- lookups

    def shard_of(self, key: bytes) -> int:
        """The shard owning ``key`` (pure function of seed + num_shards)."""
        point = key_hash(key, self.seed)
        ring = self._ring
        idx = bisect_right(ring, (point, self.num_shards))
        if idx == len(ring):
            idx = 0  # wrap: first point clockwise
        return ring[idx][1]

    def subgroup_of(self, shard: int) -> int:
        """The subgroup currently hosting ``shard``."""
        return self._assignment[shard]

    def subgroup_of_key(self, key: bytes) -> int:
        return self.subgroup_of(self.shard_of(key))

    def shards_of_subgroup(self, subgroup_id: int) -> List[int]:
        """All shards hosted by one subgroup (sorted)."""
        return sorted(s for s, sg in self._assignment.items()
                      if sg == subgroup_id)

    def placement(self) -> Dict[int, int]:
        """shard -> subgroup (a copy)."""
        return dict(self._assignment)

    # ------------------------------------------------------------ identity

    def placement_bytes(self) -> bytes:
        """Canonical serialization of everything routing-relevant.

        Two routers whose maps serialize identically will route every
        key identically — the determinism tests pin this byte-for-byte.
        """
        parts = [struct.pack("<IIqI", self.num_shards, self.vnodes,
                             self.seed, self.version)]
        parts.append(struct.pack("<I", len(self.subgroup_ids)))
        for sg in self.subgroup_ids:
            parts.append(struct.pack("<i", sg))
        for shard in range(self.num_shards):
            parts.append(struct.pack("<Ii", shard, self._assignment[shard]))
        h = hashlib.sha256()
        for point, shard in self._ring:
            h.update(struct.pack("<QI", point, shard))
        parts.append(h.digest())
        return b"".join(parts)

    def digest(self) -> str:
        """sha256 hex of :meth:`placement_bytes` (the audit handle)."""
        return hashlib.sha256(self.placement_bytes()).hexdigest()

    # ----------------------------------------------------------- evolution

    @classmethod
    def derive(cls, num_shards: int, subgroup_ids: Sequence[int],
               seed: int = 0, version: int = 0,
               vnodes: int = 32) -> "ShardMap":
        """The initial map for a freshly built cluster."""
        return cls(num_shards, subgroup_ids, seed=seed, version=version,
                   vnodes=vnodes)

    def rederive(self, view: View,
                 serviceable_ids: Optional[Iterable[int]] = None
                 ) -> "ShardMap":
        """The successor map for a committed membership ``view``.

        Deterministic in ``(self, view)``: every node computes the same
        map with no coordination. ``serviceable_ids`` defaults to the
        subgroups (of this map's original set) that still exist in the
        view with at least one sender; overrides survive iff their
        target is still serviceable. The version is pinned to the view
        id, so maps and epochs stay in lockstep.
        """
        if serviceable_ids is None:
            present = {sg.subgroup_id for sg in view.subgroups if sg.senders}
            serviceable = [sg for sg in self.subgroup_ids if sg in present]
        else:
            serviceable = sorted(set(serviceable_ids))
        if not serviceable:
            raise ValueError("no serviceable subgroup left for the shards")
        overrides = {s: sg for s, sg in self.overrides.items()
                     if sg in serviceable}
        return ShardMap(self.num_shards, serviceable, seed=self.seed,
                        version=view.view_id, vnodes=self.vnodes,
                        overrides=overrides)

    def with_assignment(self, shard: int, subgroup_id: int) -> "ShardMap":
        """A new map pinning ``shard`` to ``subgroup_id`` (rebalance
        hand-off commit point), version bumped by one."""
        overrides = dict(self.overrides)
        overrides[shard] = subgroup_id
        return ShardMap(self.num_shards, self.subgroup_ids, seed=self.seed,
                        version=self.version + 1, vnodes=self.vnodes,
                        overrides=overrides)

    def moved_shards(self, other: "ShardMap") -> List[int]:
        """Shards whose hosting subgroup differs between two maps."""
        if other.num_shards != self.num_shards:
            raise ValueError("maps with different shard counts")
        return sorted(s for s in range(self.num_shards)
                      if self._assignment[s] != other._assignment[s])

    def __repr__(self) -> str:
        return (f"<ShardMap v{self.version} shards={self.num_shards} "
                f"subgroups={list(self.subgroup_ids)} "
                f"digest={self.digest()[:12]}>")

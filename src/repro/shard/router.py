"""The client-facing request router of the sharded service plane.

Clients are **first-class load sources** here — open-loop arrival
processes (repro.workloads.generators.open_loop_client) submit
requests to the router instead of occupying in-group sender slots.
The router:

* maps each request's key to a shard and the shard to its hosting
  subgroup through the installed :class:`~repro.shard.shardmap.ShardMap`;
* holds a **bounded per-shard queue** drained by per-shard worker
  processes that execute requests on the hosting subgroup's gateway
  replica (so a shard's requests retain the subgroup's total order);
* applies **admission control**: a request is rejected with a
  ``retry_after`` hint when the shard's queue is full, or when the
  hosting subgroup's sender pipeline is saturated — the congestion
  signal is the backend-generic
  :meth:`~repro.ordering.base.OrderingEndpoint.congestion` (on Spindle:
  the SST stability counters, since slots stay occupied exactly until
  the slowest member's delivered/received column passes them, §2.3; on
  Paxos: the in-flight proposal fraction). Without this, open-loop
  overload collapses into unbounded queueing; with it, clients see
  honest ``rejected`` outcomes and back off;
* survives **view changes**: at the epoch boundary every worker is
  killed (their waiters died with the old epoch), executing requests
  are re-queued at the front, the map is re-derived for the committed
  view, and fresh workers re-execute idempotently (rid dedup in
  :class:`~repro.shard.service.ShardReplica` makes the replay exactly-
  once even when the original committed before the wedge).

Everything is deterministic in the cluster seed: rids are a plain
counter, queue order is FIFO, and requeues are sorted — chaos scenarios
replay the router byte-identically (tests/test_shard.py).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Generator, List, Optional, Set

from ..sim.sync import Doorbell, Event
from ..sim.units import us
from .service import ShardedKv
from .shardmap import ShardMap

__all__ = ["RouterConfig", "ShardBusy", "RequestOutcome", "ShardRouter"]

_WRITE_OPS = ("put", "delete", "cas")
#: Transaction-plane ops (repro.txn): the payload is a pre-encoded txn
#: record, routed by an explicit shard instead of a key. Settles ride a
#: reserved admission lane — see :meth:`ShardRouter._enqueue`.
_TXN_OPS = ("txn_prepare", "txn_settle")
_OPS = _WRITE_OPS + ("get",) + _TXN_OPS


@dataclass(frozen=True)
class RouterConfig:
    """Admission-control and retry knobs (docs/SHARDING.md)."""

    #: Bounded per-shard queue: submissions beyond this are rejected
    #: with reason "queue_full".
    queue_depth: int = 64
    #: Worker processes draining each shard's queue.
    workers_per_shard: int = 2
    #: Retry-after hint handed to rejected clients.
    retry_after: float = us(100.0)
    #: Seeded jitter fraction on the hint: each rejection hands back
    #: ``retry_after * (1 + U[0, retry_jitter))`` from a router-local
    #: RNG derived from the cluster seed. De-synchronizes thundering-
    #: herd retries (clients rejected in the same instant would
    #: otherwise all come back in the same instant). 0.0 (the default)
    #: draws nothing and reproduces the fixed hint exactly.
    retry_jitter: float = 0.0
    #: Reject new work when the gateway endpoint's congestion() reaches
    #: this fraction (1.0 = only reject when the next propose would
    #: actually block).
    congestion_threshold: float = 1.0
    #: Client-side resubmission budget in :meth:`ShardRouter.request`.
    max_retries: int = 50


class ShardBusy(Exception):
    """Admission control rejected a submission; retry after the hint."""

    def __init__(self, shard: int, reason: str, retry_after: float):
        super().__init__(f"shard {shard} busy ({reason}); "
                         f"retry after {retry_after * 1e6:.0f} us")
        self.shard = shard
        self.reason = reason
        self.retry_after = retry_after


@dataclass
class RequestOutcome:
    """Terminal verdict of one routed request."""

    #: "ok" | "rejected" | "timeout"
    status: str
    #: get: the value (or None); put/delete/cas: the op's boolean.
    value: object = None
    #: Submission attempts (1 = accepted first try).
    attempts: int = 1
    shard: int = -1
    #: True when rid dedup suppressed a replayed retry (the original
    #: already committed; the state transition happened exactly once).
    duplicate: bool = False
    #: On "rejected": the router's (possibly jittered) back-off hint —
    #: how long the last ShardBusy asked the client to wait. Open-loop
    #: clients honor it via ``open_loop_client(max_resubmits=...)``.
    retry_after: float = 0.0


class _RequestState:
    """One in-flight routed request (queued or executing)."""

    __slots__ = ("rid", "op", "key", "value", "expected", "shard",
                 "event", "deadline", "enqueued_at", "attempts")

    def __init__(self, rid: int, op: str, key: bytes, value: bytes,
                 expected: bytes, shard: int, event: Event,
                 deadline: Optional[float]):
        self.rid = rid
        self.op = op
        self.key = key
        self.value = value
        self.expected = expected
        self.shard = shard
        self.event = event
        self.deadline = deadline
        self.enqueued_at = 0.0
        self.attempts = 1


@dataclass
class RouterCounters:
    """Plain-int router accounting, mirrored into ``spindle_router_*``
    metrics by a pull collector (zero hot-path cost)."""

    accepted: int = 0
    completed: int = 0
    rejected: Dict[str, int] = field(default_factory=dict)
    client_gaveup: int = 0
    timeouts: int = 0
    reroutes: int = 0
    gateway_changes: int = 0
    epoch_retries: int = 0
    wedge_aborts: int = 0
    stale_reads: int = 0
    #: Settle messages admitted through the reserved lane.
    settle_reserved: int = 0

    def to_dict(self) -> dict:
        return {
            "accepted": self.accepted,
            "completed": self.completed,
            "rejected": dict(sorted(self.rejected.items())),
            "client_gaveup": self.client_gaveup,
            "timeouts": self.timeouts,
            "reroutes": self.reroutes,
            "gateway_changes": self.gateway_changes,
            "epoch_retries": self.epoch_retries,
            "wedge_aborts": self.wedge_aborts,
            "stale_reads": self.stale_reads,
            "settle_reserved": self.settle_reserved,
        }


class ShardRouter:
    """Routes client requests onto per-shard subgroup total orders."""

    def __init__(self, cluster, service: ShardedKv, shard_map: ShardMap,
                 config: Optional[RouterConfig] = None):
        self.cluster = cluster
        self.sim = cluster.sim
        self.service = service
        self.map = shard_map
        self.config = config if config is not None else RouterConfig()
        self.counters = RouterCounters()
        # Retry-jitter RNG: router-local and seeded from the cluster
        # seed, so enabling retry_jitter perturbs no other consumer's
        # random stream and replays are exact.
        self._retry_rng = random.Random(cluster.seed ^ 0x52455452)
        n = shard_map.num_shards
        self._queues: List[Deque[_RequestState]] = [deque() for _ in range(n)]
        self._bells = [Doorbell(cluster.sim, name=f"shard{s}.router")
                       for s in range(n)]
        self._executing: List[List[_RequestState]] = [[] for _ in range(n)]
        self._workers: List[list] = [[] for _ in range(n)]
        self._frozen: Set[int] = set()
        self._epoch_id = 0
        self._rid_counter = 0
        self._started = False
        self._last_gateways: Dict[int, int] = {}
        self._wait_timers = {}
        self._service_timers = {}

    # ------------------------------------------------------------ lifecycle

    def start(self) -> "ShardRouter":
        """Spawn workers and register the epoch hooks (idempotent-ish:
        call once, after ``cluster.build()``)."""
        if self._started:
            raise RuntimeError("router already started")
        self._started = True
        self.cluster.on_epoch_end.append(self._on_epoch_end)
        self.cluster.on_view_installed.append(self._on_view_installed)
        self._snapshot_gateways()
        self._register_metrics()
        self._spawn_workers()
        return self

    def _spawn_workers(self) -> None:
        epoch = self._epoch_id
        for shard in range(self.map.num_shards):
            self._workers[shard] = [
                self.sim.spawn(
                    self._worker(shard, epoch),
                    name=f"router.s{shard}.w{w}.e{epoch}")
                for w in range(self.config.workers_per_shard)
            ]
            self._bells[shard].ring()

    # --------------------------------------------------------------- client

    def request(self, op: str, key: bytes, value: bytes = b"",
                expected: bytes = b"",
                deadline: Optional[float] = None,
                shard: Optional[int] = None) -> Generator:
        """Client generator: submit with idempotent retry/backoff.

        Allocates the request id once — every resubmission (admission
        reject, view-change requeue) reuses it, so the state transition
        is applied at most once no matter how the retries land.
        Returns a :class:`RequestOutcome`.

        Txn ops ("txn_prepare"/"txn_settle") pass the encoded record as
        ``value`` and route by explicit ``shard`` (a txn record may
        touch many keys of one shard); their exactly-once contract is
        txn-id verdict memory on the replica rather than rid dedup.
        """
        if op not in _OPS:
            raise ValueError(f"unknown router op {op!r}")
        rid = 0
        if op in _WRITE_OPS:
            self._rid_counter += 1
            rid = self._rid_counter
        if shard is None:
            shard = self.map.shard_of(key)
        elif op not in _TXN_OPS:
            raise ValueError("explicit shard routing is txn-only")
        state = _RequestState(
            rid, op, key, value, expected, shard,
            Event(self.sim, name=f"router.req{rid or 'g'}.{shard}"),
            deadline)
        cfg = self.config
        while True:
            try:
                self._enqueue(state)
            except ShardBusy as exc:
                state.attempts += 1
                if state.attempts > cfg.max_retries or (
                        state.deadline is not None
                        and self.sim.now + exc.retry_after > state.deadline):
                    self.counters.client_gaveup += 1
                    return RequestOutcome("rejected", None,
                                          state.attempts, shard,
                                          retry_after=exc.retry_after)
                yield exc.retry_after
                continue
            outcome = yield state.event
            return outcome

    def stale_read(self, key: bytes):
        """Optional fast path: read the gateway replica's local state
        without a fence. Sequentially consistent per shard (may lag the
        log tip); never queues, never rejects."""
        self.counters.stale_reads += 1
        sg = self.map.subgroup_of_key(key)
        return self.service.gateway_replica(sg).read(key)

    # ------------------------------------------------------------ admission

    def congestion(self, shard: int) -> float:
        """Saturation of the hosting subgroup's gateway in [0, 1], via
        :meth:`~repro.ordering.base.OrderingEndpoint.congestion` — ring
        occupancy on Spindle, in-flight proposal count on quorum
        backends, 1.0 when wedged. The router never reaches into SST
        internals, so admission control works on any backend."""
        sg = self.map.subgroup_of(shard)
        try:
            node = self.service.gateway(sg)
        except (RuntimeError, KeyError):
            return 1.0
        return self.cluster.groups[node].subgroup(sg).congestion()

    def _enqueue(self, state: _RequestState) -> None:
        if not self._started:
            raise RuntimeError("router not started")
        cfg = self.config
        shard = state.shard
        queue = self._queues[shard]
        if state.op == "txn_settle":
            # Reserved lane: a prepared-but-unsettled txn pins keys on
            # the replica, so its settle must never be starved by the
            # very backlog those pins create — skip the queue bound and
            # the congestion check (settles are bounded by in-flight
            # prepares, which *did* pass admission).
            state.enqueued_at = self.sim.now
            queue.append(state)
            self.counters.accepted += 1
            self.counters.settle_reserved += 1
            self._bells[shard].ring()
            return
        if len(queue) >= cfg.queue_depth:
            self._reject(shard, "queue_full")
        if shard not in self._frozen:
            # Frozen shards (mid-rebalance) queue without the window
            # check: the old subgroup's window is irrelevant, the queue
            # bound alone protects the router.
            if self.congestion(shard) >= cfg.congestion_threshold:
                self._reject(shard, "window_saturated")
        state.enqueued_at = self.sim.now
        queue.append(state)
        self.counters.accepted += 1
        self._bells[shard].ring()

    def _reject(self, shard: int, reason: str) -> None:
        counts = self.counters.rejected
        counts[reason] = counts.get(reason, 0) + 1
        hint = self.config.retry_after
        if self.config.retry_jitter > 0.0:
            hint *= 1.0 + self.config.retry_jitter * self._retry_rng.random()
        raise ShardBusy(shard, reason, hint)

    # -------------------------------------------------------------- workers

    def _worker(self, shard: int, epoch: int):
        queue = self._queues[shard]
        bell = self._bells[shard]
        while True:
            if self._epoch_id != epoch:
                return
            if shard in self._frozen:
                # A frozen shard (mid-rebalance) still executes settle
                # messages: the migration's prepared-txn drain barrier
                # waits on exactly those, so parking them with the rest
                # of the queue would deadlock the hand-off.
                state = self._pop_settle(queue)
                if state is None:
                    yield bell.wait()
                    continue
            elif not queue:
                yield bell.wait()
                continue
            else:
                state = queue.popleft()
            now = self.sim.now
            if state.deadline is not None and now > state.deadline:
                self.counters.timeouts += 1
                state.event.trigger(RequestOutcome(
                    "timeout", None, state.attempts, shard))
                continue
            wait_timer = self._wait_timers.get(shard)
            if wait_timer is not None:
                wait_timer.add(now - state.enqueued_at)
            self._executing[shard].append(state)
            try:
                result = yield from self._execute(shard, state)
            except RuntimeError:
                # The epoch wedged (view change) or the gateway died
                # under us: leave the request in _executing for the
                # epoch-end requeue and let this worker die — the
                # successor epoch's workers replay it idempotently.
                self.counters.wedge_aborts += 1
                return
            self._executing[shard].remove(state)
            service_timer = self._service_timers.get(shard)
            if service_timer is not None:
                service_timer.add(self.sim.now - now)
            self.counters.completed += 1
            state.event.trigger(result)

    def _pop_settle(self, queue: Deque[_RequestState]
                    ) -> Optional[_RequestState]:
        """Remove and return the oldest queued settle, if any."""
        for state in queue:
            if state.op == "txn_settle":
                queue.remove(state)
                return state
        return None

    def _execute(self, shard: int, state: _RequestState):
        sg = self.map.subgroup_of(shard)
        replica = self.service.gateway_replica(sg)
        duplicate = False
        if state.op in _TXN_OPS:
            out = yield from replica.txn_req(state.value)
            return RequestOutcome("ok", out, state.attempts, shard)
        if state.op == "put":
            out = yield from replica.put_req(state.rid, state.key,
                                             state.value)
        elif state.op == "delete":
            out = yield from replica.delete_req(state.rid, state.key)
        elif state.op == "cas":
            out = yield from replica.cas_req(state.rid, state.key,
                                             state.expected, state.value)
        else:  # "get": linearizable read through the shard's log
            out = yield from replica.sync_read_req(state.key)
        if out == "duplicate":
            duplicate = True
            out = None
        return RequestOutcome("ok", out, state.attempts, shard,
                              duplicate=duplicate)

    # ------------------------------------------------------- epoch handling

    def _on_epoch_end(self, _old_view, _old_groups) -> None:
        """The old epoch is dying: kill every worker (their waiters die
        with the epoch) and push executing requests back to the front of
        their queues, oldest first, for idempotent re-execution."""
        self._epoch_id += 1
        for shard in range(self.map.num_shards):
            for proc in self._workers[shard]:
                proc.kill()
            self._workers[shard] = []
            stuck = self._executing[shard]
            self._executing[shard] = []
            for state in sorted(stuck, key=lambda s: (s.enqueued_at, s.rid),
                                reverse=True):
                state.attempts += 1
                self.counters.epoch_retries += 1
                self._queues[shard].appendleft(state)

    def _on_view_installed(self, view) -> None:
        """A committed view was installed: re-derive the map, rebind
        the service, count re-routes, and spawn the epoch's workers."""
        if view.view_id == 0:
            return  # initial build; start() handles it
        old_map = self.map
        new_map = old_map.rederive(view)
        self.service.rebind(view)
        moved = old_map.moved_shards(new_map)
        for shard in moved:
            self.counters.reroutes += (
                len(self._queues[shard]) + len(self._executing[shard])) or 1
        self.map = new_map
        old_gateways = dict(self._last_gateways)
        self._snapshot_gateways()
        for sg, node in self._last_gateways.items():
            if sg in old_gateways and old_gateways[sg] != node:
                self.counters.gateway_changes += 1
        self._spawn_workers()

    def _snapshot_gateways(self) -> None:
        self._last_gateways = {}
        for sg in self.map.subgroup_ids:
            try:
                self._last_gateways[sg] = self.service.gateway(sg)
            except (RuntimeError, KeyError):
                continue

    # ------------------------------------------------------------ rebalance

    def freeze(self, shard: int) -> None:
        """Stop executing (not accepting) requests for one shard —
        rebalance hand-off protocol, docs/SHARDING.md."""
        self._frozen.add(shard)

    def unfreeze(self, shard: int) -> None:
        self._frozen.discard(shard)
        self._bells[shard].ring()

    def drain_executing(self, shard: int):
        """Generator: wait until no request of this shard is mid-flight
        on a replica (queued requests stay queued while frozen)."""
        while self._executing[shard]:
            yield us(10.0)

    def install_map(self, new_map: ShardMap) -> None:
        """Atomically swap the placement (rebalance commit point)."""
        moved = self.map.moved_shards(new_map)
        for shard in moved:
            self.counters.reroutes += (
                len(self._queues[shard]) + len(self._executing[shard])) or 1
        self.map = new_map
        for bell in self._bells:
            bell.ring()

    # -------------------------------------------------------------- queries

    def queue_depth(self, shard: int) -> int:
        return len(self._queues[shard])

    def inflight(self, shard: int) -> int:
        return len(self._queues[shard]) + len(self._executing[shard])

    # -------------------------------------------------------------- metrics

    def _register_metrics(self) -> None:
        registry = self.cluster.metrics
        if not registry.enabled:
            return
        for shard in range(self.map.num_shards):
            scope = registry.scoped(shard=shard)
            self._wait_timers[shard] = scope.timer(
                "spindle_router_queue_wait_seconds",
                "time requests spent in the shard queue")
            self._service_timers[shard] = scope.timer(
                "spindle_router_service_seconds",
                "time requests spent executing on the subgroup")

        def mirror() -> None:
            c = self.counters
            registry.counter("spindle_router_requests_total",
                             "requests admitted").set_to(c.accepted)
            registry.counter("spindle_router_completed_total",
                             "requests completed").set_to(c.completed)
            registry.counter("spindle_router_timeouts_total",
                             "requests expired in queue").set_to(c.timeouts)
            for reason in ("queue_full", "window_saturated"):
                registry.counter(
                    "spindle_router_rejected_total",
                    "admission-control rejects, by reason",
                    reason=reason).set_to(c.rejected.get(reason, 0))
            registry.counter("spindle_router_reroutes_total",
                             "requests re-routed by shard moves"
                             ).set_to(c.reroutes)
            registry.counter("spindle_router_epoch_retries_total",
                             "requests replayed across a view change"
                             ).set_to(c.epoch_retries)
            registry.counter("spindle_router_stale_reads_total",
                             "stale fast-path reads served"
                             ).set_to(c.stale_reads)
            registry.counter("spindle_router_settle_reserved_total",
                             "txn settles admitted via the reserved lane"
                             ).set_to(c.settle_reserved)
            duplicates = sum(r.duplicates_skipped
                             for r in self.service.replicas.values())
            registry.counter("spindle_router_duplicates_total",
                             "rid-deduplicated replays").set_to(duplicates)
            registry.gauge("spindle_shard_map_version",
                           "installed shard-map version").set(self.map.version)
            for shard in range(self.map.num_shards):
                registry.gauge(
                    "spindle_router_queue_depth",
                    "queued requests per shard",
                    shard=shard).set(len(self._queues[shard]))

        registry.add_collector(mirror)

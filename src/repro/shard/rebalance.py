"""Live shard migration and the cross-shard checksum verifier.

Moving a shard between subgroups while clients keep arriving is the
rebalancing half of the sharded service plane (docs/SHARDING.md). The
hand-off reuses the recovery plane's chunked, CRC-validated
:class:`~repro.recovery.transfer.StateTransfer` (docs/RECOVERY.md) so
migration traffic rides the same simulated fabric — and the same fault
plane — as protocol traffic.

Hand-off protocol (one migration = one :class:`RebalanceRecord`):

1. **freeze** the shard at the router (queued requests wait; nothing
   new executes against the source subgroup);
2. **drain** requests already executing on the source;
3. **fence** the source subgroup's total order, so every replica's
   state for the shard is identical and final;
4. **snapshot** the shard on the source gateway, record its canonical
   checksum, and **transfer** the encoded entries chunk-by-chunk to the
   target subgroup's gateway (every live source member can serve the
   payload — mid-transfer source-member crashes fail over);
5. **replay** the entries through the *target* subgroup's multicast
   (rid 0: idempotent by construction), so every target replica
   installs the shard through its own total order;
6. verify **checksum agreement**: each target replica's shard checksum
   must equal the source's pre-transfer checksum;
7. **commit**: install the updated map (router re-routes the queued
   requests), unfreeze, and delete the source's copy.

The map flip happens *before* the source delete, so a stale read can
never observe the window where neither side holds the shard.

:class:`ShardVerifier` is the rebalance-plane counterpart of
``recovery/verify.py``: at quiescence it audits (a) checksum agreement
across every hosting replica of every shard and (b) placement
conformance — no replica holds a key whose shard lives elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import List, Optional

from ..apps.kvstore import OP_PUT, KvCommand
from ..recovery.transfer import (
    StateTransfer,
    TransferConfig,
    decode_entries,
    encode_entries,
)
from .service import unframe_request

__all__ = ["RebalanceRecord", "Rebalancer", "ShardVerifier",
           "ShardAuditReport"]


@dataclass
class RebalanceRecord:
    """Audit record of one shard migration."""

    shard: int
    source_subgroup: int
    target_subgroup: int
    ok: bool = False
    keys_moved: int = 0
    bytes_moved: int = 0
    chunks: int = 0
    crc_ok: bool = False
    checksum_agree: bool = False
    source_checksum: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0
    map_version: int = -1
    #: Poll rounds spent waiting out prepared-but-unsettled txns
    #: before the fence (step 2b, docs/TRANSACTIONS.md).
    prepared_waits: int = 0
    error: Optional[str] = None
    transfer: Optional[dict] = None

    def to_dict(self) -> dict:
        return {
            "shard": self.shard,
            "source_subgroup": self.source_subgroup,
            "target_subgroup": self.target_subgroup,
            "ok": self.ok,
            "keys_moved": self.keys_moved,
            "bytes_moved": self.bytes_moved,
            "chunks": self.chunks,
            "crc_ok": self.crc_ok,
            "checksum_agree": self.checksum_agree,
            "source_checksum": self.source_checksum,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "map_version": self.map_version,
            "prepared_waits": self.prepared_waits,
            "error": self.error,
            "transfer": self.transfer,
        }


class Rebalancer:
    """Executes live shard migrations against a started router."""

    def __init__(self, router, transfer_config: Optional[TransferConfig] = None):
        self.router = router
        self.cluster = router.cluster
        self.service = router.service
        self.transfer_config = (transfer_config if transfer_config is not None
                                else TransferConfig(chunk_size=1024))
        #: Seeded off the cluster seed: transfer ids (and hence chunk
        #: frames and trace fingerprints) replay deterministically.
        self.rng = Random(self.cluster.seed * 1_000_003 + 77)
        self.records: List[RebalanceRecord] = []
        #: Sim-time budget for non-gateway target replicas to deliver
        #: the replayed hand-off writes before step 6 declares a
        #: divergence (delivery skew, see migrate).
        self.settle_timeout: float = 2e-3
        self.settle_poll: float = 25e-6

    # ------------------------------------------------------------ migration

    def migrate(self, shard: int, target_subgroup: int):
        """Generator: move one shard to ``target_subgroup`` live.

        Drive from a simulated process::

            cluster.spawn_sender(rebalancer.migrate(3, target_subgroup=1))

        Returns the :class:`RebalanceRecord` (also appended to
        ``self.records``); failures unfreeze and leave placement
        untouched — the shard stays fully served by the source.
        """
        router = self.router
        service = self.service
        source_sg = router.map.subgroup_of(shard)
        record = RebalanceRecord(shard=shard, source_subgroup=source_sg,
                                 target_subgroup=target_subgroup,
                                 started_at=self.cluster.sim.now)
        self.records.append(record)
        if target_subgroup not in router.map.subgroup_ids:
            record.error = f"target subgroup {target_subgroup} unserviceable"
            record.finished_at = self.cluster.sim.now
            return record
        if target_subgroup == source_sg:
            record.ok = True
            record.checksum_agree = True
            record.crc_ok = True
            record.finished_at = self.cluster.sim.now
            return record

        router.freeze(shard)
        try:
            # 2. drain requests mid-flight on the source subgroup.
            yield from router.drain_executing(shard)
            # 2b. drain prepared-but-unsettled txns touching this shard:
            #     their buffered writes live outside `data`, so a
            #     snapshot taken now would strand them on the source.
            #     Settles still flow while frozen (the router's reserved
            #     lane executes them through the freeze), so this
            #     terminates; record how long we waited for the audit.
            source_rep = service.gateway_replica(source_sg)
            while source_rep.prepared_txns_touching(shard, router.map):
                record.prepared_waits += 1
                yield self.settle_poll
            # 3. fence: all source replicas reach identical shard state.
            yield from source_rep.fence_req()
            # 4. snapshot + checksum on the source, then chunked pull
            #    into the target gateway. Any live source member can
            #    serve the (post-fence identical) payload.
            record.source_checksum = service.shard_checksum(
                shard, router.map)
            live = set(self.cluster.live_nodes())
            sources = [n for n in self._members_of(source_sg) if n in live]
            dest = service.gateway(target_subgroup)

            def fetch(source_node: int) -> Optional[bytes]:
                try:
                    entries = service.shard_snapshot_entries(
                        shard, router.map, node_id=source_node)
                except KeyError:
                    return None
                return encode_entries(entries)

            transfer = StateTransfer(
                self.cluster.sim, self.cluster.fabric, dest=dest,
                sources=sources, fetch_payload=fetch,
                config=self.transfer_config, rng=self.rng)
            outcome = yield from transfer.run()
            record.transfer = outcome.to_dict()
            record.crc_ok = outcome.checksum_ok
            record.chunks = outcome.chunks
            record.bytes_moved = outcome.bytes_transferred
            if not outcome.ok:
                record.error = f"transfer failed: {outcome.error}"
                return record

            # 5. replay through the target subgroup's total order so
            #    every target replica installs the shard identically.
            entries = decode_entries(outcome.data)
            target_rep = service.gateway_replica(target_subgroup)
            moved_keys: List[bytes] = []
            for _idx, _sender, payload in entries:
                _rid, inner = unframe_request(payload)
                op, key, _expected, value = KvCommand.decode(inner)
                if op != OP_PUT:  # snapshot entries are PUTs by contract
                    record.error = f"unexpected op {op} in hand-off stream"
                    return record
                yield from target_rep.put_req(0, key, value)
                moved_keys.append(key)
            record.keys_moved = len(moved_keys)

            # 6. checksum agreement across every live target replica.
            #    put_req returns at the *gateway's* delivery; the other
            #    target members deliver the same total order a few
            #    microseconds later (more under jitter), so poll with a
            #    bounded sim-time budget before declaring divergence.
            flipped = router.map.with_assignment(shard, target_subgroup)
            targets = [n for n in self._members_of(target_subgroup)
                       if n in live]
            settle_deadline = self.cluster.sim.now + self.settle_timeout
            while True:
                sums = {n: service.shard_checksum(shard, flipped, node_id=n)
                        for n in targets}
                lagging = {n: got for n, got in sums.items()
                           if got != record.source_checksum}
                if not lagging:
                    record.checksum_agree = True
                    break
                if self.cluster.sim.now >= settle_deadline:
                    node, got = sorted(lagging.items())[0]
                    record.error = (
                        f"checksum mismatch on node {node}: "
                        f"{got:#x} != {record.source_checksum:#x}")
                    return record
                yield self.settle_poll

            # 7. commit: flip the map *before* deleting the source copy
            #    (no window where neither side serves the shard), then
            #    unfreeze so queued requests drain against the target.
            router.install_map(flipped)
            record.map_version = flipped.version
            router.unfreeze(shard)
            for key in moved_keys:
                yield from source_rep.delete_req(0, key)
            record.ok = True
            return record
        finally:
            # Failures (and success) leave the shard unfrozen: a failed
            # migration keeps the shard fully served by the source.
            router.unfreeze(shard)
            record.finished_at = self.cluster.sim.now

    def _members_of(self, subgroup_id: int) -> List[int]:
        for spec in self.cluster.view.subgroups:
            if spec.subgroup_id == subgroup_id:
                # Gateway-first: the fenced gateway is the freshest.
                gateway = self.service.gateway(subgroup_id)
                rest = [n for n in spec.members if n != gateway]
                return [gateway] + rest
        return []


# ===========================================================================
# Cross-shard checksum verifier
# ===========================================================================


@dataclass
class ShardAuditReport:
    """Verdict of one :meth:`ShardVerifier.check` pass."""

    ok: bool = True
    violations: List[str] = field(default_factory=list)
    shards_checked: int = 0
    replicas_checked: int = 0
    keys_checked: int = 0

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "violations": list(self.violations),
            "shards_checked": self.shards_checked,
            "replicas_checked": self.replicas_checked,
            "keys_checked": self.keys_checked,
        }


class ShardVerifier:
    """Audits shard-plane invariants at quiescence.

    * **Replica agreement** — every live replica of a shard's hosting
      subgroup reports the same shard checksum (crc32 over the
      canonical item encoding, process-stable).
    * **Placement conformance** — no live replica holds a key whose
      shard is mapped to a *different* subgroup (a failed migration
      delete, or routing through a stale map, shows up here).

    Call between epochs / after ``run_to_quiescence`` only: mid-flight
    multicasts legitimately make replicas transiently unequal.
    """

    def __init__(self, router):
        self.router = router
        self.service = router.service
        self.cluster = router.cluster

    def check(self) -> ShardAuditReport:
        report = ShardAuditReport()
        shard_map = self.router.map
        live = set(self.cluster.live_nodes())
        view = self.cluster.view
        specs = {sg.subgroup_id: sg for sg in view.subgroups}
        # -- replica agreement per shard --------------------------------
        for shard in range(shard_map.num_shards):
            sg = shard_map.subgroup_of(shard)
            spec = specs.get(sg)
            if spec is None:
                report.violations.append(
                    f"shard {shard} mapped to missing subgroup {sg}")
                continue
            report.shards_checked += 1
            sums = {}
            for node in spec.members:
                if node not in live:
                    continue
                if (sg, node) not in self.service.replicas:
                    continue
                sums[node] = self.service.shard_checksum(
                    shard, shard_map, node_id=node)
            if len(set(sums.values())) > 1:
                report.violations.append(
                    f"shard {shard} checksums diverge on sg{sg}: "
                    f"{ {n: hex(c) for n, c in sorted(sums.items())} }")
        # -- placement conformance --------------------------------------
        for (sg, node), replica in sorted(self.service.replicas.items()):
            if node not in live or sg not in specs:
                continue
            report.replicas_checked += 1
            for key in sorted(replica.data):
                report.keys_checked += 1
                owner_sg = shard_map.subgroup_of_key(key)
                if owner_sg != sg:
                    report.violations.append(
                        f"node {node} sg{sg} holds stray key {key!r} "
                        f"(shard {shard_map.shard_of(key)} lives on "
                        f"sg{owner_sg})")
        report.ok = not report.violations
        return report

"""The sharded service plane (docs/SHARDING.md).

Layers a client-facing, consistent-hash-partitioned KV service over the
per-subgroup atomic multicast: ``shardmap`` (keys -> shards ->
subgroups, versioned against the membership epoch), ``router``
(bounded queues, SST-window backpressure, idempotent re-route across
view changes), ``service`` (per-shard state-machine replication with
request-id dedup), and ``rebalance`` (live chunked shard migration +
the cross-shard checksum verifier).

Entry point::

    cluster = Cluster(num_nodes=8)
    cluster.add_shards(num_shards=4, replication=2)
    cluster.build()
    router = cluster.router()
    outcome = yield from router.request("put", b"key", b"value")
"""

from .rebalance import Rebalancer, RebalanceRecord, ShardAuditReport, ShardVerifier
from .router import RequestOutcome, RouterConfig, ShardBusy, ShardRouter
from .service import ShardedKv, ShardReplica, frame_request, unframe_request
from .shardmap import ShardMap, key_hash

__all__ = [
    "ShardMap",
    "key_hash",
    "ShardedKv",
    "ShardReplica",
    "frame_request",
    "unframe_request",
    "RouterConfig",
    "ShardBusy",
    "RequestOutcome",
    "ShardRouter",
    "Rebalancer",
    "RebalanceRecord",
    "ShardVerifier",
    "ShardAuditReport",
    "build_shard_plane",
]


def build_shard_plane(cluster, config=None, transfer_config=None):
    """Assemble map + service + router + rebalancer for a built cluster
    that declared shards via ``Cluster.add_shards``. Returns the started
    :class:`ShardRouter` (service/map/rebalancer hang off it)."""
    plan = getattr(cluster, "_shard_plan", None)
    if plan is None:
        raise RuntimeError(
            "cluster has no shard plan; call add_shards() before build()")
    shard_map = ShardMap.derive(
        plan["num_shards"], plan["subgroup_ids"], seed=cluster.seed,
        version=cluster.view.view_id if cluster.view is not None else 0)
    service = ShardedKv(cluster, plan["subgroup_ids"]).attach()
    router = ShardRouter(cluster, service, shard_map, config).start()
    router.rebalancer = Rebalancer(router, transfer_config)
    router.verifier = ShardVerifier(router)
    return router

"""spindle-check: the whole-program analysis driver (docs/CHECK.md).

Where ``spindle-repro lint`` runs four *intraprocedural* passes file by
file, ``spindle-repro check`` additionally builds one :class:`~repro.
analysis.lint.callgraph.Program` over every target file and runs the two
*interprocedural* passes on it:

* :class:`~repro.analysis.lint.lockset.LocksetPass` — infers which Lock
  guards writes to each shared attribute and flags writes reachable from
  concurrency roots with an empty or inconsistent lockset (paper §3.4);
* :class:`~repro.analysis.lint.determinism.DeterminismPass` — forbids
  wall-clock reads, unseeded randomness, ``id()``-keyed control flow,
  raw set iteration and order-sensitive float accumulation on any path
  reachable from simulation event handlers.

Suppressions and baselines reuse the spindle-lint machinery verbatim
(``# spindle-lint: allow[rule]`` comments, line-free fingerprints), but
the check baseline lives in its own file so the two tools can be
re-baselined independently. Unlike the lint runner, the check runner
also reports *stale* baseline entries — fingerprints that no longer
match any finding — so fixed findings cannot linger as silent holes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .callgraph import Program, build_program
from .determinism import DeterminismPass
from .findings import RULES, Finding, load_baseline, parse_suppressions
from .lockset import LocksetPass
from .passes import ALL_PASSES
from .runner import _display_path, iter_python_files, lint_source

__all__ = [
    "CheckReport",
    "check_paths",
    "check_sources",
    "format_check_report",
    "check_report_dict",
    "check_report_sarif",
    "DEFAULT_CHECK_BASELINE_NAME",
]

#: Conventional checked-in baseline location for ``check`` (repo root).
#: Separate from ``.spindle-lint-baseline`` so the two tools can be
#: re-baselined independently.
DEFAULT_CHECK_BASELINE_NAME = ".spindle-check-baseline"


@dataclass
class CheckReport:
    """Outcome of one ``spindle-repro check`` run."""

    findings: List[Finding] = field(default_factory=list)   # new findings
    baselined: List[Finding] = field(default_factory=list)  # known, ignored
    suppressed: int = 0                                     # inline allows
    #: Baseline fingerprints that matched no finding this run: the
    #: underlying issue was fixed (or the symbol moved) and the entry
    #: should be deleted. Reported, not fatal — a stale entry hides
    #: nothing by itself, but left to rot it can mask a regression that
    #: happens to land on the same fingerprint.
    stale_baseline: List[str] = field(default_factory=list)
    files_scanned: int = 0
    modules_analyzed: int = 0
    functions_analyzed: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors


def _program_passes(select: Optional[Iterable[str]]):
    """The interprocedural passes, optionally filtered by pass name."""
    passes = [LocksetPass(), DeterminismPass()]
    if select is None:
        return passes
    wanted = set(select)
    return [p for p in passes if p.name in wanted]


def check_sources(
    sources: List[Tuple[str, str]],
    select: Optional[Iterable[str]] = None,
    baseline: Optional[Set[str]] = None,
    include_lint: bool = True,
) -> CheckReport:
    """Run spindle-check over in-memory ``(display_path, source)`` pairs.

    Unit tests use this directly; :func:`check_paths` reads files and
    delegates here. ``select`` filters by *pass* name over the union of
    the four lint passes and the two program passes; with
    ``include_lint=False`` only the program passes run.
    """
    baseline = set(baseline or ())
    report = CheckReport(files_scanned=len(sources))

    lint_select: Optional[Set[str]] = None
    if select is not None:
        program_names = {"lockset", "determinism"}
        known = program_names | {p.name for p in ALL_PASSES}
        unknown = set(select) - known
        if unknown:
            raise ValueError(
                f"unknown check pass(es): {sorted(unknown)}; "
                f"available: {sorted(known)}")
        lint_select = set(select) - program_names

    suppressions: Dict[str, Dict[int, Set[str]]] = {}
    raw: List[Finding] = []

    # Per-file intraprocedural passes (same four as spindle-lint), run
    # without suppression/baseline filtering — filtering happens once,
    # below, uniformly with the program findings.
    for display, source in sources:
        suppressions[display] = parse_suppressions(source.splitlines())
        if not include_lint or (lint_select is not None and not lint_select):
            # still surface syntax errors even when lint passes are off
            try:
                ast.parse(source, filename=display)
            except SyntaxError as exc:
                report.errors.append(f"{display}: syntax error: {exc}")
            continue
        file_report = lint_source(source, path=display,
                                  select=sorted(lint_select)
                                  if lint_select is not None else None)
        raw.extend(file_report.findings)
        report.errors.extend(file_report.errors)

    # Whole-program interprocedural passes over one shared Program.
    program: Program = build_program(sources)
    report.modules_analyzed = len(program.modules)
    report.functions_analyzed = len(program.functions)
    for program_pass in _program_passes(select):
        raw.extend(program_pass.run_program(program))

    matched: Set[str] = set()
    for finding in raw:
        allowed = suppressions.get(finding.path, {}).get(finding.line, set())
        if finding.rule in allowed or "all" in allowed:
            report.suppressed += 1
        elif finding.fingerprint in baseline:
            matched.add(finding.fingerprint)
            report.baselined.append(finding)
        else:
            report.findings.append(finding)
    report.stale_baseline = sorted(baseline - matched)
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    report.baselined.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report


def check_paths(
    paths: Iterable[str],
    select: Optional[Iterable[str]] = None,
    baseline: Optional[Set[str]] = None,
    baseline_path: Optional[str] = None,
    root: Optional[str] = None,
    include_lint: bool = True,
) -> CheckReport:
    """Run spindle-check over files and/or directory trees."""
    if baseline is None and baseline_path is not None:
        with open(baseline_path, "r", encoding="utf-8") as fh:
            baseline = load_baseline(fh.read())
    sources: List[Tuple[str, str]] = []
    errors: List[str] = []
    scanned = 0
    for path in iter_python_files(paths):
        scanned += 1
        try:
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            errors.append(f"{path}: {exc}")
            continue
        sources.append((_display_path(path, root), source))
    report = check_sources(sources, select=select, baseline=baseline,
                           include_lint=include_lint)
    report.files_scanned = scanned
    report.errors = errors + report.errors
    return report


# ------------------------------------------------------------------ output


def format_check_report(report: CheckReport, verbose: bool = False) -> str:
    """Compiler-style text output: one finding per line, then a summary."""
    lines: List[str] = []
    for finding in report.findings:
        lines.append(finding.render())
    if verbose:
        for finding in report.baselined:
            lines.append(f"{finding.render()}  [baselined]")
    for error in report.errors:
        lines.append(f"error: {error}")
    for fingerprint in report.stale_baseline:
        lines.append(f"warning: stale baseline entry (no longer matches "
                     f"any finding): {fingerprint}")
    lines.append(
        f"spindle-check: {len(report.findings)} finding(s), "
        f"{len(report.baselined)} baselined, {report.suppressed} "
        f"suppressed, {len(report.stale_baseline)} stale baseline "
        f"entr(ies) | {report.files_scanned} file(s), "
        f"{report.modules_analyzed} module(s), "
        f"{report.functions_analyzed} function(s)"
    )
    return "\n".join(lines)


def check_report_dict(report: CheckReport) -> Dict[str, object]:
    """JSON-ready form (``spindle-repro check --format json``)."""
    return {
        "tool": "spindle-check",
        "ok": report.ok,
        "findings": [f.to_dict() for f in report.findings],
        "baselined": [f.to_dict() for f in report.baselined],
        "suppressed": report.suppressed,
        "stale_baseline": list(report.stale_baseline),
        "errors": list(report.errors),
        "files_scanned": report.files_scanned,
        "modules_analyzed": report.modules_analyzed,
        "functions_analyzed": report.functions_analyzed,
    }


def check_report_sarif(report: CheckReport) -> Dict[str, object]:
    """Minimal SARIF 2.1.0 document (one run, one result per finding).

    Enough structure for code-scanning uploads and editor SARIF
    viewers: rule catalog with descriptions, physical locations with
    1-based columns, and the spindle fingerprint as a partial
    fingerprint so result matching survives line churn.
    """
    used = sorted({f.rule for f in report.findings}
                  | {f.rule for f in report.baselined})
    rules = [
        {
            "id": rule,
            "shortDescription": {"text": RULES[rule][1]},
            "properties": {"pass": RULES[rule][0]},
        }
        for rule in used if rule in RULES
    ]
    results = [
        {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f"{f.message} (in {f.symbol})"},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path},
                    "region": {"startLine": f.line,
                               "startColumn": f.col + 1},
                },
            }],
            "partialFingerprints": {"spindleCheck/v1": f.fingerprint},
        }
        for f in report.findings
    ]
    return {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "spindle-check",
                "informationUri": "docs/CHECK.md",
                "rules": rules,
            }},
            "results": results,
        }],
    }

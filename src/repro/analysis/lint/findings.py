"""Finding model, inline suppressions, and the checked-in baseline.

A :class:`Finding` is one rule violation at one source location. Its
*fingerprint* deliberately omits the line number so that unrelated edits
above a pre-existing finding do not churn the baseline file.

Suppressions: append ``# spindle-lint: allow[rule-name]`` (or a
comma-separated list of rule names) to the offending line, or place it
alone on the line directly above. Suppressing is a statement that a
human checked the invariant by hand — say why in a nearby comment.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set

__all__ = ["RULES", "Finding", "parse_suppressions", "load_baseline",
           "format_baseline"]

#: Catalog of rules: rule-name -> (pass name, one-line description).
RULES: Dict[str, tuple] = {
    "sst-monotonic-write": (
        "monotonicity",
        "raw write to SST cells bypasses the monotonic write point "
        "(SST.set); counters/flags may silently regress (paper §2.2)",
    ),
    "predicate-pure-eval": (
        "predicate-purity",
        "Predicate.evaluate must be side-effect free: no attribute "
        "mutation, no push/send/trigger calls (paper §2.4)",
    ),
    "predicate-eval-shape": (
        "predicate-purity",
        "Predicate.evaluate must return a (cpu_cost, value) 2-tuple",
    ),
    "trigger-deferred-posts": (
        "lock-discipline",
        "RDMA posts driven inside trigger() run under the shared lock; "
        "return the post generator instead so the thread can release "
        "first (paper §3.4)",
    ),
    "bare-except": (
        "sim-hygiene",
        "bare 'except:' swallows simulator-kernel errors (SimulationError, "
        "GeneratorExit) and hides protocol bugs",
    ),
    "mutable-default-arg": (
        "sim-hygiene",
        "mutable default argument is shared across calls — state leaks "
        "between simulated nodes/runs",
    ),
    "sync-wakeup": (
        "sim-hygiene",
        "waking a waiter synchronously bypasses the simulator queue and "
        "breaks same-time FIFO ordering; use sim.call_after(0.0, ...)",
    ),
    # ---- spindle-check whole-program rules (docs/CHECK.md) ---------------
    "lockset-unprotected-write": (
        "lockset",
        "write to lock-protected shared state with an empty lockset on "
        "a path reachable from a concurrency root (paper §3.4)",
    ),
    "lockset-inconsistent": (
        "lockset",
        "write to shared state holding a lock disjoint from the "
        "attribute's inferred guard (paper §3.4)",
    ),
    "nondet-wall-clock": (
        "determinism",
        "wall-clock read (time.time/datetime.now/...) in simulation-"
        "reachable code breaks seeded bit-determinism; use sim.now",
    ),
    "nondet-unseeded-random": (
        "determinism",
        "module-level random.* or unseeded Random() in simulation-"
        "reachable code; all randomness must come from seeded RNGs",
    ),
    "nondet-id-order": (
        "determinism",
        "id() used as a key or ordering: object addresses are reused "
        "and vary across runs",
    ),
    "nondet-set-iteration": (
        "determinism",
        "set iteration order is salted by PYTHONHASHSEED; wrap in "
        "sorted(...) before it feeds scheduling or placement",
    ),
    "nondet-float-accumulation": (
        "determinism",
        "float '+=' accumulation inside an unordered loop: addition is "
        "not associative, so the result depends on iteration order",
    ),
}


@dataclass(frozen=True)
class Finding:
    """One violation of one rule at one location."""

    path: str          # repo-relative posix path
    line: int
    col: int
    rule: str
    message: str
    symbol: str        # enclosing `Class.method` scope, or "<module>"

    @property
    def fingerprint(self) -> str:
        """Line-number-free identity used for baseline matching."""
        return f"{self.path}::{self.symbol}::{self.rule}"

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"[{self.rule}] {self.message} (in {self.symbol})")

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (``spindle-repro check --format json``)."""
        return {
            "path": self.path, "line": self.line, "col": self.col,
            "rule": self.rule, "message": self.message,
            "symbol": self.symbol, "fingerprint": self.fingerprint,
        }


_SUPPRESS_RE = re.compile(
    r"#\s*spindle-lint:\s*allow\[([A-Za-z0-9_,\- ]+)\]"
)


def parse_suppressions(source_lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Map 1-based line number -> set of suppressed rule names.

    A suppression on its own line also covers the *next* line, so the
    comment can sit above long statements.
    """
    out: Dict[int, Set[str]] = {}
    for i, line in enumerate(source_lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
        out.setdefault(i, set()).update(rules)
        if line.lstrip().startswith("#"):  # comment-only line: covers below
            out.setdefault(i + 1, set()).update(rules)
    return out


def load_baseline(text: str) -> Set[str]:
    """Parse a baseline file: one fingerprint per line, '#' comments."""
    out: Set[str] = set()
    for line in text.splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            out.add(line)
    return out


def format_baseline(findings: Iterable[Finding]) -> str:
    """Render findings as a baseline file body (sorted, deduplicated)."""
    lines: List[str] = [
        "# spindle-lint baseline: known pre-existing findings.",
        "# One fingerprint (path::symbol::rule) per line; regenerate with",
        "#   spindle-repro lint src --write-baseline",
    ]
    lines.extend(sorted({f.fingerprint for f in findings}))
    return "\n".join(lines) + "\n"

"""The four AST passes of spindle-lint.

Each pass walks a parsed module and yields :class:`Finding` objects.
They are heuristic by design (no type inference — stdlib ``ast`` only):
a finding means "this shape of code is how the invariant gets violated",
and a human can suppress it inline after checking (see findings.py).

Passes
------
1. ``MonotonicityPass``   — raw writes to SST cells bypassing ``SST.set``
                            (§2.2: counters/flags must never regress).
2. ``PredicatePurityPass``— side effects or a wrong return shape in
                            ``Predicate.evaluate`` (§2.4 contract).
3. ``LockDisciplinePass`` — RDMA posts driven lexically inside
                            ``trigger()`` instead of being returned as a
                            deferred-post generator (§3.4).
4. ``SimHygienePass``     — bare ``except:``, mutable default args, and
                            synchronous wakeups bypassing the simulator
                            queue.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Tuple

from .findings import Finding

__all__ = ["LintPass", "MonotonicityPass", "PredicatePurityPass",
           "LockDisciplinePass", "SimHygienePass", "ALL_PASSES"]


# --------------------------------------------------------------------------
# Shared helpers
# --------------------------------------------------------------------------


def _annotate_scopes(module: ast.Module) -> None:
    """Tag every node with its enclosing ``Class.func`` qualname."""

    def visit(node: ast.AST, scope: str) -> None:
        for child in ast.iter_child_nodes(node):
            child_scope = scope
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                child_scope = f"{scope}.{child.name}" if scope else child.name
            child._spindle_scope = child_scope  # type: ignore[attr-defined]
            visit(child, child_scope)

    module._spindle_scope = ""  # type: ignore[attr-defined]
    visit(module, "")


def _scope_of(node: ast.AST) -> str:
    return getattr(node, "_spindle_scope", "") or "<module>"


def _call_attr(node: ast.AST) -> Optional[str]:
    """Method name if ``node`` is a ``X.attr(...)`` call, else None."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _base_names(cls: ast.ClassDef) -> List[str]:
    names = []
    for base in cls.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _walk_excluding_nested(body: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements but do not descend into nested function/class
    definitions (their bodies run in a different dynamic context)."""
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue  # neither report nor descend: deferred context
        yield node
        stack.extend(ast.iter_child_nodes(node))


class LintPass:
    """Base class: one invariant, one or more rules."""

    name = "abstract"
    rules: Tuple[str, ...] = ()

    def run(self, module: ast.Module, path: str) -> Iterator[Finding]:
        raise NotImplementedError

    def _finding(self, path: str, node: ast.AST, rule: str,
                 message: str) -> Finding:
        return Finding(
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule,
            message=message,
            symbol=_scope_of(node),
        )


# --------------------------------------------------------------------------
# Pass 1: SST monotonicity
# --------------------------------------------------------------------------


class MonotonicityPass(LintPass):
    """Flag raw writes that bypass the SST monotonic write point.

    ``SST.set`` is the single place where counter/flag monotonicity
    (paper §2.2) is enforced; writing ``region.cells[...]``, assigning
    ``x.cells = ...``, or calling ``write_local`` anywhere else skips
    that check — exactly the bug class that makes batched acks (§3.2)
    and early lock release (§3.4) unsound.
    """

    name = "monotonicity"
    rules = ("sst-monotonic-write",)

    def run(self, module: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(module):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                hit = self._cells_store(target)
                if hit is not None:
                    yield self._finding(
                        path, node, "sst-monotonic-write",
                        f"direct store to {hit} bypasses SST.set "
                        f"monotonicity enforcement",
                    )
            attr = _call_attr(node)
            if attr == "write_local":
                yield self._finding(
                    path, node, "sst-monotonic-write",
                    "raw write_local() call bypasses SST.set "
                    "monotonicity enforcement",
                )

    @staticmethod
    def _cells_store(target: ast.expr) -> Optional[str]:
        # x.cells[...] = v   /  x.cells[a:b] = v
        if isinstance(target, ast.Subscript):
            value = target.value
            if isinstance(value, ast.Attribute) and value.attr == "cells":
                return ".cells[...]"
        # x.cells = v  (whole-list replacement)
        if isinstance(target, ast.Attribute) and target.attr == "cells":
            return ".cells"
        # tuple targets: (a.cells[i], b) = ...
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                hit = MonotonicityPass._cells_store(elt)
                if hit is not None:
                    return hit
        return None


# --------------------------------------------------------------------------
# Pass 2: predicate purity
# --------------------------------------------------------------------------

#: Method names that mutate state or emit I/O — forbidden in evaluate().
_IMPURE_CALLS = frozenset({
    "push", "push_col", "push_messages", "push_control", "send",
    "trigger", "ring", "set", "write_local", "post_write", "publish",
    "append", "appendleft", "extend", "add", "insert", "pop", "popleft",
    "remove", "discard", "clear", "update", "wedge", "spawn",
    "call_after", "call_at",
})


class PredicatePurityPass(LintPass):
    """Enforce the ``Predicate.evaluate`` contract (§2.4).

    evaluate() runs on every iteration of the predicate thread for every
    registered predicate — including inactive subgroups (§4.1.3). A side
    effect there runs under the shared lock at an unpredictable rate; the
    framework's accounting and the §3.4 optimization both assume there
    is none. It must return ``(cpu_cost, value)``.
    """

    name = "predicate-purity"
    rules = ("predicate-pure-eval", "predicate-eval-shape")

    def run(self, module: ast.Module, path: str) -> Iterator[Finding]:
        for cls in ast.walk(module):
            if not isinstance(cls, ast.ClassDef):
                continue
            if not any(b.endswith("Predicate") for b in _base_names(cls)):
                continue
            for item in cls.body:
                if isinstance(item, ast.FunctionDef) and item.name == "evaluate":
                    yield from self._check_evaluate(item, path)

    def _check_evaluate(self, fn: ast.FunctionDef,
                        path: str) -> Iterator[Finding]:
        has_return_value = False
        for node in _walk_excluding_nested(fn.body):
            # --- side effects -------------------------------------------
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if self._mutates_shared(target):
                    yield self._finding(
                        path, node, "predicate-pure-eval",
                        "evaluate() mutates attribute/container state",
                    )
            attr = _call_attr(node)
            if attr in _IMPURE_CALLS:
                yield self._finding(
                    path, node, "predicate-pure-eval",
                    f"evaluate() calls mutating/IO method '{attr}()'",
                )
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                yield self._finding(
                    path, node, "predicate-pure-eval",
                    "evaluate() must not be a generator; costs are "
                    "returned, not yielded",
                )
            # --- return shape -------------------------------------------
            if isinstance(node, ast.Return):
                has_return_value = has_return_value or node.value is not None
                yield from self._check_return(node, path)
        if not has_return_value:
            yield self._finding(
                path, fn, "predicate-eval-shape",
                "evaluate() never returns a (cpu_cost, value) tuple",
            )

    @staticmethod
    def _mutates_shared(target: ast.expr) -> bool:
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            return True
        if isinstance(target, (ast.Tuple, ast.List)):
            return any(PredicatePurityPass._mutates_shared(e)
                       for e in target.elts)
        return False

    def _check_return(self, node: ast.Return,
                      path: str) -> Iterator[Finding]:
        value = node.value
        if value is None:
            yield self._finding(
                path, node, "predicate-eval-shape",
                "bare return in evaluate(); must return (cpu_cost, value)",
            )
        elif isinstance(value, ast.Tuple):
            if len(value.elts) != 2:
                yield self._finding(
                    path, node, "predicate-eval-shape",
                    f"evaluate() returns a {len(value.elts)}-tuple; the "
                    f"contract is (cpu_cost, value)",
                )
        elif isinstance(value, ast.Constant):
            yield self._finding(
                path, node, "predicate-eval-shape",
                "evaluate() returns a bare constant; the contract is "
                "(cpu_cost, value)",
            )
        # Name / Call / conditional expressions: assume the author built
        # the tuple elsewhere — no type inference here.


# --------------------------------------------------------------------------
# Pass 3: §3.4 lock discipline
# --------------------------------------------------------------------------


class LockDisciplinePass(LintPass):
    """Flag RDMA posts *driven* inside ``trigger()`` bodies.

    ``trigger`` runs with the shared predicate lock held. Driving a push
    generator there (``yield from sst.push(...)``) posts every RDMA
    write inside the critical section — the exact anti-pattern §3.4
    removes. The sanctioned shape is to *return* the un-started
    generator and let the thread drive it after releasing the lock.
    """

    name = "lock-discipline"
    rules = ("trigger-deferred-posts",)

    _PUSH_PREFIXES = ("push",)

    def run(self, module: ast.Module, path: str) -> Iterator[Finding]:
        for cls in ast.walk(module):
            if not isinstance(cls, ast.ClassDef):
                continue
            if not any(b.endswith("Predicate") for b in _base_names(cls)):
                continue
            for item in cls.body:
                if isinstance(item, ast.FunctionDef) and item.name == "trigger":
                    yield from self._check_trigger(item, path)

    def _check_trigger(self, fn: ast.FunctionDef,
                       path: str) -> Iterator[Finding]:
        for node in _walk_excluding_nested(fn.body):
            if isinstance(node, ast.YieldFrom):
                attr = _call_attr(node.value)
                if attr is not None and attr.startswith(self._PUSH_PREFIXES):
                    yield self._finding(
                        path, node, "trigger-deferred-posts",
                        f"'yield from ...{attr}(...)' drives RDMA posts "
                        f"under the shared lock; return the generator for "
                        f"deferred posting instead (§3.4)",
                    )
            # A push generator created and immediately discarded is dead
            # code at best and a missed post at worst.
            if isinstance(node, ast.Expr):
                attr = _call_attr(node.value)
                if attr is not None and attr.startswith(self._PUSH_PREFIXES):
                    yield self._finding(
                        path, node, "trigger-deferred-posts",
                        f"bare '{attr}(...)' creates a push generator and "
                        f"drops it: posts never happen",
                    )


# --------------------------------------------------------------------------
# Pass 4: simulation hygiene
# --------------------------------------------------------------------------

#: Names whose direct invocation looks like a stored continuation being
#: woken synchronously (bypassing the event queue and FIFO ordering).
_WAKEUP_NAMES = frozenset({"waiter", "continuation", "resume_fn"})


class SimHygienePass(LintPass):
    """Catch generic patterns that corrupt deterministic simulation."""

    name = "sim-hygiene"
    rules = ("bare-except", "mutable-default-arg", "sync-wakeup")

    def run(self, module: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(module):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self._finding(
                    path, node, "bare-except",
                    "bare 'except:' also catches GeneratorExit/"
                    "KeyboardInterrupt and hides kernel errors; name the "
                    "exception",
                )
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_defaults(node, path)
            if isinstance(node, ast.Call):
                yield from self._check_wakeup(node, path)

    def _check_defaults(self, fn: ast.AST, path: str) -> Iterator[Finding]:
        args = fn.args  # type: ignore[attr-defined]
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                yield self._finding(
                    path, default, "mutable-default-arg",
                    "mutable default argument is shared across all calls",
                )
            elif isinstance(default, ast.Call) and isinstance(
                default.func, ast.Name
            ) and default.func.id in ("list", "dict", "set", "deque",
                                      "bytearray"):
                yield self._finding(
                    path, default, "mutable-default-arg",
                    f"mutable default '{default.func.id}()' is evaluated "
                    f"once and shared across all calls",
                )

    def _check_wakeup(self, node: ast.Call, path: str) -> Iterator[Finding]:
        func = node.func
        # waiter(value) — direct invocation of a stored continuation.
        if isinstance(func, ast.Name) and func.id in _WAKEUP_NAMES:
            yield self._finding(
                path, node, "sync-wakeup",
                f"direct call of stored continuation '{func.id}(...)' "
                f"bypasses the simulator queue; use "
                f"sim.call_after(0.0, {func.id}, ...)",
            )
        # waiters[i](value) — same, via the collection.
        if isinstance(func, ast.Subscript):
            base = func.value
            if isinstance(base, (ast.Name, ast.Attribute)):
                base_name = base.id if isinstance(base, ast.Name) else base.attr
                if base_name in ("waiters", "_waiters"):
                    yield self._finding(
                        path, node, "sync-wakeup",
                        "direct call into the waiter queue bypasses the "
                        "simulator queue; use sim.call_after(0.0, ...)",
                    )
        # proc._step(...) from outside the Process class itself.
        if (isinstance(func, ast.Attribute) and func.attr == "_step"
                and not (isinstance(func.value, ast.Name)
                         and func.value.id == "self")):
            yield self._finding(
                path, node, "sync-wakeup",
                "resuming a process via _step() bypasses scheduling; "
                "trigger an Event or use sim.call_after",
            )


ALL_PASSES: Tuple[LintPass, ...] = (
    MonotonicityPass(),
    PredicatePurityPass(),
    LockDisciplinePass(),
    SimHygienePass(),
)


def annotate(module: ast.Module) -> ast.Module:
    """Public wrapper: attach scope qualnames (runner calls this once)."""
    _annotate_scopes(module)
    return module

"""Determinism analysis (spindle-check pass 2).

Every chaos replay, trace fingerprint and BENCH baseline in this repo
assumes the simulator is **bit-deterministic under a seed**: the same
seed and schedule must produce byte-identical logs.  This pass flags
the code shapes that break that promise, but only where they matter —
in code *reachable from simulation event handlers* (generator
processes, predicate ``evaluate``/``trigger`` bodies, and
address-taken callbacks, per
:meth:`~repro.analysis.lint.callgraph.Program.concurrency_roots`).
A benchmark's wall-clock measurement loop is fine; a wall-clock read
inside a delivery predicate is not.

Rules
-----
* ``nondet-wall-clock``        — ``time.time()``/``datetime.now()``/
                                 ``perf_counter()`` etc.: real time
                                 leaking into simulated control flow.
* ``nondet-unseeded-random``   — the module-level ``random.*`` API or a
                                 ``Random()`` with no seed; all
                                 randomness must come from seeded RNGs.
* ``nondet-id-order``          — ``id()`` used as a dict key, subscript
                                 key, or sort/min/max key: ids vary
                                 across runs (and CPython reuses them),
                                 so any order or identity derived from
                                 them is unstable.
* ``nondet-set-iteration``     — iterating a ``set``/``frozenset``
                                 without ``sorted()``: string hashing is
                                 salted per process, so iteration order
                                 feeds PYTHONHASHSEED into scheduling
                                 and placement decisions.
* ``nondet-float-accumulation``— ``+=`` accumulation inside such an
                                 unordered loop: float addition is not
                                 associative, so even a value-identical
                                 set produces run-dependent sums.

The reachability filter is an over-approximation in both directions
(docs/CHECK.md): name-based call resolution may mark dead code
reachable, and code invoked only reflectively may be missed.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from .callgraph import FunctionInfo, Program
from .findings import Finding

__all__ = ["DeterminismPass"]

#: Module-attribute calls that read the wall clock.
_CLOCK_ATTRS = {
    "time": {"time", "time_ns", "monotonic", "monotonic_ns",
             "perf_counter", "perf_counter_ns", "process_time"},
    "datetime": {"now", "utcnow", "today"},
    "date": {"today"},
}
#: Bare names that are unmistakably wall-clock reads when called
#: (``from time import perf_counter``).
_CLOCK_NAMES = frozenset({"perf_counter", "perf_counter_ns", "monotonic",
                          "monotonic_ns", "time_ns"})

#: Module-level ``random.*`` API (shared, unseeded-by-default RNG).
_RANDOM_ATTRS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "sample",
    "shuffle", "uniform", "gauss", "normalvariate", "expovariate",
    "betavariate", "getrandbits", "triangular", "vonmisesvariate",
    "paretovariate", "weibullvariate", "lognormvariate", "seed",
})

#: Calls whose result order matters for the id()-as-key rule.
_ORDER_CALLS = frozenset({"sorted", "min", "max"})


class DeterminismPass:
    """Whole-program pass; run via :meth:`run_program`."""

    name = "determinism"
    rules = ("nondet-wall-clock", "nondet-unseeded-random",
             "nondet-id-order", "nondet-set-iteration",
             "nondet-float-accumulation")

    def run_program(self, program: Program) -> Iterator[Finding]:
        reachable = program.reachable(program.concurrency_roots())
        for qual in sorted(reachable):
            fi = program.functions[qual]
            yield from self._check_function(fi)

    # ------------------------------------------------------------ per-func

    def _check_function(self, fi: FunctionInfo) -> Iterator[Finding]:
        set_names = _set_typed_names(fi)
        body: List[ast.stmt] = list(fi.node.body)  # type: ignore
        stack: List[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue  # nested defs get their own FunctionInfo
            if isinstance(node, ast.Call):
                yield from self._check_call(fi, node)
            if isinstance(node, ast.Dict):
                for key in node.keys:
                    if key is not None and _is_id_call(key):
                        yield _finding(
                            fi, key, "nondet-id-order",
                            "id() as a dict key: CPython reuses ids "
                            "after GC, and any ordering derived from "
                            "them varies across runs")
            if isinstance(node, ast.Subscript) and _is_id_call(
                    node.slice if not isinstance(node.slice, ast.Tuple)
                    else node.slice):
                yield _finding(
                    fi, node, "nondet-id-order",
                    "id()-keyed subscript: ids are reused after GC and "
                    "are not stable across runs")
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_loop(fi, node, set_names)
            if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                 ast.GeneratorExp)):
                for gen in node.generators:
                    if _is_unordered(gen.iter, set_names):
                        yield _finding(
                            fi, gen.iter, "nondet-set-iteration",
                            "comprehension over a set: iteration order "
                            "is salted by PYTHONHASHSEED; wrap in "
                            "sorted(...)")
            stack.extend(ast.iter_child_nodes(node))

    def _check_call(self, fi: FunctionInfo,
                    node: ast.Call) -> Iterator[Finding]:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value,
                                                          ast.Name):
            recv, attr = func.value.id, func.attr
            if attr in _CLOCK_ATTRS.get(recv, ()):
                yield _finding(
                    fi, node, "nondet-wall-clock",
                    f"{recv}.{attr}() reads the wall clock inside "
                    f"simulation-reachable code; use sim.now")
            if recv == "random" and attr in _RANDOM_ATTRS:
                yield _finding(
                    fi, node, "nondet-unseeded-random",
                    f"module-level random.{attr}() uses the shared "
                    f"unseeded RNG; draw from a seeded Random "
                    f"(e.g. sim.rng)")
        if isinstance(func, ast.Name):
            if func.id in _CLOCK_NAMES:
                yield _finding(
                    fi, node, "nondet-wall-clock",
                    f"{func.id}() reads the wall clock inside "
                    f"simulation-reachable code; use sim.now")
            if func.id == "Random" and not node.args and not node.keywords:
                yield _finding(
                    fi, node, "nondet-unseeded-random",
                    "Random() with no seed draws entropy from the OS; "
                    "pass an explicit seed")
            if func.id in _ORDER_CALLS:
                for arg in node.args:
                    if _is_id_call(arg):
                        yield _finding(
                            fi, arg, "nondet-id-order",
                            f"{func.id}() over id() values: ids are "
                            f"not stable across runs")
                for kw in node.keywords:
                    if (kw.arg == "key" and isinstance(kw.value, ast.Name)
                            and kw.value.id == "id"):
                        yield _finding(
                            fi, kw.value, "nondet-id-order",
                            f"{func.id}(key=id) orders by object "
                            f"address, which varies across runs")
        # x.sort(key=id)
        if (isinstance(func, ast.Attribute) and func.attr == "sort"):
            for kw in node.keywords:
                if (kw.arg == "key" and isinstance(kw.value, ast.Name)
                        and kw.value.id == "id"):
                    yield _finding(
                        fi, kw.value, "nondet-id-order",
                        "sort(key=id) orders by object address, which "
                        "varies across runs")

    def _check_loop(self, fi: FunctionInfo, node: ast.For,
                    set_names: Set[str]) -> Iterator[Finding]:
        if not _is_unordered(node.iter, set_names):
            return
        yield _finding(
            fi, node.iter, "nondet-set-iteration",
            "iterating a set: order is salted by PYTHONHASHSEED and "
            "feeds control flow; wrap in sorted(...)")
        for sub in ast.walk(node):
            if isinstance(sub, ast.AugAssign) and isinstance(
                    sub.op, ast.Add):
                yield _finding(
                    fi, sub, "nondet-float-accumulation",
                    "'+=' accumulation inside a set-ordered loop: float "
                    "addition is not associative, so the sum depends on "
                    "iteration order")


# --------------------------------------------------------------------------
# helpers
# --------------------------------------------------------------------------


def _is_id_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id == "id" and len(node.args) == 1)


def _is_set_expr(node: ast.expr) -> bool:
    """Syntactically set-valued: a set display/comp, ``set(...)`` /
    ``frozenset(...)`` call, or a set-operator combination of such."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _is_unordered(node: ast.expr, set_names: Set[str]) -> bool:
    if _is_set_expr(node):
        return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    return False


def _set_typed_names(fi: FunctionInfo) -> Set[str]:
    """Local names that are definitely sets: assigned only from set
    expressions (or annotated ``Set[...]``) within this function."""
    set_like: Set[str] = set()
    other: Set[str] = set()
    for node in ast.walk(fi.node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    (set_like if _is_set_expr(node.value)
                     else other).add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name):
            ann = node.annotation
            base = ann.value if isinstance(ann, ast.Subscript) else ann
            name = (base.id if isinstance(base, ast.Name)
                    else getattr(base, "attr", ""))
            if name in ("Set", "set", "FrozenSet", "frozenset",
                        "MutableSet"):
                set_like.add(node.target.id)
            elif isinstance(node.target, ast.Name):
                other.add(node.target.id)
    return set_like - other


def _finding(fi: FunctionInfo, node: ast.AST, rule: str,
             message: str) -> Finding:
    scope = f"{fi.cls}.{fi.name}" if fi.cls else fi.name
    return Finding(path=fi.path,
                   line=getattr(node, "lineno", 1),
                   col=getattr(node, "col_offset", 0),
                   rule=rule, message=message, symbol=scope)

"""Vector-clock happens-before tracker (spindle-check pass 3, runtime).

The static lockset pass (:mod:`.lockset`) over-approximates: name-based
call resolution can conjure paths that never execute, and lock identity
by name can merge distinct locks.  This tracker is its dynamic
counterpart — it observes *actual* sanitized test runs and reports
write-write races that really happened under the simulated schedule, so
each side's false positives are audited by the other
(:meth:`HBTracker.cross_check`).

How the partial order is built
------------------------------
Every simulated thread of control (a :class:`~repro.sim.process.Process`
or a plain scheduled callback) is a *context* with a vector clock.
Happens-before edges come from the kernel hooks this module installs:

* **scheduling** — ``Simulator.call_at`` passes each ``(fn, args)``
  through :attr:`~repro.sim.engine.Simulator.hb_hook`; the tracker
  snapshots the scheduling context's clock and joins it into the fire
  context.  This single edge source covers ``spawn``, ``yield delay``,
  ``Event.trigger`` wakeups and doorbell rings with waiters — they all
  go through the event queue.
* **locks** — ``release`` joins the holder's clock into the lock,
  ``_grant`` joins the lock's clock into the new owner, so two critical
  sections under one lock are ordered even when the hand-off is
  uncontended (no scheduler edge exists then).
* **late waiters / pending rings** — an :class:`~repro.sim.sync.Event`
  that triggered before its waiter arrived, and a
  :class:`~repro.sim.sync.Doorbell` rung while nobody waited, park the
  trigger/ring clock on the primitive and join it into the consumer.

Accesses are recorded at the SST write point (``SST.set``) and on any
object instrumented with :meth:`HBTracker.watch_object`.  Per location
the tracker keeps one last-write clock per context; a new write races
with a prior write by another context unless the prior clock is ≤ the
writer's current clock.  Two writes under a common lock can never be
flagged — the lock edges order them by construction.

Enable for a test run with ``SPINDLE_HB=1`` (tests/conftest.py), or by
hand::

    tracker = enable_hb()
    ... run simulation ...
    assert not tracker.unexplained_races()
    disable_hb()

Soundness caveats (docs/CHECK.md): the tracker sees one schedule per
seed — absence of a reported race is not absence of a race; and it only
watches locations that are instrumented.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple

__all__ = ["VectorClock", "Race", "HBTracker", "enable_hb", "disable_hb",
           "global_tracker"]


class VectorClock:
    """A mapping context-id -> counter with join/tick/ordering."""

    __slots__ = ("clocks",)

    def __init__(self, clocks: Optional[Dict[int, int]] = None):
        self.clocks: Dict[int, int] = dict(clocks) if clocks else {}

    def tick(self, ctx_id: int) -> None:
        self.clocks[ctx_id] = self.clocks.get(ctx_id, 0) + 1

    def join(self, other: "VectorClock") -> None:
        for ctx_id, count in other.clocks.items():
            if count > self.clocks.get(ctx_id, 0):
                self.clocks[ctx_id] = count

    def copy(self) -> "VectorClock":
        return VectorClock(self.clocks)

    def __le__(self, other: "VectorClock") -> bool:
        """True iff every component is <= other's (happened-before-or-
        equal; incomparable clocks mean concurrency)."""
        return all(count <= other.clocks.get(ctx_id, 0)
                   for ctx_id, count in self.clocks.items())

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}:{v}" for k, v in sorted(self.clocks.items()))
        return "{" + inner + "}"


@dataclass(eq=False)  # identity semantics: contexts are unique objects
class _Ctx:
    """One simulated thread of control (process or plain callback)."""

    ctx_id: int
    name: str
    vc: VectorClock = field(default_factory=VectorClock)
    locks: FrozenSet[str] = frozenset()


@dataclass
class _Access:
    """Last recorded write to one location by one context."""

    ctx_id: int
    ctx_name: str
    vc: VectorClock
    time: float
    locks: FrozenSet[str]


@dataclass
class Race:
    """Two writes to the same location with incomparable clocks."""

    label: str              # location scope, e.g. "sim0:SST@n2"
    attr: str               # attribute / column name
    first: _Access
    second: _Access
    explanation: Optional[str] = None

    def render(self) -> str:
        tail = f" [explained: {self.explanation}]" if self.explanation else ""
        return (f"race on {self.label}.{self.attr}: "
                f"{self.first.ctx_name}@{self.first.time:.9f} "
                f"(locks={sorted(self.first.locks)}) || "
                f"{self.second.ctx_name}@{self.second.time:.9f} "
                f"(locks={sorted(self.second.locks)}){tail}")


class HBTracker:
    """Collects happens-before state and the resulting race report."""

    def __init__(self, strict: bool = False):
        #: Raise on the first unexplained race instead of collecting.
        self.strict = strict
        self.races: List[Race] = []
        self.accesses_recorded = 0
        self._ids = itertools.count(1)
        self._ctxs: Dict[Any, _Ctx] = {}
        self._main = _Ctx(0, "<main>")
        self._cur: _Ctx = self._main
        self._cur_sim: Optional[Any] = None
        #: location -> ctx_id -> last write (dominated entries pruned).
        self._locations: Dict[Tuple[str, str], Dict[int, _Access]] = {}
        #: clock to merge into the very next snapshot (set by the
        #: "replay"/"drain" hooks just before they schedule/trigger).
        self._extra: Optional[VectorClock] = None
        self._sims: Dict[Any, int] = {}
        #: per-sim set of contexts that ran since the last run() return;
        #: joined into the run() caller when it regains control.
        self._dirty: Dict[Any, set] = {}
        #: SST object -> incarnation index.  Each view registers fresh
        #: memory (§2.3), so two epochs' tables are different variables
        #: even on the same node — without this, an old epoch's writes
        #: would look like races against the new epoch's.
        self._sst_incarnations: Dict[Any, int] = {}
        #: (label substring, attr substring, reason) allow-list.
        self._explanations: List[Tuple[str, str, str]] = []

    # ------------------------------------------------------------ contexts

    def _ctx_of(self, key: Any) -> _Ctx:
        if key is None:
            return self._cur
        ctx = self._ctxs.get(key)
        if ctx is None:
            name = getattr(key, "name", None) or repr(key)
            ctx = _Ctx(next(self._ids), name)
            self._ctxs[key] = ctx
        return ctx

    def _snapshot(self) -> VectorClock:
        snap = self._cur.vc.copy()
        if self._extra is not None:
            snap.join(self._extra)
            self._extra = None
        return snap

    def _sim_scope(self, sim: Any) -> str:
        if sim is None:
            return "sim?"
        idx = self._sims.get(sim)
        if idx is None:
            idx = len(self._sims)
            self._sims[sim] = idx
        return f"sim{idx}"

    # ------------------------------------------------------- kernel hooks

    def _sched_hook(self, sim: Any, fn: Any, args: Tuple[Any, ...]):
        """Simulator.hb_hook: wrap ``fn`` so the fire context joins the
        scheduling context's clock snapshot."""
        snap = self._snapshot()
        bound = getattr(fn, "__self__", None)
        # Processes keep one long-lived context across steps; anything
        # else (plain callback) becomes a fresh context for the duration
        # of the call, seeded with the scheduler's snapshot.
        if bound is not None and hasattr(bound, "_gen"):
            ctx = self._ctx_of(bound)

            def fire(*a: Any) -> None:
                ctx.vc.join(snap)
                prev, prev_sim = self._cur, self._cur_sim
                self._cur, self._cur_sim = ctx, sim
                try:
                    fn(*a)
                finally:
                    self._cur, self._cur_sim = prev, prev_sim
                    self._dirty.setdefault(sim, set()).add(ctx)
        else:
            name = getattr(fn, "__qualname__", None) or repr(fn)

            def fire(*a: Any) -> None:
                ctx = _Ctx(next(self._ids), f"<cb {name}>",
                           vc=snap.copy())
                prev, prev_sim = self._cur, self._cur_sim
                self._cur, self._cur_sim = ctx, sim
                try:
                    fn(*a)
                finally:
                    self._cur, self._cur_sim = prev, prev_sim
                    self._dirty.setdefault(sim, set()).add(ctx)
        return fire, args

    def _run_hook(self, sim: Any) -> None:
        """Simulator.hb_run_hook: the run() caller is causally after
        every context that executed during the run."""
        dirty = self._dirty.get(sim)
        if dirty:
            for ctx in dirty:
                self._cur.vc.join(ctx.vc)
            dirty.clear()

    def _lock_hook(self, op: str, lock: Any, owner: Any) -> None:
        if op == "release":
            holder = self._ctx_of(owner)
            if lock._hb_vc is None:
                lock._hb_vc = holder.vc.copy()
            else:
                lock._hb_vc.join(holder.vc)
            holder.locks = holder.locks - {lock.name}
        else:  # grant
            ctx = self._ctx_of(owner)
            if lock._hb_vc is not None:
                ctx.vc.join(lock._hb_vc)
            ctx.locks = ctx.locks | {lock.name}

    def _event_hook(self, op: str, event: Any) -> None:
        if op == "trigger":
            event._hb_vc = self._snapshot()
        elif op == "replay" and event._hb_vc is not None:
            self._extra = event._hb_vc

    def _doorbell_hook(self, op: str, doorbell: Any) -> None:
        if op == "ring":
            snap = self._snapshot()
            if doorbell._hb_vc is None:
                doorbell._hb_vc = snap
            else:
                doorbell._hb_vc.join(snap)
        elif op == "drain" and doorbell._hb_vc is not None:
            self._extra = doorbell._hb_vc
            doorbell._hb_vc = None

    def _process_hook(self, op: str, process: Any) -> None:
        if op == "kill":
            # Joining the victim's clock into the killer makes the kill
            # a synchronization point: the victim never runs again, so
            # its past is ordered before the killer's future (this is
            # what orders a node's two incarnations across a
            # crash-restart).
            victim = self._ctxs.get(process)
            if victim is not None:
                self._cur.vc.join(victim.vc)

    def _nic_hook(self, region: Any, snap: Any) -> None:
        """RdmaNode.hb_hook: park the (transitively, the poster's)
        clock on the written region replica — the delivery callback's
        context already inherited the poster's snapshot through the
        scheduler edge chain."""
        vc = getattr(region, "_hb_vc", None)
        if vc is None:
            region._hb_vc = self._cur.vc.copy()
        else:
            vc.join(self._cur.vc)

    def _sst_read_hook(self, sst: Any, owner: int) -> None:
        """SST.hb_read_hook: a monotonic read of a peer's row picks up
        whatever causal past its last remote write carried (§2.2 —
        one-sided reads are the SST's synchronization mechanism)."""
        vc = getattr(sst.rows[owner], "_hb_vc", None)
        if vc is not None:
            self._cur.vc.join(vc)

    def _sst_hook(self, sst: Any, col: int, spec: Any) -> None:
        sim = getattr(getattr(sst, "fabric", None), "sim", None)
        # Concurrent writes to a FLAG column are always False->True and
        # idempotent — the paper's §2.2 monotonicity argument makes them
        # safe without locks, so a write-write race there is benign by
        # construction (still recorded, auto-explained).
        note = None
        if getattr(spec, "kind", None) == "flag":
            note = "monotonic flag: concurrent True writes are idempotent (§2.2)"
        incarnation = self._sst_incarnations.setdefault(
            sst, len(self._sst_incarnations))
        self.record_access(f"SST#{incarnation}@n{sst.node_id}", spec.name,
                           sim=sim, note=note)

    # ------------------------------------------------------------ accesses

    def record_access(self, label: str, attr: str, sim: Any = None,
                      note: Optional[str] = None) -> None:
        """Record a write to ``label.attr`` by the current context and
        flag it if it is concurrent with another context's last write.
        ``note`` is an auto-explanation for races at this location
        (benign-by-construction access classes)."""
        self.accesses_recorded += 1
        ctx = self._cur
        ctx.vc.tick(ctx.ctx_id)
        scope = f"{self._sim_scope(sim if sim is not None else self._cur_sim)}:{label}"
        loc = self._locations.setdefault((scope, attr), {})
        access = _Access(ctx.ctx_id, ctx.name, ctx.vc.copy(),
                         getattr(sim or self._cur_sim, "now", 0.0) or 0.0,
                         ctx.locks)
        for other_id in sorted(loc):
            prior = loc[other_id]
            if other_id == ctx.ctx_id:
                continue
            if prior.vc <= ctx.vc:
                del loc[other_id]  # ordered before us: no longer racy
                continue
            self._report(scope, attr, prior, access, note)
        loc[ctx.ctx_id] = access

    def watch_object(self, obj: Any, attrs: Optional[Iterable[str]] = None,
                     label: Optional[str] = None, sim: Any = None) -> Any:
        """Instrument ``obj`` so attribute writes are recorded.

        Swaps in a dynamic subclass overriding ``__setattr__``; watch
        only ``attrs`` if given, every attribute otherwise.  Returns
        ``obj`` for chaining.
        """
        tracker = self
        base = type(obj)
        watched = None if attrs is None else frozenset(attrs)
        scope_label = label or base.__name__

        class _Watched(base):  # type: ignore[misc, valid-type]
            def __setattr__(self, name: str, value: Any) -> None:
                base.__setattr__(self, name, value)
                if watched is None or name in watched:
                    tracker.record_access(scope_label, name, sim=sim)

        _Watched.__name__ = f"Watched{base.__name__}"
        _Watched.__qualname__ = _Watched.__name__
        obj.__class__ = _Watched
        return obj

    # ------------------------------------------------------------- report

    def explain(self, label_sub: str, attr_sub: str, reason: str) -> None:
        """Allow-list races whose scope contains ``label_sub`` and attr
        contains ``attr_sub`` — they are still recorded, but marked
        explained and excluded from :meth:`unexplained_races`."""
        self._explanations.append((label_sub, attr_sub, reason))
        for race in self.races:
            if race.explanation is None:
                race.explanation = self._match_explanation(race.label,
                                                          race.attr)

    def _match_explanation(self, label: str, attr: str) -> Optional[str]:
        for label_sub, attr_sub, reason in self._explanations:
            if label_sub in label and attr_sub in attr:
                return reason
        return None

    def _report(self, scope: str, attr: str, first: _Access,
                second: _Access, note: Optional[str] = None) -> None:
        race = Race(scope, attr, first, second,
                    explanation=note or self._match_explanation(scope, attr))
        self.races.append(race)
        if self.strict and race.explanation is None:
            raise AssertionError(race.render())

    def unexplained_races(self) -> List[Race]:
        return [r for r in self.races if r.explanation is None]

    def report(self) -> str:
        lines = [f"hb: {self.accesses_recorded} writes tracked, "
                 f"{len(self._ctxs) + 1} contexts, {len(self.races)} "
                 f"race(s) ({len(self.unexplained_races())} unexplained)"]
        lines.extend(r.render() for r in self.races)
        return "\n".join(lines)

    def reset(self) -> None:
        """Drop per-run state (between tests); keeps explanations."""
        self.races.clear()
        self._locations.clear()
        self._ctxs.clear()
        self._sims.clear()
        self._main = _Ctx(0, "<main>")
        self._cur = self._main
        self._cur_sim = None
        self._extra = None
        self._dirty.clear()
        self._sst_incarnations.clear()

    # --------------------------------------------------------- cross-check

    def cross_check(self, findings: Iterable[Any]) -> Dict[str, List[Any]]:
        """Join runtime races against static lockset findings.

        A race *corroborates* a finding when they name the same
        attribute (race attr vs. the ``Class.attr`` in the finding's
        message).  Returns ``{"corroborated": [(race, [finding, ...])],
        "runtime_only": [race], "static_only": [finding]}`` — the
        runtime-only races are static false negatives (or uninstrumented
        static true negatives); static-only findings are either false
        positives or races the observed schedules never exercised.
        """
        static = [f for f in findings
                  if getattr(f, "rule", "").startswith("lockset")]
        corroborated: List[Tuple[Race, List[Any]]] = []
        runtime_only: List[Race] = []
        matched: set = set()
        for race in self.races:
            hits = [f for f in static
                    if f".{race.attr} " in f.message
                    or f.message.endswith(f".{race.attr}")
                    or f".{race.attr}," in f.message]
            if hits:
                corroborated.append((race, hits))
                matched.update(f.fingerprint for f in hits)
            else:
                runtime_only.append(race)
        static_only = [f for f in static if f.fingerprint not in matched]
        return {"corroborated": corroborated,
                "runtime_only": runtime_only,
                "static_only": static_only}


# ==========================================================================
# Global installation — the SPINDLE_HB=1 path
# ==========================================================================

_GLOBAL: Optional[HBTracker] = None


def global_tracker() -> Optional[HBTracker]:
    """The installed process-wide tracker, if any."""
    return _GLOBAL


def enable_hb(strict: bool = False) -> HBTracker:
    """Install a process-wide tracker via the kernel hooks. Idempotent."""
    global _GLOBAL
    if _GLOBAL is not None:
        return _GLOBAL
    from ...sim.engine import Simulator
    from ...sim.process import Process
    from ...sim.sync import Doorbell, Event, Lock
    from ...sst.table import SST

    tracker = HBTracker(strict=strict)
    Simulator.hb_hook = staticmethod(tracker._sched_hook)
    Simulator.hb_run_hook = staticmethod(tracker._run_hook)
    Lock.hb_hook = staticmethod(tracker._lock_hook)
    Event.hb_hook = staticmethod(tracker._event_hook)
    Doorbell.hb_hook = staticmethod(tracker._doorbell_hook)
    Process.hb_hook = staticmethod(tracker._process_hook)
    SST.hb_hook = staticmethod(tracker._sst_hook)
    SST.hb_read_hook = staticmethod(tracker._sst_read_hook)
    from ...rdma.nic import RdmaNode
    RdmaNode.hb_hook = staticmethod(tracker._nic_hook)
    _GLOBAL = tracker
    return tracker


def disable_hb() -> Optional[HBTracker]:
    """Undo :func:`enable_hb`; returns the tracker for inspection."""
    global _GLOBAL
    if _GLOBAL is None:
        return None
    from ...sim.engine import Simulator
    from ...sim.process import Process
    from ...sim.sync import Doorbell, Event, Lock
    from ...sst.table import SST

    Simulator.hb_hook = None
    Simulator.hb_run_hook = None
    Lock.hb_hook = None
    Event.hb_hook = None
    Doorbell.hb_hook = None
    Process.hb_hook = None
    SST.hb_hook = None
    SST.hb_read_hook = None
    from ...rdma.nic import RdmaNode
    RdmaNode.hb_hook = None
    tracker, _GLOBAL = _GLOBAL, None
    return tracker

"""Drive the lint passes over files/trees, apply suppressions + baseline.

Entry points:

* :func:`lint_source` — lint one source string (unit tests use this).
* :func:`lint_paths`  — lint files/directories; returns a
  :class:`LintReport` with new vs. baselined findings split out.
* :func:`format_report` — human-readable output for the CLI.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Set

from .findings import Finding, load_baseline, parse_suppressions
from .passes import ALL_PASSES, LintPass, annotate

__all__ = ["LintReport", "lint_source", "lint_paths", "iter_python_files",
           "format_report", "DEFAULT_BASELINE_NAME"]

#: Conventional checked-in baseline location (repo root).
DEFAULT_BASELINE_NAME = ".spindle-lint-baseline"


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)      # new findings
    baselined: List[Finding] = field(default_factory=list)     # known, ignored
    suppressed: int = 0                                        # inline allows
    files_scanned: int = 0
    errors: List[str] = field(default_factory=list)            # unparsable files

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors

    def merge(self, other: "LintReport") -> None:
        self.findings.extend(other.findings)
        self.baselined.extend(other.baselined)
        self.suppressed += other.suppressed
        self.files_scanned += other.files_scanned
        self.errors.extend(other.errors)


def _select_passes(select: Optional[Iterable[str]]) -> Sequence[LintPass]:
    if select is None:
        return ALL_PASSES
    wanted = set(select)
    chosen = [p for p in ALL_PASSES if p.name in wanted]
    unknown = wanted - {p.name for p in ALL_PASSES}
    if unknown:
        raise ValueError(
            f"unknown lint pass(es): {sorted(unknown)}; "
            f"available: {[p.name for p in ALL_PASSES]}"
        )
    return chosen


def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Iterable[str]] = None,
    baseline: Optional[Set[str]] = None,
) -> LintReport:
    """Lint one source string; ``path`` is used in findings only."""
    report = LintReport(files_scanned=1)
    try:
        module = annotate(ast.parse(source, filename=path))
    except SyntaxError as exc:
        report.errors.append(f"{path}: syntax error: {exc}")
        return report
    suppressions = parse_suppressions(source.splitlines())
    baseline = baseline or set()
    for lint_pass in _select_passes(select):
        for finding in lint_pass.run(module, path):
            allowed = suppressions.get(finding.line, set())
            if finding.rule in allowed or "all" in allowed:
                report.suppressed += 1
            elif finding.fingerprint in baseline:
                report.baselined.append(finding)
            else:
                report.findings.append(finding)
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of .py files."""
    seen: Set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            if path not in seen:
                seen.add(path)
                yield path
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in ("__pycache__", ".git", ".ruff_cache")
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        full = os.path.join(dirpath, name)
                        if full not in seen:
                            seen.add(full)
                            yield full
        else:
            raise FileNotFoundError(f"lint target not found: {path}")


def _display_path(path: str, root: Optional[str]) -> str:
    root = root or os.getcwd()
    try:
        rel = os.path.relpath(path, root)
    except ValueError:  # different drive (windows)
        rel = path
    if rel.startswith(".."):
        rel = path
    return rel.replace(os.sep, "/")


def lint_paths(
    paths: Iterable[str],
    select: Optional[Iterable[str]] = None,
    baseline: Optional[Set[str]] = None,
    baseline_path: Optional[str] = None,
    root: Optional[str] = None,
) -> LintReport:
    """Lint files and/or directory trees.

    ``baseline`` wins over ``baseline_path``; if neither is given, no
    baseline is applied (callers decide whether to consult the
    conventional ``.spindle-lint-baseline``).
    """
    if baseline is None and baseline_path is not None:
        with open(baseline_path, "r", encoding="utf-8") as fh:
            baseline = load_baseline(fh.read())
    report = LintReport()
    for path in iter_python_files(paths):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            report.errors.append(f"{path}: {exc}")
            report.files_scanned += 1
            continue
        display = _display_path(path, root)
        file_report = lint_source(source, path=display, select=select,
                                  baseline=baseline)
        report.merge(file_report)
    return report


def format_report(report: LintReport, verbose: bool = False) -> str:
    """Render a report the way compilers do: one finding per line, then
    a summary."""
    lines: List[str] = []
    for finding in report.findings:
        lines.append(finding.render())
    if verbose:
        for finding in report.baselined:
            lines.append(f"{finding.render()}  [baselined]")
    for error in report.errors:
        lines.append(f"error: {error}")
    summary = (
        f"spindle-lint: {len(report.findings)} finding(s), "
        f"{len(report.baselined)} baselined, {report.suppressed} "
        f"suppressed, {report.files_scanned} file(s) scanned"
    )
    lines.append(summary)
    return "\n".join(lines)

"""Interprocedural lockset analysis (spindle-check pass 1).

The §3.4 lock discipline says: state shared between the predicate
thread and application sender threads (slot counters, round
assignments, in-flight queues) is mutated only under the node's shared
predicate lock.  PR 1's ``lock-discipline`` pass checks one lexical
shape of one violation; this pass checks the discipline itself, across
call boundaries:

1. every function gets a **local walk**: an abstract interpreter over
   its statements tracking which ``Lock``s are held (``yield
   x.acquire()`` adds, ``x.release()`` removes; a branch that releases
   and then raises does not poison the fall-through path);
2. locksets **propagate along the call graph** from the concurrency
   roots (predicate thread loop, router workers, recovery coordinator —
   all generators — plus address-taken callbacks), so a helper called
   only with the lock held is analyzed with ``{lock}`` as its entry
   lockset;
3. **guards are inferred per attribute** (Eraser-style): for each
   ``(class, attr)`` written by two or more functions, the candidate
   guard is the intersection of the locksets of all lock-holding
   writes.  A write reachable from a concurrency root whose lockset is
   empty (``lockset-unprotected-write``) or disjoint from the guard
   (``lockset-inconsistent``) is flagged.

Lock identity is the *name* of the lock attribute (``self.lock``,
``mc.thread.lock`` and ``self.thread.lock`` all canonicalize to
``lock``) — sound for this codebase, where each node has exactly one
shared predicate lock, and precise enough to tell two differently
named locks apart.  Soundness caveats: docs/CHECK.md.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from .callgraph import FunctionInfo, Program
from .findings import Finding

__all__ = ["LocksetPass", "FunctionLocks", "analyze_function_locks"]

#: Container-mutator method names: ``self.x.append(...)`` counts as a
#: write to attribute ``x`` (the §3.4 shared state is largely deques).
_MUTATOR_CALLS = frozenset({
    "append", "appendleft", "extend", "add", "insert", "pop", "popleft",
    "remove", "discard", "clear", "update", "setdefault",
})

#: Writes in these methods are constructor/teardown-phase and exempt
#: (the object is not yet — or no longer — shared).
_EXEMPT_METHODS = frozenset({"__init__", "__post_init__", "__new__",
                             "__del__", "__enter__", "__exit__"})

Lockset = FrozenSet[str]


@dataclass
class _Write:
    """One shared-attribute store observed during the local walk."""

    attr: str
    locks: Lockset          # locks held locally at the store
    line: int
    col: int


@dataclass
class _CallObs:
    """One call site with the locally held locks at that point."""

    index: int              # index into FunctionInfo.calls
    locks: Lockset


@dataclass
class FunctionLocks:
    """Local (intraprocedural) lock summary of one function."""

    writes: List[_Write] = field(default_factory=list)
    calls: List[_CallObs] = field(default_factory=list)


def _lock_token(expr: ast.expr) -> Optional[str]:
    """Canonical name of a lock expression, or None if not lock-like."""
    name = None
    if isinstance(expr, ast.Attribute):
        name = expr.attr
    elif isinstance(expr, ast.Name):
        name = expr.id
    if name is not None and "lock" in name.lower():
        return name
    return None


def _acquired_release(node: ast.Call) -> Optional[Tuple[str, str]]:
    """('acquire'|'release', token) if ``node`` is a lock op, else None."""
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in ("acquire",
                                                         "release"):
        token = _lock_token(func.value)
        if token is not None:
            return func.attr, token
    return None


def analyze_function_locks(fi: FunctionInfo) -> FunctionLocks:
    """Run the local abstract interpreter over one function body."""
    summary = FunctionLocks()
    # Map call sites back to FunctionInfo.calls: _scan_body's traversal
    # order differs from ours, so match by (line, callee-name, nth
    # occurrence) instead of position.
    seen_calls: Dict[Tuple[int, str], int] = {}
    site_lookup: Dict[Tuple[int, str, int], int] = {}
    occurrence: Dict[Tuple[int, str], int] = {}
    for idx, site in enumerate(fi.calls):
        key = (site.line, site.name)
        site_lookup[(site.line, site.name,
                     occurrence.get(key, 0))] = idx
        occurrence[key] = occurrence.get(key, 0) + 1

    def note_call(node: ast.Call, held: Set[str]) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        else:
            return
        key = (getattr(node, "lineno", 1), name)
        nth = seen_calls.get(key, 0)
        seen_calls[key] = nth + 1
        idx = site_lookup.get((key[0], key[1], nth))
        if idx is not None:
            summary.calls.append(_CallObs(idx, frozenset(held)))

    def note_writes(node: ast.stmt, held: Set[str]) -> None:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            for attr in _self_attr_targets(target):
                summary.writes.append(_Write(
                    attr, frozenset(held),
                    getattr(node, "lineno", 1),
                    getattr(node, "col_offset", 0)))
        # container mutation: self.x.append(...) and friends
        for sub in _exprs_of(node):
            if (isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in _MUTATOR_CALLS):
                recv = sub.func.value
                attr = _self_attr(recv)
                if attr is not None:
                    summary.writes.append(_Write(
                        attr, frozenset(held),
                        getattr(sub, "lineno", 1),
                        getattr(sub, "col_offset", 0)))

    def walk(stmts: List[ast.stmt],
             held: Set[str]) -> Tuple[Set[str], bool]:
        """Returns (held-at-exit, terminated) for a statement list."""
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue  # separate FunctionInfo / deferred context
            if isinstance(stmt, (ast.Return, ast.Raise, ast.Break,
                                 ast.Continue)):
                note_writes(stmt, held)
                self_ops(stmt, held)
                return held, True
            if isinstance(stmt, ast.If):
                header_calls(stmt.test, held)
                then_held, then_term = walk(list(stmt.body), set(held))
                else_held, else_term = walk(list(stmt.orelse), set(held))
                exits = [h for h, t in ((then_held, then_term),
                                        (else_held, else_term)) if not t]
                if not exits:
                    return held, True
                held = set.intersection(*map(set, exits))
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                header_calls(getattr(stmt, "iter", None)
                             or getattr(stmt, "test", None), held)
                body_held, _ = walk(list(stmt.body), set(held))
                walk(list(stmt.orelse), set(held))
                held = held & body_held  # loop may run zero times
                continue
            if isinstance(stmt, ast.Try):
                body_held, body_term = walk(list(stmt.body), set(held))
                for handler in stmt.handlers:
                    walk(list(handler.body), set(held))
                merged = held & body_held if not body_term else set(held)
                walk(list(stmt.orelse), set(merged))
                final_held, final_term = walk(list(stmt.finalbody),
                                              set(merged))
                if final_term or body_term:
                    return final_held, body_term or final_term
                held = final_held
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    header_calls(item.context_expr, held)
                inner, term = walk(list(stmt.body), set(held))
                if term:
                    return inner, True
                held = inner
                continue
            # simple statement (contains no nested statements): record
            # observations with the pre-state, then apply lock ops
            note_writes(stmt, held)
            self_ops(stmt, held)
        return held, False

    def self_ops(stmt: ast.stmt, held: Set[str]) -> None:
        for sub in _exprs_of(stmt):
            if isinstance(sub, ast.Call):
                note_call(sub, held)
                op = _acquired_release(sub)
                if op is not None:
                    kind, token = op
                    if kind == "acquire":
                        held.add(token)
                    else:
                        held.discard(token)

    def header_calls(expr: Optional[ast.expr], held: Set[str]) -> None:
        if expr is None:
            return
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call):
                note_call(sub, held)

    walk(list(fi.node.body), set())  # type: ignore[arg-type]
    return summary


def _exprs_of(stmt: ast.stmt) -> Iterator[ast.expr]:
    """All expression nodes of one statement, not descending into
    nested definitions (there are none: walk() filters them)."""
    for node in ast.walk(stmt):
        if isinstance(node, ast.expr):
            yield node


def _self_attr(expr: ast.expr) -> Optional[str]:
    """'x' if expr is exactly ``self.x``, else None."""
    if (isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"):
        return expr.attr
    return None


def _self_attr_targets(target: ast.expr) -> List[str]:
    """Attributes of ``self`` stored to by an assignment target
    (``self.x = ..``, ``self.x[i] = ..``, tuple targets)."""
    out: List[str] = []
    if isinstance(target, ast.Attribute):
        attr = _self_attr(target)
        if attr is not None:
            out.append(attr)
    elif isinstance(target, ast.Subscript):
        attr = _self_attr(target.value)
        if attr is not None:
            out.append(attr)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            out.extend(_self_attr_targets(elt))
    return out


# --------------------------------------------------------------------------
# Interprocedural propagation + guard inference
# --------------------------------------------------------------------------

#: Cap on distinct entry locksets tracked per function; additional
#: contexts are intersected into the smallest existing one (conservative
#: toward flagging, bounded toward termination).
_MAX_ENTRIES = 8

#: Module prefixes whose classes are exempt from guard inference.  These
#: layers *implement* the concurrency model rather than run inside it:
#: the sim kernel is the single-threaded scheduler that defines what a
#: lock even is; the RDMA layer models NIC hardware (one-sided remote
#: writes bypass host locks by design — that is the point of RDMA); the
#: metrics instruments and the analyzer itself run in kernel context.
DEFAULT_EXEMPT_MODULES = ("repro.sim.", "repro.rdma.", "repro.metrics.",
                          "repro.analysis.")


class LocksetPass:
    """Whole-program pass; run via :meth:`run_program`."""

    name = "lockset"
    rules = ("lockset-unprotected-write", "lockset-inconsistent")

    def __init__(self, exempt_modules: Tuple[str, ...] =
                 DEFAULT_EXEMPT_MODULES):
        self.exempt_modules = tuple(exempt_modules)

    def _exempt(self, fi: FunctionInfo) -> bool:
        return any(fi.module == p.rstrip(".") or fi.module.startswith(p)
                   for p in self.exempt_modules)

    def run_program(self, program: Program) -> Iterator[Finding]:
        locals_: Dict[str, FunctionLocks] = {}
        for qual in sorted(program.functions):
            locals_[qual] = analyze_function_locks(
                program.functions[qual])

        roots = program.concurrency_roots()
        # Predicate evaluate/trigger bodies run entirely under the shared
        # predicate lock (PredicateThread._run releases only after the
        # trigger generator completes — §2.4/§3.4), so their entry
        # lockset is *pinned* to {lock}.  Pinning also keeps the
        # Event.trigger/Predicate.trigger name collision from leaking
        # callers' empty locksets into trigger bodies.
        pinned: Dict[str, Lockset] = {
            qual: frozenset({"lock"})
            for qual, why in roots.items() if why == "predicate"
        }
        entries: Dict[str, Set[Lockset]] = {}
        origins: Dict[str, Set[str]] = {}
        work: List[str] = []
        for qual in sorted(roots):
            entries[qual] = {pinned.get(qual, frozenset())}
            origins[qual] = {qual}
            work.append(qual)

        while work:
            qual = work.pop()
            fi = program.functions[qual]
            summary = locals_[qual]
            for obs in summary.calls:
                site = fi.calls[obs.index]
                for callee in program.resolve(fi, site):
                    changed = False
                    if callee in pinned:
                        entries.setdefault(callee, {pinned[callee]})
                        callee_origins = origins.setdefault(callee, set())
                        before = len(callee_origins)
                        callee_origins.update(origins.get(qual, ()))
                        if len(callee_origins) != before:
                            work.append(callee)
                        continue
                    callee_entries = entries.setdefault(callee, set())
                    for entry in entries[qual]:
                        eff = entry | obs.locks
                        if eff not in callee_entries:
                            if len(callee_entries) >= _MAX_ENTRIES:
                                smallest = min(callee_entries, key=len)
                                merged = smallest & eff
                                if merged not in callee_entries:
                                    callee_entries.add(merged)
                                    changed = True
                            else:
                                callee_entries.add(eff)
                                changed = True
                    callee_origins = origins.setdefault(callee, set())
                    before = len(callee_origins)
                    callee_origins.update(origins.get(qual, ()))
                    if changed or len(callee_origins) != before:
                        work.append(callee)

        # ---- collect write observations per (class, attr) ---------------
        # obs: (qual, write, effective locksets, reachable-roots)
        by_attr: Dict[Tuple[str, str], List[Tuple[str, _Write,
                                                  List[Lockset],
                                                  Set[str]]]] = {}
        for qual in sorted(program.functions):
            fi = program.functions[qual]
            if fi.cls is None or fi.name in _EXEMPT_METHODS:
                continue
            if self._exempt(fi):
                continue
            fentries = sorted(entries.get(qual, ()), key=sorted)
            if not fentries:
                continue  # not reachable from any concurrency root
            for write in locals_[qual].writes:
                eff = [frozenset(e | write.locks) for e in fentries]
                by_attr.setdefault((fi.cls, write.attr), []).append(
                    (qual, write, eff, origins.get(qual, set())))

        for (cls, attr) in sorted(by_attr):
            observations = by_attr[(cls, attr)]
            writers = {qual for qual, _, _, _ in observations}
            if len(writers) < 2:
                continue  # single-writer state: no interleaving to guard
            # Guard inference needs corroboration: one function writing
            # under an incidental caller's lock proves nothing, but two
            # distinct writers agreeing on a lock is a discipline.
            held_by_writer: Dict[str, List[Lockset]] = {}
            for qual, _, eff, _ in observations:
                held_by_writer.setdefault(qual, []).extend(
                    ls for ls in eff if ls)
            locked_writers = {qual for qual, sets in held_by_writer.items()
                              if sets}
            if len(locked_writers) < 2:
                continue
            held_sets = [ls for sets in held_by_writer.values()
                         for ls in sets]
            guard: Lockset = frozenset.intersection(*held_sets)
            reported: Set[Tuple[str, int]] = set()
            for qual, write, eff, origin in sorted(
                    observations, key=lambda o: (o[0], o[1].line)):
                key = (qual, write.line)
                if key in reported:
                    continue
                fi = program.functions[qual]
                via = ", ".join(sorted(origin)[:3]) or "?"
                if any(not ls for ls in eff):
                    reported.add(key)
                    yield _finding(
                        fi, write, "lockset-unprotected-write",
                        f"write to {cls}.{attr} with empty lockset on a "
                        f"path reachable from {via}; other writes hold "
                        f"{_fmt(guard) or _fmt(held_sets[0])} (§3.4)",
                    )
                    continue
                # Inconsistency is judged leave-one-out: the guard the
                # *other* writers agree on (the global intersection would
                # include this writer's own locks, making disjointness
                # unsatisfiable by construction).
                others = [ls for other, sets in held_by_writer.items()
                          if other != qual for ls in sets]
                if not others:
                    continue
                guard_others = frozenset.intersection(*others)
                if guard_others and all(ls.isdisjoint(guard_others)
                                        for ls in eff):
                    reported.add(key)
                    yield _finding(
                        fi, write, "lockset-inconsistent",
                        f"write to {cls}.{attr} holds "
                        f"{_fmt(frozenset.union(*eff))} but the other "
                        f"writers' guard is {_fmt(guard_others)} "
                        f"(reachable from {via})",
                    )


def _fmt(locks: Lockset) -> str:
    return "{" + ", ".join(sorted(locks)) + "}" if locks else ""


def _finding(fi: FunctionInfo, write: _Write, rule: str,
             message: str) -> Finding:
    scope = f"{fi.cls}.{fi.name}" if fi.cls else fi.name
    return Finding(path=fi.path, line=write.line, col=write.col,
                   rule=rule, message=message, symbol=scope)

"""Runtime sanitizer: assert the paper's invariants on every RDMA post.

The static passes catch the *lexical* shape of violations; this module
catches the *dynamic* ones — the silent-until-scale bugs of RDMA
protocols. Three checks:

* **Lock discipline (§3.4)** — when ``early_lock_release`` is on, no
  RDMA write may be posted by a process that still holds the shared
  predicate lock. Detected via ``Lock.held_by`` (owner tracking) and
  ``Simulator.current_process`` at post time, hooked into both
  ``SST.push`` and the NIC's ``post_write``.
* **SST monotonicity (§2.2)** — the counter/flag columns of the local
  row must never regress between consecutive pushes covering them.
  A regression means somebody bypassed ``SST.set``.
* **Event-model reporting** — every violation is recorded as a
  :class:`~repro.analysis.trace.TraceEvent` (``kind="sanitize.*"``),
  optionally forwarded to an attached
  :class:`~repro.analysis.trace.Tracer`, and raised as
  :class:`SanitizerError` in strict mode.

Turn it on for a whole test run with ``SPINDLE_SANITIZE=1`` (see
tests/conftest.py), or attach by hand::

    san = Sanitizer()
    san.watch_thread(cluster.groups[0].thread)
    san.watch_sst(cluster.groups[0].sst)
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..trace import TraceEvent

__all__ = ["Sanitizer", "SanitizerError", "enable_global",
           "disable_global", "global_sanitizer"]


class SanitizerError(AssertionError):
    """An invariant the protocol stack depends on was violated."""


class Sanitizer:
    """Records and (optionally) raises on runtime invariant violations."""

    def __init__(self, strict: bool = True, tracer: Any = None):
        self.strict = strict
        self.tracer = tracer
        #: All violations observed, as TraceEvents (kind='sanitize.*').
        self.violations: List[TraceEvent] = []
        self.checks_run = 0
        self._threads: List[Any] = []
        self._ssts: List[Any] = []
        #: id(sst) -> {col: last pushed value} for counter/flag columns.
        self._shadows: Dict[int, Dict[int, Any]] = {}

    # ----------------------------------------------------------- attachment

    def watch_thread(self, thread: Any) -> None:
        """Track a PredicateThread's shared lock for §3.4 discipline."""
        if thread not in self._threads:
            self._threads.append(thread)

    def watch_sst(self, sst: Any) -> None:
        """Hook an SST's push point (lock discipline + monotonicity)."""
        if sst in self._ssts:
            return
        self._ssts.append(sst)
        # Reset any stale shadow under this id(): CPython reuses object
        # ids after GC, and a dead SST's snapshot must never be compared
        # against a fresh table's columns.
        self._shadows[id(sst)] = {}
        sst.on_push.append(self._on_sst_push)

    def watch_node(self, node: Any) -> None:
        """Hook a NIC's post point (lock discipline for *all* writes,
        including raw verbs / RDMC traffic)."""
        if self._on_node_post not in node.on_post:
            node.on_post.append(self._on_node_post)

    def watch_fabric(self, fabric: Any) -> None:
        """Hook every current node of a fabric (see :meth:`watch_node`)."""
        for node in fabric.nodes.values():
            self.watch_node(node)

    # -------------------------------------------------------------- hooks

    def _on_sst_push(self, sst: Any, col_lo: int, col_hi: int,
                     dst: int) -> None:
        self.checks_run += 1
        sim = sst.fabric.sim
        self._check_lock_discipline(
            sim, sst.node_id,
            f"sst.push cols[{col_lo},{col_hi}) -> node {dst}",
        )
        self._check_monotonic(sim, sst, col_lo, col_hi)

    def _on_node_post(self, qp: Any, snap: Any) -> None:
        self.checks_run += 1
        self._check_lock_discipline(
            qp.src.sim, qp.src.node_id,
            f"post_write {snap.size_bytes}B {qp.src.node_id}->"
            f"{qp.dst.node_id}",
        )

    # ------------------------------------------------------------- checks

    def _check_lock_discipline(self, sim: Any, node_id: int,
                               what: str) -> None:
        poster = getattr(sim, "current_process", None)
        if poster is None:
            return
        for thread in self._threads:
            if thread.sim is not sim:
                continue
            if not getattr(thread.config, "early_lock_release", False):
                continue  # baseline config: posting under the lock is the point
            lock = thread.lock
            if lock.locked and lock.held_by is poster:
                self._violation(
                    sim, node_id, "lock-discipline",
                    f"{what} posted while holding {lock.name!r} "
                    f"(early_lock_release=True demands release-then-post, "
                    f"paper §3.4)",
                )

    def _check_monotonic(self, sim: Any, sst: Any, col_lo: int,
                         col_hi: int) -> None:
        from ...sst.fields import COUNTER, FLAG

        shadow = self._shadows.setdefault(id(sst), {})
        for col in range(col_lo, col_hi):
            spec = sst.layout.spec(col)
            if spec.kind not in (COUNTER, FLAG):
                continue
            value = sst.read_own(col)
            prev = shadow.get(col)
            if prev is not None:
                regressed = (
                    (spec.kind == COUNTER and value < prev)
                    or (spec.kind == FLAG and bool(prev) and not value)
                )
                if regressed:
                    self._violation(
                        sim, sst.node_id, "monotonicity",
                        f"{spec.kind} column {spec.name!r} regressed "
                        f"across pushes: {prev!r} -> {value!r} "
                        f"(batched acks/§3.4 are unsound; some write "
                        f"bypassed SST.set)",
                    )
            shadow[col] = value

    # ---------------------------------------------------------- reporting

    def _violation(self, sim: Any, node: int, kind: str,
                   detail: str) -> None:
        event = TraceEvent(sim.now, node, f"sanitize.{kind}", detail)
        self.violations.append(event)
        if self.tracer is not None:
            self.tracer.record(event.time, event.node, event.kind,
                               event.detail)
        if self.strict:
            raise SanitizerError(str(event))

    def report(self) -> str:
        """Human-readable summary of the run."""
        lines = [
            f"sanitizer: {self.checks_run} checks, "
            f"{len(self.violations)} violation(s), "
            f"{len(self._ssts)} SST(s), {len(self._threads)} thread(s) "
            f"watched"
        ]
        lines.extend(str(v) for v in self.violations)
        return "\n".join(lines)


# ==========================================================================
# Global (process-wide) installation — the SPINDLE_SANITIZE=1 path
# ==========================================================================

_GLOBAL: Optional[Sanitizer] = None
_PATCHED: Dict[str, Any] = {}


def global_sanitizer() -> Optional[Sanitizer]:
    """The installed process-wide sanitizer, if any."""
    return _GLOBAL


def enable_global(strict: bool = True, tracer: Any = None) -> Sanitizer:
    """Install a process-wide sanitizer.

    Wraps ``SST.__init__``, ``PredicateThread.__init__`` and
    ``RdmaFabric.add_node`` so that every instance created afterwards is
    watched automatically — this is how ``SPINDLE_SANITIZE=1`` covers
    the whole test suite without touching individual tests. Idempotent.
    """
    global _GLOBAL
    if _GLOBAL is not None:
        return _GLOBAL

    # Initialize repro.core first: predicates.framework participates in
    # an import cycle with core that only resolves core-side-first.
    from ... import core as _core  # noqa: F401
    from ...predicates.framework import PredicateThread
    from ...rdma.fabric import RdmaFabric
    from ...sst.table import SST

    sanitizer = Sanitizer(strict=strict, tracer=tracer)

    orig_sst_init = SST.__init__
    orig_thread_init = PredicateThread.__init__
    orig_add_node = RdmaFabric.add_node

    def sst_init(self, *args, **kwargs):
        orig_sst_init(self, *args, **kwargs)
        sanitizer.watch_sst(self)

    def thread_init(self, *args, **kwargs):
        orig_thread_init(self, *args, **kwargs)
        sanitizer.watch_thread(self)

    def add_node(self, *args, **kwargs):
        node = orig_add_node(self, *args, **kwargs)
        sanitizer.watch_node(node)
        return node

    SST.__init__ = sst_init
    PredicateThread.__init__ = thread_init
    RdmaFabric.add_node = add_node
    _PATCHED.update(
        sst=orig_sst_init, thread=orig_thread_init, add_node=orig_add_node
    )
    _GLOBAL = sanitizer
    return sanitizer


def disable_global() -> Optional[Sanitizer]:
    """Undo :func:`enable_global`; returns the sanitizer for inspection."""
    global _GLOBAL
    if _GLOBAL is None:
        return None
    from ... import core as _core  # noqa: F401 (import-cycle ordering)
    from ...predicates.framework import PredicateThread
    from ...rdma.fabric import RdmaFabric
    from ...sst.table import SST

    SST.__init__ = _PATCHED.pop("sst")
    PredicateThread.__init__ = _PATCHED.pop("thread")
    RdmaFabric.add_node = _PATCHED.pop("add_node")
    sanitizer, _GLOBAL = _GLOBAL, None
    return sanitizer

"""Whole-program symbol table and call graph for spindle-check.

The PR-1 lint passes are intraprocedural: each looks at one module in
isolation. The two check passes (lockset, determinism) need to reason
about *reachability* — "is this write reachable from the predicate
thread?", "does this wall-clock read sit under a simulation event
handler?" — which requires a (heuristic) view of the whole program.

This module builds that view with stdlib ``ast`` only:

* a **symbol table**: every function/method in the scanned tree, keyed
  by ``module::Class.method`` qualname, with its AST, enclosing class,
  and generator-ness;
* a **call graph**: name-based resolution of every call site.  No type
  inference is attempted; ``self.foo()`` prefers methods of the same
  class, ``x.foo()`` resolves to *every* method named ``foo`` — a
  deliberate over-approximation (reachability must never miss a real
  path; extra edges only make downstream passes more conservative);
* **concurrency roots**: the entry points from which simulated threads
  of control run — generator functions (simulated processes are
  generators), ``evaluate``/``trigger`` methods of ``*Predicate``
  classes (run by the predicate thread), and *address-taken* functions
  (passed as callbacks to ``call_after``/``spawn``/hook lists, so the
  simulator can invoke them later).

Soundness caveats are documented in docs/CHECK.md: dynamic dispatch is
resolved by method *name*, so the graph over-approximates; code called
only through ``getattr``/``exec`` is invisible to root detection unless
it is a generator.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["CallSite", "FunctionInfo", "ModuleInfo", "Program",
           "build_program", "module_name_for"]


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body.

    ``kind`` is how the callee was spelled:

    * ``"name"`` — ``foo(...)``;
    * ``"self"`` — ``self.foo(...)`` (method of the enclosing class);
    * ``"attr"`` — ``x.foo(...)`` on any other receiver.
    """

    kind: str
    name: str
    line: int


@dataclass
class FunctionInfo:
    """Symbol-table entry for one function or method."""

    qualname: str                  # "module::Class.method" / "module::func"
    module: str
    path: str
    name: str                      # bare function name
    cls: Optional[str]             # innermost enclosing class, if a method
    node: ast.AST                  # FunctionDef / AsyncFunctionDef
    is_generator: bool = False
    calls: List[CallSite] = field(default_factory=list)
    #: Function names referenced in *argument position* (address taken):
    #: ``sim.spawn(self._run())`` references nothing, but
    #: ``sst.on_push.append(self._on_sst_push)`` references
    #: ``_on_sst_push`` — the simulator may call it later.
    arg_refs: Set[str] = field(default_factory=set)


@dataclass
class ModuleInfo:
    """One parsed module of the scanned program."""

    name: str
    path: str                      # display (repo-relative) path
    tree: ast.Module
    source_lines: Sequence[str]
    #: class name -> list of base-class names (tail identifiers).
    classes: Dict[str, List[str]] = field(default_factory=dict)


def module_name_for(path: str) -> str:
    """Derive a dotted module name from a display path.

    ``src/repro/shard/router.py`` -> ``repro.shard.router``; paths
    outside a ``src`` root keep all components (``tests/foo.py`` ->
    ``tests.foo``).
    """
    parts = path.replace(os.sep, "/").split("/")
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    while parts and parts[0] in ("src", ".", ""):
        parts = parts[1:]
    return ".".join(parts) or "<module>"


class Program:
    """The symbol table + call graph over a set of parsed modules."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        # name-based resolution indexes (sorted at finalize time so that
        # traversal order — and therefore finding order — is stable).
        self._methods_by_name: Dict[str, List[str]] = {}
        self._methods_by_class: Dict[Tuple[str, str], List[str]] = {}
        self._funcs_by_name: Dict[str, List[str]] = {}
        self._funcs_by_module: Dict[Tuple[str, str], List[str]] = {}
        self._finalized = False

    # ------------------------------------------------------------- building

    def add_module(self, name: str, path: str, tree: ast.Module,
                   source_lines: Sequence[str]) -> None:
        info = ModuleInfo(name=name, path=path, tree=tree,
                          source_lines=source_lines)
        self.modules[name] = info
        self._collect(info)
        self._finalized = False

    def _collect(self, mod: ModuleInfo) -> None:
        def visit(node: ast.AST, scope: str, cls: Optional[str]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    mod.classes[child.name] = _base_names(child)
                    inner = f"{scope}.{child.name}" if scope else child.name
                    visit(child, inner, child.name)
                elif isinstance(child, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                    inner = f"{scope}.{child.name}" if scope else child.name
                    qual = f"{mod.name}::{inner}"
                    fi = FunctionInfo(
                        qualname=qual, module=mod.name, path=mod.path,
                        name=child.name, cls=cls, node=child,
                    )
                    _scan_body(fi, child)
                    self.functions[qual] = fi
                    # a nested def's own nested defs keep the outer class
                    visit(child, inner, cls)
                else:
                    visit(child, scope, cls)

        visit(mod.tree, "", None)

    def _finalize(self) -> None:
        if self._finalized:
            return
        self._methods_by_name.clear()
        self._methods_by_class.clear()
        self._funcs_by_name.clear()
        self._funcs_by_module.clear()
        for qual in sorted(self.functions):
            fi = self.functions[qual]
            if fi.cls is not None:
                self._methods_by_name.setdefault(fi.name, []).append(qual)
                self._methods_by_class.setdefault(
                    (fi.cls, fi.name), []).append(qual)
            else:
                self._funcs_by_name.setdefault(fi.name, []).append(qual)
                self._funcs_by_module.setdefault(
                    (fi.module, fi.name), []).append(qual)
        self._finalized = True

    # ------------------------------------------------------------ resolution

    def resolve(self, caller: FunctionInfo, site: CallSite) -> List[str]:
        """Candidate callee qualnames for one call site (may be empty)."""
        self._finalize()
        if site.kind == "self" and caller.cls is not None:
            exact = self._methods_by_class.get((caller.cls, site.name))
            if exact:
                return list(exact)
            return list(self._methods_by_name.get(site.name, ()))
        if site.kind == "attr" or site.kind == "self":
            out = list(self._methods_by_name.get(site.name, ()))
            out.extend(self._funcs_by_name.get(site.name, ()))
            return out
        # bare name: same module first, else any module-level function
        exact = self._funcs_by_module.get((caller.module, site.name))
        if exact:
            return list(exact)
        return list(self._funcs_by_name.get(site.name, ()))

    def callees(self, qualname: str) -> List[str]:
        """Sorted, deduplicated callee set of one function."""
        fi = self.functions[qualname]
        out: Set[str] = set()
        for site in fi.calls:
            out.update(self.resolve(fi, site))
        return sorted(out)

    def reachable(self, roots: Iterable[str]) -> Set[str]:
        """Transitive closure of the call graph from ``roots``."""
        seen: Set[str] = set()
        stack = [r for r in sorted(set(roots)) if r in self.functions]
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            for callee in self.callees(qual):
                if callee not in seen:
                    stack.append(callee)
        return seen

    # ----------------------------------------------------------------- roots

    def concurrency_roots(self) -> Dict[str, str]:
        """Entry points of simulated threads of control.

        Returns ``{qualname: why}`` where ``why`` is one of
        ``"generator"``, ``"predicate"``, or ``"callback"``.  Sorted
        construction keeps downstream reports deterministic.
        """
        self._finalize()
        roots: Dict[str, str] = {}
        referenced: Set[str] = set()
        for qual in sorted(self.functions):
            referenced.update(self.functions[qual].arg_refs)
        for qual in sorted(self.functions):
            fi = self.functions[qual]
            mod = self.modules.get(fi.module)
            if fi.cls is not None and fi.name in ("evaluate", "trigger"):
                bases = mod.classes.get(fi.cls, []) if mod else []
                if any(b.endswith("Predicate") for b in bases):
                    roots[qual] = "predicate"
                    continue
            if fi.is_generator:
                roots[qual] = "generator"
            elif fi.name in referenced:
                roots[qual] = "callback"
        return roots


# --------------------------------------------------------------------------
# AST scanning helpers
# --------------------------------------------------------------------------


def _base_names(cls: ast.ClassDef) -> List[str]:
    names = []
    for base in cls.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _scan_body(fi: FunctionInfo, fn: ast.AST) -> None:
    """Record call sites, generator-ness, and address-taken references,
    without descending into nested function/class definitions (they get
    their own FunctionInfo)."""
    body = fn.body  # type: ignore[attr-defined]
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            fi.is_generator = True
        if isinstance(node, ast.Call):
            line = getattr(node, "lineno", 1)
            func = node.func
            if isinstance(func, ast.Name):
                fi.calls.append(CallSite("name", func.id, line))
            elif isinstance(func, ast.Attribute):
                recv = func.value
                kind = ("self" if isinstance(recv, ast.Name)
                        and recv.id in ("self", "cls") else "attr")
                fi.calls.append(CallSite(kind, func.attr, line))
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                ref = _callable_ref(arg)
                if ref is not None:
                    fi.arg_refs.add(ref)
        stack.extend(ast.iter_child_nodes(node))


def _callable_ref(node: ast.expr) -> Optional[str]:
    """Name of a function referenced (not called) in argument position."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


# --------------------------------------------------------------------------
# Entry point
# --------------------------------------------------------------------------


def build_program(sources: Iterable[Tuple[str, str]]) -> Program:
    """Build a :class:`Program` from ``(display_path, source)`` pairs.

    Unparsable files are skipped here — the runner reports them as
    errors through the ordinary per-file lint path, so double-reporting
    would only add noise.
    """
    program = Program()
    for path, source in sources:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            continue
        program.add_module(module_name_for(path), path, tree,
                           source.splitlines())
    return program

"""spindle-lint: static invariant checks + runtime sanitizer.

The Spindle stack rests on three invariants the paper states but code
can silently violate (see docs/LINT.md):

* **SST monotonicity** (§2.2) — counter/flag columns never regress;
  batched acknowledgments (§3.2) and early lock release (§3.4) are
  unsound without it.
* **Predicate purity** (§2.4) — ``Predicate.evaluate`` is side-effect
  free and returns ``(cpu_cost, value)``.
* **Lock discipline** (§3.4) — when ``early_lock_release`` is on, RDMA
  posts happen *after* the shared predicate lock is released, via the
  deferred-posts generator returned by ``trigger``.

The *static half* (:mod:`passes`, :mod:`runner`) checks these with
stdlib-``ast`` analysis; the *runtime half* (:mod:`sanitizer`) asserts
them on every push during simulation. Both are wired into the
``spindle-repro lint`` CLI subcommand and the ``SPINDLE_SANITIZE=1``
pytest fixture.
"""

from .check import (
    CheckReport,
    check_paths,
    check_sources,
    format_check_report,
)
from .findings import Finding, load_baseline, parse_suppressions
from .hb import HBTracker, disable_hb, enable_hb, global_tracker
from .passes import ALL_PASSES, LintPass
from .runner import LintReport, format_report, lint_paths, lint_source
from .sanitizer import (
    Sanitizer,
    SanitizerError,
    disable_global,
    enable_global,
    global_sanitizer,
)

__all__ = [
    "CheckReport",
    "check_paths",
    "check_sources",
    "format_check_report",
    "HBTracker",
    "enable_hb",
    "disable_hb",
    "global_tracker",
    "Finding",
    "load_baseline",
    "parse_suppressions",
    "ALL_PASSES",
    "LintPass",
    "LintReport",
    "format_report",
    "lint_paths",
    "lint_source",
    "Sanitizer",
    "SanitizerError",
    "enable_global",
    "disable_global",
    "global_sanitizer",
]

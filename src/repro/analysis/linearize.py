"""Black-box linearizability auditor for KV histories.

Records per-client invoke/complete histories from the KV and shard
workloads and checks them against a sequential register per key — a
Wing–Gong search made tractable by P-compositionality: a history over
many keys is linearizable iff each per-key sub-history is, so keys are
checked independently (the classical result linearizability composes
by object).

Scope and soundness (docs/DURABILITY.md):

* The recorder is *passive*: callbacks append to Python lists, no
  simulated events are created, so attaching it never perturbs a run's
  trace fingerprint.
* Completed operations (an ack observed) MUST be linearized between
  their invoke and complete instants. Pending operations (no ack:
  timeout, crash, in-flight at harvest) MAY be linearized at any point
  after their invoke, or dropped entirely — both futures are legal for
  an operation whose outcome the client never saw.
* Rejected operations (admission control said no) never entered the
  system and are excluded by the caller via :meth:`HistoryRecorder.drop`.
* The checker is sound and complete for the recorded history: a
  reported violation is a real non-linearizable ordering; a pass means
  *some* legal linearization exists. It audits what clients observed —
  it cannot see internal state the workload never read back, which is
  why scenarios append synthetic final reads of every replica.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["Op", "HistoryRecorder", "LinearizabilityReport",
           "check_history", "check_recorder", "selftest",
           "TxnEvent", "TxnHistoryRecorder", "check_txn_history",
           "check_txn_recorder", "txn_selftest"]


@dataclass
class Op:
    """One client operation in the recorded history."""

    client: int
    kind: str                      # "put" | "get"
    key: bytes
    #: put: the value written. get: the value returned (None until
    #: completion; a completed get of a missing key records None too —
    #: disambiguated by ``returned``).
    value: Optional[bytes]
    invoked: float
    returned: Optional[float] = None   # None = pending (no ack observed)

    def describe(self) -> str:
        window = (f"[{self.invoked:.6g}, "
                  f"{'…' if self.returned is None else format(self.returned, '.6g')}]")
        return (f"c{self.client} {self.kind}({self.key!r})"
                f"{'=' + repr(self.value) if self.value is not None else ''} "
                f"@{window}")


class HistoryRecorder:
    """Passive per-client invoke/ack/return history.

    Usage from a workload hook::

        op = recorder.invoke(client, "put", key, value, at=sim.now)
        ...                       # the request runs
        recorder.complete(op, at=sim.now)          # acked
        recorder.drop(op)                          # or: rejected

    Never completing an op leaves it *pending* (timeout / client died
    with the request in flight) — the checker treats its effect as
    optional. All methods are plain list/dict operations: attaching a
    recorder adds no simulated events.
    """

    def __init__(self):
        self.ops: List[Op] = []
        self._dropped: set = set()

    def invoke(self, client: int, kind: str, key: bytes,
               value: Optional[bytes], at: float) -> int:
        if kind not in ("put", "get"):
            raise ValueError(f"unknown op kind {kind!r}")
        self.ops.append(Op(client, kind, bytes(key), value, at))
        return len(self.ops) - 1

    def complete(self, op_id: int, at: float,
                 value: Optional[bytes] = None) -> None:
        op = self.ops[op_id]
        op.returned = at
        if op.kind == "get":
            op.value = value

    def drop(self, op_id: int) -> None:
        """Remove an op that never entered the system (admission-control
        reject): it has no place in the linearized history."""
        self._dropped.add(op_id)

    def record_read(self, client: int, key: bytes,
                    value: Optional[bytes], at: float) -> None:
        """An instantaneous observed read (synthetic final audit reads
        of replica state)."""
        op_id = self.invoke(client, "get", key, None, at)
        self.complete(op_id, at, value)

    def history(self) -> List[Op]:
        return [op for i, op in enumerate(self.ops)
                if i not in self._dropped]

    def __len__(self) -> int:
        return len(self.ops) - len(self._dropped)


@dataclass
class LinearizabilityReport:
    """Outcome of one history check."""

    ok: bool
    keys_checked: int = 0
    ops_checked: int = 0
    pending_ops: int = 0
    violations: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "keys_checked": self.keys_checked,
            "ops_checked": self.ops_checked,
            "pending_ops": self.pending_ops,
            "violations": list(self.violations),
        }


def _check_key(ops: List[Op]) -> Optional[str]:
    """Wing–Gong search over one key's sub-history (register
    semantics, initial value None). Returns None when linearizable,
    else a one-line description of the violation.

    State = (frozenset of remaining op indices, register value);
    failed states are memoized, so the search is exponential only in
    the width of genuinely concurrent operations.
    """
    n = len(ops)
    all_ids = frozenset(range(n))
    failed: set = set()

    def search(remaining: frozenset, state: Optional[bytes]) -> bool:
        completed = [i for i in remaining if ops[i].returned is not None]
        if not completed:
            return True  # pending ops may all be dropped
        key_state = (remaining, state)
        if key_state in failed:
            return False
        # Minimality: the next linearized op must be invoked no later
        # than the earliest return among remaining completed ops
        # (otherwise some completed op returned entirely before it).
        bound = min(ops[i].returned for i in completed)
        for i in remaining:
            op = ops[i]
            if op.invoked > bound:
                continue
            if op.kind == "put":
                new_state = op.value
            else:
                if op.returned is not None and op.value != state:
                    continue  # a completed get must observe the state
                new_state = state
            if search(remaining - {i}, new_state):
                return True
        failed.add(key_state)
        return False

    if search(all_ids, None):
        return None
    completed = sorted((op for op in ops if op.returned is not None),
                       key=lambda op: op.invoked)
    detail = "; ".join(op.describe() for op in completed[:6])
    return (f"key {ops[0].key!r}: no legal linearization of "
            f"{n} ops ({detail}{' …' if len(completed) > 6 else ''})")


def check_history(ops: List[Op]) -> LinearizabilityReport:
    """Check a multi-key history by per-key partitioning."""
    by_key: Dict[bytes, List[Op]] = {}
    for op in ops:
        by_key.setdefault(op.key, []).append(op)
    report = LinearizabilityReport(
        ok=True, keys_checked=len(by_key), ops_checked=len(ops),
        pending_ops=sum(1 for op in ops if op.returned is None))
    for key in sorted(by_key):
        violation = _check_key(by_key[key])
        if violation is not None:
            report.ok = False
            report.violations.append(violation)
    return report


def check_recorder(recorder: HistoryRecorder) -> LinearizabilityReport:
    return check_history(recorder.history())


def selftest() -> Tuple[bool, LinearizabilityReport]:
    """The auditor auditing itself: a legal history must pass and a
    deliberately seeded stale read must be caught. Returns
    ``(selftest_ok, stale_read_report)`` — run by every chaos scenario
    that audits linearizability, so a silently broken checker cannot
    green-light a run."""
    legal = [
        Op(0, "put", b"k", b"v1", 0.0, 1.0),
        Op(1, "put", b"k", b"v2", 2.0, 3.0),
        Op(0, "get", b"k", b"v2", 4.0, 5.0),
        Op(2, "put", b"k", b"v3", 4.5, None),   # pending: droppable
        Op(3, "put", b"q", b"x", 0.0, 9.0),
        Op(4, "get", b"q", b"x", 9.5, 9.6),
    ]
    ok_pass = check_history(legal).ok
    # Seeded violation: the second get observes v1 strictly after
    # put(v2) completed — a stale read no linearization permits.
    stale = [
        Op(0, "put", b"k", b"v1", 0.0, 1.0),
        Op(1, "put", b"k", b"v2", 2.0, 3.0),
        Op(2, "get", b"k", b"v1", 4.0, 5.0),
    ]
    stale_report = check_history(stale)
    return (ok_pass and not stale_report.ok), stale_report


# ---------------------------------------------------------------------------
# Transactional histories: strict serializability at txn granularity
# ---------------------------------------------------------------------------
#
# Multi-key transactions break P-compositionality — a per-key check
# cannot see a txn observed half-applied across two keys — so the txn
# auditor runs one Wing–Gong search over the *whole* key space: state
# is the full store image, a candidate txn applies atomically (all
# reads must match the state, then all writes land together), and the
# same real-time minimality bound enforces strictness. Committed txns
# MUST serialize inside their invoke/return window; pending txns (the
# client never saw a verdict: coordinator crash, in-flight at harvest)
# MAY take effect at any later point or be dropped — exactly the
# presumed-abort ambiguity the WAL recovery resolves.


@dataclass
class TxnEvent:
    """One transaction in the recorded history: the values it observed
    and the writes it claims to have committed atomically."""

    client: int
    #: key -> value observed (None = read as absent).
    reads: Dict[bytes, Optional[bytes]] = field(default_factory=dict)
    #: key -> value written (None = delete).
    writes: Dict[bytes, Optional[bytes]] = field(default_factory=dict)
    invoked: float = 0.0
    returned: Optional[float] = None   # None = pending (no verdict seen)

    def describe(self) -> str:
        window = (f"[{self.invoked:.6g}, "
                  f"{'…' if self.returned is None else format(self.returned, '.6g')}]")
        reads = ",".join(f"{k!r}={v!r}" for k, v in sorted(self.reads.items()))
        writes = ",".join(f"{k!r}:={v!r}" for k, v in sorted(self.writes.items()))
        return f"c{self.client} txn(r:{reads} w:{writes}) @{window}"


class TxnHistoryRecorder:
    """Passive invoke/verdict history of transactions (same contract
    as :class:`HistoryRecorder`: plain list appends, no sim events)."""

    def __init__(self):
        self.txns: List[TxnEvent] = []
        self._dropped: set = set()

    def invoke(self, client: int, at: float) -> int:
        self.txns.append(TxnEvent(client=client, invoked=at))
        return len(self.txns) - 1

    def complete(self, txn_id: int, at: float,
                 reads: Optional[Dict[bytes, Optional[bytes]]] = None,
                 writes: Optional[Dict[bytes, Optional[bytes]]] = None
                 ) -> None:
        """The client saw a commit verdict (aborted txns are
        :meth:`drop`-ped: they promise no effect and made none the
        client could see)."""
        txn = self.txns[txn_id]
        txn.returned = at
        if reads is not None:
            txn.reads = dict(reads)
        if writes is not None:
            txn.writes = dict(writes)

    def drop(self, txn_id: int) -> None:
        self._dropped.add(txn_id)

    def pending_writes(self, txn_id: int,
                       writes: Dict[bytes, Optional[bytes]]) -> None:
        """Attach the write set of a txn with no verdict (client died
        mid-commit): the checker may serialize it anywhere after its
        invoke, or drop it."""
        self.txns[txn_id].writes = dict(writes)

    def record_state_read(self, client: int,
                          state: Dict[bytes, Optional[bytes]],
                          at: float) -> None:
        """Synthetic instantaneous read-only txn observing a replica's
        state over the audited keys (absent keys as None) — the final
        audit read that forces every committed write to be accounted."""
        txn_id = self.invoke(client, at)
        self.complete(txn_id, at, reads=dict(state), writes={})

    def history(self) -> List[TxnEvent]:
        return [t for i, t in enumerate(self.txns) if i not in self._dropped]

    def __len__(self) -> int:
        return len(self.txns) - len(self._dropped)


def check_txn_history(txns: List[TxnEvent]) -> LinearizabilityReport:
    """Strict-serializability check of a transactional history (one
    search over the whole key space — see module commentary)."""
    keys = set()
    for txn in txns:
        keys.update(txn.reads)
        keys.update(txn.writes)
    report = LinearizabilityReport(
        ok=True, keys_checked=len(keys), ops_checked=len(txns),
        pending_ops=sum(1 for t in txns if t.returned is None))
    n = len(txns)
    failed: set = set()

    def apply_writes(state: frozenset, txn: TxnEvent) -> frozenset:
        if not txn.writes:
            return state
        image = dict(state)
        for key, value in txn.writes.items():
            if value is None:
                image.pop(key, None)
            else:
                image[key] = value
        return frozenset(image.items())

    def reads_match(state: frozenset, txn: TxnEvent) -> bool:
        if not txn.reads:
            return True
        image = dict(state)
        return all(image.get(k) == v for k, v in txn.reads.items())

    def search(remaining: frozenset, state: frozenset) -> bool:
        completed = [i for i in remaining if txns[i].returned is not None]
        if not completed:
            return True  # pending txns may all be dropped
        key_state = (remaining, state)
        if key_state in failed:
            return False
        bound = min(txns[i].returned for i in completed)
        for i in sorted(remaining):
            txn = txns[i]
            if txn.invoked > bound:
                continue
            if txn.returned is not None and not reads_match(state, txn):
                continue
            if search(remaining - {i}, apply_writes(state, txn)):
                return True
        failed.add(key_state)
        return False

    if not search(frozenset(range(n)), frozenset()):
        completed = sorted((t for t in txns if t.returned is not None),
                           key=lambda t: t.invoked)
        detail = "; ".join(t.describe() for t in completed[:4])
        report.ok = False
        report.violations.append(
            f"no strict serialization of {n} txns over "
            f"{len(keys)} keys ({detail}{' …' if len(completed) > 4 else ''})")
    return report


def check_txn_recorder(recorder: TxnHistoryRecorder) -> LinearizabilityReport:
    return check_txn_history(recorder.history())


def txn_selftest() -> Tuple[bool, LinearizabilityReport]:
    """Self-audit of the txn checker: a legal transactional history
    must pass; a seeded *atomicity violation* (a txn observed
    half-applied across two keys) must be caught."""
    legal = [
        TxnEvent(0, reads={}, writes={b"a": b"1", b"b": b"1"},
                 invoked=0.0, returned=1.0),
        TxnEvent(1, reads={b"a": b"1"}, writes={b"a": b"2"},
                 invoked=2.0, returned=3.0),
        TxnEvent(2, reads={b"a": b"2", b"b": b"1"}, writes={},
                 invoked=4.0, returned=5.0),
        TxnEvent(3, reads={}, writes={b"c": b"9"},
                 invoked=4.5, returned=None),   # pending: droppable
    ]
    ok_pass = check_txn_history(legal).ok
    # Seeded violation: txn 0 committed {a, b} atomically, but a later
    # read sees a's new value with b missing — half a transaction.
    torn = [
        TxnEvent(0, reads={}, writes={b"a": b"1", b"b": b"1"},
                 invoked=0.0, returned=1.0),
        TxnEvent(1, reads={b"a": b"1", b"b": None}, writes={},
                 invoked=2.0, returned=3.0),
    ]
    torn_report = check_txn_history(torn)
    return (ok_pass and not torn_report.ok), torn_report

"""Black-box linearizability auditor for KV histories.

Records per-client invoke/complete histories from the KV and shard
workloads and checks them against a sequential register per key — a
Wing–Gong search made tractable by P-compositionality: a history over
many keys is linearizable iff each per-key sub-history is, so keys are
checked independently (the classical result linearizability composes
by object).

Scope and soundness (docs/DURABILITY.md):

* The recorder is *passive*: callbacks append to Python lists, no
  simulated events are created, so attaching it never perturbs a run's
  trace fingerprint.
* Completed operations (an ack observed) MUST be linearized between
  their invoke and complete instants. Pending operations (no ack:
  timeout, crash, in-flight at harvest) MAY be linearized at any point
  after their invoke, or dropped entirely — both futures are legal for
  an operation whose outcome the client never saw.
* Rejected operations (admission control said no) never entered the
  system and are excluded by the caller via :meth:`HistoryRecorder.drop`.
* The checker is sound and complete for the recorded history: a
  reported violation is a real non-linearizable ordering; a pass means
  *some* legal linearization exists. It audits what clients observed —
  it cannot see internal state the workload never read back, which is
  why scenarios append synthetic final reads of every replica.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["Op", "HistoryRecorder", "LinearizabilityReport",
           "check_history", "check_recorder", "selftest"]


@dataclass
class Op:
    """One client operation in the recorded history."""

    client: int
    kind: str                      # "put" | "get"
    key: bytes
    #: put: the value written. get: the value returned (None until
    #: completion; a completed get of a missing key records None too —
    #: disambiguated by ``returned``).
    value: Optional[bytes]
    invoked: float
    returned: Optional[float] = None   # None = pending (no ack observed)

    def describe(self) -> str:
        window = (f"[{self.invoked:.6g}, "
                  f"{'…' if self.returned is None else format(self.returned, '.6g')}]")
        return (f"c{self.client} {self.kind}({self.key!r})"
                f"{'=' + repr(self.value) if self.value is not None else ''} "
                f"@{window}")


class HistoryRecorder:
    """Passive per-client invoke/ack/return history.

    Usage from a workload hook::

        op = recorder.invoke(client, "put", key, value, at=sim.now)
        ...                       # the request runs
        recorder.complete(op, at=sim.now)          # acked
        recorder.drop(op)                          # or: rejected

    Never completing an op leaves it *pending* (timeout / client died
    with the request in flight) — the checker treats its effect as
    optional. All methods are plain list/dict operations: attaching a
    recorder adds no simulated events.
    """

    def __init__(self):
        self.ops: List[Op] = []
        self._dropped: set = set()

    def invoke(self, client: int, kind: str, key: bytes,
               value: Optional[bytes], at: float) -> int:
        if kind not in ("put", "get"):
            raise ValueError(f"unknown op kind {kind!r}")
        self.ops.append(Op(client, kind, bytes(key), value, at))
        return len(self.ops) - 1

    def complete(self, op_id: int, at: float,
                 value: Optional[bytes] = None) -> None:
        op = self.ops[op_id]
        op.returned = at
        if op.kind == "get":
            op.value = value

    def drop(self, op_id: int) -> None:
        """Remove an op that never entered the system (admission-control
        reject): it has no place in the linearized history."""
        self._dropped.add(op_id)

    def record_read(self, client: int, key: bytes,
                    value: Optional[bytes], at: float) -> None:
        """An instantaneous observed read (synthetic final audit reads
        of replica state)."""
        op_id = self.invoke(client, "get", key, None, at)
        self.complete(op_id, at, value)

    def history(self) -> List[Op]:
        return [op for i, op in enumerate(self.ops)
                if i not in self._dropped]

    def __len__(self) -> int:
        return len(self.ops) - len(self._dropped)


@dataclass
class LinearizabilityReport:
    """Outcome of one history check."""

    ok: bool
    keys_checked: int = 0
    ops_checked: int = 0
    pending_ops: int = 0
    violations: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "keys_checked": self.keys_checked,
            "ops_checked": self.ops_checked,
            "pending_ops": self.pending_ops,
            "violations": list(self.violations),
        }


def _check_key(ops: List[Op]) -> Optional[str]:
    """Wing–Gong search over one key's sub-history (register
    semantics, initial value None). Returns None when linearizable,
    else a one-line description of the violation.

    State = (frozenset of remaining op indices, register value);
    failed states are memoized, so the search is exponential only in
    the width of genuinely concurrent operations.
    """
    n = len(ops)
    all_ids = frozenset(range(n))
    failed: set = set()

    def search(remaining: frozenset, state: Optional[bytes]) -> bool:
        completed = [i for i in remaining if ops[i].returned is not None]
        if not completed:
            return True  # pending ops may all be dropped
        key_state = (remaining, state)
        if key_state in failed:
            return False
        # Minimality: the next linearized op must be invoked no later
        # than the earliest return among remaining completed ops
        # (otherwise some completed op returned entirely before it).
        bound = min(ops[i].returned for i in completed)
        for i in remaining:
            op = ops[i]
            if op.invoked > bound:
                continue
            if op.kind == "put":
                new_state = op.value
            else:
                if op.returned is not None and op.value != state:
                    continue  # a completed get must observe the state
                new_state = state
            if search(remaining - {i}, new_state):
                return True
        failed.add(key_state)
        return False

    if search(all_ids, None):
        return None
    completed = sorted((op for op in ops if op.returned is not None),
                       key=lambda op: op.invoked)
    detail = "; ".join(op.describe() for op in completed[:6])
    return (f"key {ops[0].key!r}: no legal linearization of "
            f"{n} ops ({detail}{' …' if len(completed) > 6 else ''})")


def check_history(ops: List[Op]) -> LinearizabilityReport:
    """Check a multi-key history by per-key partitioning."""
    by_key: Dict[bytes, List[Op]] = {}
    for op in ops:
        by_key.setdefault(op.key, []).append(op)
    report = LinearizabilityReport(
        ok=True, keys_checked=len(by_key), ops_checked=len(ops),
        pending_ops=sum(1 for op in ops if op.returned is None))
    for key in sorted(by_key):
        violation = _check_key(by_key[key])
        if violation is not None:
            report.ok = False
            report.violations.append(violation)
    return report


def check_recorder(recorder: HistoryRecorder) -> LinearizabilityReport:
    return check_history(recorder.history())


def selftest() -> Tuple[bool, LinearizabilityReport]:
    """The auditor auditing itself: a legal history must pass and a
    deliberately seeded stale read must be caught. Returns
    ``(selftest_ok, stale_read_report)`` — run by every chaos scenario
    that audits linearizability, so a silently broken checker cannot
    green-light a run."""
    legal = [
        Op(0, "put", b"k", b"v1", 0.0, 1.0),
        Op(1, "put", b"k", b"v2", 2.0, 3.0),
        Op(0, "get", b"k", b"v2", 4.0, 5.0),
        Op(2, "put", b"k", b"v3", 4.5, None),   # pending: droppable
        Op(3, "put", b"q", b"x", 0.0, 9.0),
        Op(4, "get", b"q", b"x", 9.5, 9.6),
    ]
    ok_pass = check_history(legal).ok
    # Seeded violation: the second get observes v1 strictly after
    # put(v2) completed — a stale read no linearization permits.
    stale = [
        Op(0, "put", b"k", b"v1", 0.0, 1.0),
        Op(1, "put", b"k", b"v2", 2.0, 3.0),
        Op(2, "get", b"k", b"v1", 4.0, 5.0),
    ]
    stale_report = check_history(stale)
    return (ok_pass and not stale_report.ok), stale_report

"""Analysis: paper-style result formatting for the benchmark harness."""

from .linearize import (
    HistoryRecorder,
    LinearizabilityReport,
    Op,
    check_history,
    check_recorder,
)
from .linearize import selftest as linearize_selftest
from .report import figure_banner, format_table, gbps, ratio, usec
from .trace import TraceEvent, Tracer

__all__ = ["figure_banner", "format_table", "gbps", "ratio", "usec",
           "Tracer", "TraceEvent",
           "Op", "HistoryRecorder", "LinearizabilityReport",
           "check_history", "check_recorder", "linearize_selftest"]

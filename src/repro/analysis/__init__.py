"""Analysis: paper-style result formatting for the benchmark harness."""

from .report import figure_banner, format_table, gbps, ratio, usec
from .trace import TraceEvent, Tracer

__all__ = ["figure_banner", "format_table", "gbps", "ratio", "usec",
           "Tracer", "TraceEvent"]

"""Result formatting: paper-style tables for the benchmark harness.

Every benchmark prints the same rows/series the paper plots, through
these helpers, so EXPERIMENTS.md entries can be regenerated verbatim.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["format_table", "figure_banner", "gbps", "usec", "ratio"]


def gbps(bytes_per_second: float) -> str:
    """Format a throughput in the paper's GB/s units."""
    return f"{bytes_per_second / 1e9:.2f}"


def usec(seconds: float) -> str:
    """Format a latency in microseconds."""
    value = seconds * 1e6
    if value >= 1000:
        return f"{value:.0f}"
    return f"{value:.1f}"


def ratio(a: float, b: float) -> str:
    """Format a speedup ratio a/b."""
    if b == 0:
        return "inf"
    return f"{a / b:.1f}x"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Render an ASCII table with right-aligned numeric-ish columns."""
    rows = [[str(c) for c in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row):
        return " | ".join(cell.rjust(w) for cell, w in zip(row, widths))
    lines = [fmt(headers), "-+-".join("-" * w for w in widths)]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def figure_banner(figure: str, title: str, paper_claim: str) -> str:
    """Header printed above each benchmark's table."""
    bar = "=" * 72
    return (f"\n{bar}\n{figure}: {title}\n"
            f"paper: {paper_claim}\n{bar}")

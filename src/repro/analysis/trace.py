"""Protocol event tracing: a timeline of what the fabric and threads did.

Attach a :class:`Tracer` to a cluster before running a workload and get
a timestamped event log — RDMA write arrivals, deliveries, null
announcements, view-change steps — for debugging protocol behaviour or
producing timelines for figures.

    tracer = Tracer(cluster)
    tracer.attach()
    ... run workload ...
    print(tracer.render(limit=50))
    arrivals = tracer.select(kind="write")
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One timeline entry."""

    time: float
    node: int
    kind: str
    detail: str

    def __str__(self) -> str:
        return f"{self.time * 1e6:12.3f} us  node {self.node:<3} {self.kind:<10} {self.detail}"


class Tracer:
    """Collects protocol events from a built cluster."""

    def __init__(self, cluster, capacity: int = 100_000):
        self.cluster = cluster
        self.capacity = capacity
        self.events: List[TraceEvent] = []
        self.dropped = 0
        self._attached = False

    # ---------------------------------------------------------------- wiring

    def attach(self) -> None:
        """Hook write arrivals and delivery upcalls on every node."""
        if self._attached:
            raise RuntimeError("tracer already attached")
        self._attached = True
        sim = self.cluster.sim
        for node_id, group in self.cluster.groups.items():
            rdma_node = self.cluster.fabric.nodes[node_id]
            rdma_node.on_remote_write.append(
                self._write_hook(sim, node_id)
            )
            for subgroup_id in group.multicasts:
                group.on_delivery(
                    subgroup_id, self._delivery_hook(sim, node_id, subgroup_id)
                )

    def _write_hook(self, sim, node_id: int) -> Callable:
        def hook(region, snap):
            self.record(sim.now, node_id, "write",
                        f"{snap.size_bytes}B into {region.name} "
                        f"@cell{snap.offset}")

        return hook

    def _delivery_hook(self, sim, node_id: int, subgroup_id: int) -> Callable:
        def hook(delivery):
            self.record(sim.now, node_id, "deliver",
                        f"sg{subgroup_id} seq={delivery.seq} "
                        f"from={delivery.sender} {delivery.size}B")

        return hook

    def record(self, time: float, node: int, kind: str, detail: str) -> None:
        """Add an event (also usable directly by applications)."""
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(TraceEvent(time, node, kind, detail))

    # ---------------------------------------------------------------- queries

    def select(self, kind: Optional[str] = None,
               node: Optional[int] = None,
               since: float = 0.0) -> List[TraceEvent]:
        """Filter the timeline."""
        return [
            e for e in self.events
            if (kind is None or e.kind == kind)
            and (node is None or e.node == node)
            and e.time >= since
        ]

    def fingerprint(self) -> str:
        """A sha256 digest over the whole timeline.

        Two runs with the same seed, workload, and fault schedule must
        produce identical fingerprints — the chaos determinism tests and
        the ``spindle-repro chaos`` CLI pin replays on this value.
        Timestamps are rendered with ``repr`` so the digest is exact,
        not rounded.
        """
        h = hashlib.sha256()
        for e in self.events:
            h.update(f"{e.time!r}|{e.node}|{e.kind}|{e.detail}\n".encode())
        return h.hexdigest()

    def counts(self) -> Dict[str, int]:
        """Event counts by kind."""
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def render(self, limit: int = 100, **filters) -> str:
        """Human-readable timeline (first ``limit`` matching events)."""
        selected = self.select(**filters)[:limit]
        lines = [str(e) for e in selected]
        if len(self.select(**filters)) > limit:
            lines.append(f"... ({len(self.select(**filters)) - limit} more)")
        if self.dropped:
            lines.append(f"... ({self.dropped} events dropped at capacity)")
        return "\n".join(lines)

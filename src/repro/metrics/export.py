"""Exporters: canonical JSON and Prometheus text formats.

Both are deterministic — metrics sorted by (name, labels), floats
rendered via ``repr`` — so identical (seed, config) runs export
byte-identical documents (the CI regression gate and the determinism
test both rely on this).
"""

from __future__ import annotations

import json
from typing import Optional

from .registry import Histogram, MetricsRegistry, StageTimer, _iter_samples

__all__ = ["to_json", "to_prometheus"]

#: Prometheus TYPE for each internal kind (timers export as counters).
_PROM_TYPE = {"counter": "counter", "gauge": "gauge",
              "histogram": "histogram", "timer": "counter"}


def _num(value: float) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return repr(value)
    return repr(value)


def to_json(registry: MetricsRegistry, indent: Optional[int] = 2,
            collect: bool = True) -> str:
    """Schema-versioned JSON snapshot (sorted keys, stable floats)."""
    return json.dumps(registry.snapshot(collect=collect),
                      indent=indent, sort_keys=True)


def to_prometheus(registry: MetricsRegistry, collect: bool = True) -> str:
    """Prometheus text exposition format (0.0.4).

    Timers export as two series: ``<name>_seconds_total`` (accumulated
    simulated seconds) and ``<name>_spans_total`` (span count).
    """
    if collect:
        registry.collect()
    lines = []
    seen_headers = set()

    def header(name: str, kind: str, help_text: str) -> None:
        if name in seen_headers:
            return
        seen_headers.add(name)
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {_PROM_TYPE[kind]}")

    def label_str(items, extra=()) -> str:
        merged = tuple(items) + tuple(extra)
        if not merged:
            return ""
        inner = ",".join(f'{k}="{v}"' for k, v in sorted(merged))
        return "{" + inner + "}"

    for metric in _iter_samples(registry):
        if isinstance(metric, Histogram):
            header(metric.name, "histogram", metric.help)
            for le, cum in metric.cumulative():
                lines.append(
                    f"{metric.name}_bucket"
                    f"{label_str(metric.labels, (('le', le),))} {cum}")
            lines.append(
                f"{metric.name}_sum{label_str(metric.labels)} "
                f"{_num(metric.sum)}")
            lines.append(
                f"{metric.name}_count{label_str(metric.labels)} "
                f"{metric.count}")
        elif isinstance(metric, StageTimer):
            header(f"{metric.name}_seconds_total", "timer", metric.help)
            lines.append(
                f"{metric.name}_seconds_total{label_str(metric.labels)} "
                f"{_num(metric.total)}")
            header(f"{metric.name}_spans_total", "timer", "")
            lines.append(
                f"{metric.name}_spans_total{label_str(metric.labels)} "
                f"{metric.count}")
        else:
            header(metric.name, metric.kind, metric.help)
            lines.append(
                f"{metric.name}{label_str(metric.labels)} "
                f"{_num(metric.value)}")
    return "\n".join(lines) + ("\n" if lines else "")

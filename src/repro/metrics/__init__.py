"""repro.metrics — the fabric-wide observability plane.

A typed, zero-cost-when-disabled metrics registry (counters, gauges,
fixed-bucket histograms, simulated-time stage timers) scoped per node /
per subgroup / fabric-wide, with JSON and Prometheus-text exporters and
the per-stage pipeline profile of §4.1.1. Reachable as
``cluster.metrics``; see docs/METRICS.md for the metric catalog.
"""

from .export import to_json, to_prometheus
from .registry import (
    DEFAULT_BATCH_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ScopedRegistry,
    StageTimer,
    null_registry,
    registry_enabled_from_env,
)
from .stages import (
    NESTED_STAGES,
    PARTITION_STAGES,
    STAGE_DELIVERY_PREDICATE,
    STAGE_DELIVERY_UPCALL,
    STAGE_NULL_SEND_ANNOUNCE,
    STAGE_OTHER_PREDICATE,
    STAGE_RECEIVE_PREDICATE,
    STAGE_SEND_PREDICATE,
    STAGE_SEND_SLOT_ACQUIRE,
    STAGE_SST_POST,
    STAGE_TIME,
    check_partition,
    format_stage_profile,
    stage_profile,
)

__all__ = [
    "MetricsRegistry", "ScopedRegistry", "Counter", "Gauge", "Histogram",
    "StageTimer", "null_registry", "registry_enabled_from_env",
    "DEFAULT_BATCH_BUCKETS", "DEFAULT_LATENCY_BUCKETS",
    "to_json", "to_prometheus",
    "STAGE_TIME", "STAGE_SEND_SLOT_ACQUIRE", "STAGE_SST_POST",
    "STAGE_RECEIVE_PREDICATE", "STAGE_NULL_SEND_ANNOUNCE",
    "STAGE_DELIVERY_UPCALL", "STAGE_SEND_PREDICATE",
    "STAGE_DELIVERY_PREDICATE", "STAGE_OTHER_PREDICATE",
    "PARTITION_STAGES", "NESTED_STAGES",
    "stage_profile", "format_stage_profile", "check_partition",
]

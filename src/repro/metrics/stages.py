"""Pipeline-stage names and the per-stage time profile (§4.1.1).

The paper's evaluation decomposes where protocol time goes; we
instrument the five stages it names plus the remaining predicate work,
all under one metric::

    spindle_stage_time_seconds{stage=..., node=..., [subgroup=...], [lock_phase=...]}

Two families:

* **Predicate-thread partition** — every simulated second the polling
  thread is busy lands in exactly one of ``send_predicate``,
  ``receive_predicate``, ``delivery_predicate``, ``other_predicate``
  (membership, durability) or ``sst_post`` (split by ``lock_phase``
  into ``prelock``/``postlock``, §3.4). Their total equals the
  thread's busy time, which is what ``spindle-repro metrics --profile``
  checks and prints.

* **Nested / app-side stages** — ``send_slot_acquire`` (application
  sender blocked on a ring slot, §4.1.1) runs on application threads;
  ``delivery_upcall`` (§3.1/§3.5) is a sub-span *inside* the delivery
  or receive predicate's time. Neither is added to the partition total.

``null_send_announce`` (§3.3) is event-counted rather than timed — the
announcement is a single counter write whose push cost is accounted
under ``sst_post`` like any other control push:
``spindle_nulls_announced_total`` / ``spindle_null_announce_pushes_total``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from .registry import MetricsRegistry

__all__ = [
    "STAGE_TIME", "STAGE_SEND_SLOT_ACQUIRE", "STAGE_SST_POST",
    "STAGE_RECEIVE_PREDICATE", "STAGE_NULL_SEND_ANNOUNCE",
    "STAGE_DELIVERY_UPCALL", "STAGE_SEND_PREDICATE",
    "STAGE_DELIVERY_PREDICATE", "STAGE_OTHER_PREDICATE",
    "PARTITION_STAGES", "NESTED_STAGES",
    "TXN_STAGE_TIME", "TXN_STAGE_EXECUTE", "TXN_STAGE_VALIDATE_OR_LOCK",
    "TXN_STAGE_PREPARE", "TXN_STAGE_SETTLE", "TXN_STAGES",
    "stage_profile", "format_stage_profile",
]

#: The shared stage-timer metric name.
STAGE_TIME = "spindle_stage_time_seconds"

# -- transaction-plane stages (docs/TRANSACTIONS.md) ------------------------
#: Per-stage timer of the txn coordinator:
#: ``spindle_txn_stage_seconds{stage=...}``.
TXN_STAGE_TIME = "spindle_txn_stage_seconds"
TXN_STAGE_EXECUTE = "execute"                   # reads + write buffering
TXN_STAGE_VALIDATE_OR_LOCK = "validate_or_lock"  # OCC fences / 2PL acquires
TXN_STAGE_PREPARE = "prepare"                   # per-shard ordered prepares
TXN_STAGE_SETTLE = "settle"                     # commit/abort settle round
TXN_STAGES = (TXN_STAGE_EXECUTE, TXN_STAGE_VALIDATE_OR_LOCK,
              TXN_STAGE_PREPARE, TXN_STAGE_SETTLE)

# -- the five stages the paper names ----------------------------------------
STAGE_SEND_SLOT_ACQUIRE = "send_slot_acquire"    # §4.1.1 sender wait
STAGE_SST_POST = "sst_post"                      # §3.2/§3.4 (lock_phase label)
STAGE_RECEIVE_PREDICATE = "receive_predicate"    # §2.4 receive fire
STAGE_NULL_SEND_ANNOUNCE = "null_send_announce"  # §3.3 (event counters)
STAGE_DELIVERY_UPCALL = "delivery_upcall"        # §3.1/§3.5

# -- the rest of the predicate-thread partition -----------------------------
STAGE_SEND_PREDICATE = "send_predicate"
STAGE_DELIVERY_PREDICATE = "delivery_predicate"
STAGE_OTHER_PREDICATE = "other_predicate"

#: Stages whose timers partition predicate-thread busy time exactly.
PARTITION_STAGES = (
    STAGE_SEND_PREDICATE,
    STAGE_RECEIVE_PREDICATE,
    STAGE_DELIVERY_PREDICATE,
    STAGE_OTHER_PREDICATE,
    STAGE_SST_POST,
)

#: Sub-spans / app-side spans, reported but not part of the partition.
NESTED_STAGES = (STAGE_SEND_SLOT_ACQUIRE, STAGE_DELIVERY_UPCALL)


def stage_profile(registry: MetricsRegistry) -> Dict[str, Any]:
    """Aggregate the per-stage time breakdown across all labels.

    Returns ``{"stages": {stage: {"seconds": s, "spans": n}},
    "post_phases": {phase: seconds}, "partition_total": s,
    "predicate_busy": s, "nulls_announced": n, "null_announce_pushes": n}``.
    """
    registry.collect()
    stages: Dict[str, Dict[str, float]] = {}
    post_phases: Dict[str, float] = {}
    for metric in registry.metrics(STAGE_TIME):
        labels = dict(metric.labels)
        stage = labels.get("stage", "unknown")
        entry = stages.setdefault(stage, {"seconds": 0.0, "spans": 0})
        entry["seconds"] += metric.total
        entry["spans"] += metric.count
        if stage == STAGE_SST_POST:
            phase = labels.get("lock_phase", "unknown")
            post_phases[phase] = post_phases.get(phase, 0.0) + metric.total
    partition_total = sum(
        stages.get(s, {}).get("seconds", 0.0) for s in PARTITION_STAGES
    )
    busy = sum(m.value for m in registry.metrics("spindle_predicate_busy_seconds"))
    return {
        "stages": stages,
        "post_phases": post_phases,
        "partition_total": partition_total,
        "predicate_busy": busy,
        "nulls_announced": registry.value("spindle_nulls_announced_total"),
        "null_announce_pushes": registry.value(
            "spindle_null_announce_pushes_total"),
    }


def format_stage_profile(profile: Dict[str, Any]) -> str:
    """Render the §4.1.1-style per-stage breakdown as a table."""
    from ..analysis.report import format_table

    stages = profile["stages"]
    busy = profile["predicate_busy"]
    rows: List[List[str]] = []

    def row(label: str, seconds: float, spans: Any) -> List[str]:
        share = f"{seconds / busy * 100:5.1f}%" if busy else "    -"
        return [label, f"{seconds * 1e3:10.3f}", share, f"{spans}"]

    for stage in PARTITION_STAGES:
        entry = stages.get(stage)
        if entry is None:
            continue
        rows.append(row(stage, entry["seconds"], int(entry["spans"])))
        if stage == STAGE_SST_POST:
            for phase, seconds in sorted(profile["post_phases"].items()):
                rows.append(["  . " + phase, f"{seconds * 1e3:10.3f}", "", ""])
    rows.append(["stage total", f"{profile['partition_total'] * 1e3:10.3f}",
                 "", ""])
    rows.append(["predicate busy", f"{busy * 1e3:10.3f}", "", ""])
    for stage in NESTED_STAGES:
        entry = stages.get(stage)
        if entry is None:
            continue
        rows.append(row(f"{stage} (nested)", entry["seconds"],
                        int(entry["spans"])))
    rows.append([STAGE_NULL_SEND_ANNOUNCE, "-", "",
                 f"{int(profile['nulls_announced'])} nulls / "
                 f"{int(profile['null_announce_pushes'])} pushes"])
    return format_table(["stage", "time (ms)", "share", "events"], rows)


def check_partition(profile: Dict[str, Any], tolerance: float = 0.05
                    ) -> Tuple[bool, float]:
    """Is the stage total within ``tolerance`` of predicate busy time?"""
    busy = profile["predicate_busy"]
    if busy == 0:
        return True, 0.0
    deviation = abs(profile["partition_total"] - busy) / busy
    return deviation <= tolerance, deviation

"""The metrics registry: typed, zero-cost-when-disabled instrumentation.

A :class:`MetricsRegistry` holds four metric kinds, all identified by a
name plus a sorted label set (Prometheus-style):

* :class:`Counter` — monotonically non-decreasing totals (messages
  delivered, RDMA writes posted, drops by reason);
* :class:`Gauge` — last-written values (predicate-thread busy time,
  current view id);
* :class:`Histogram` — fixed-bucket distributions (per-stage batch
  sizes, Fig. 7; delivery latency, Figs. 5/17);
* :class:`StageTimer` — accumulated *simulated* time per pipeline stage
  (§4.1.1's "time spent posting writes" generalized to every stage).

Scoping: ``registry.scoped(node="3", subgroup="0")`` returns a view
that stamps those labels onto every metric it creates, so per-node and
per-subgroup instruments share one fabric-wide registry (reachable as
``cluster.metrics``). Scopes nest.

Zero cost when disabled: a registry built with ``enabled=False`` (or
the module-level :func:`null_registry`) hands out shared no-op metric
singletons, so instrumented hot paths pay one attribute load and a
no-op call — there is nothing to flush, snapshot, or export.

Determinism: metrics hold only simulated-time quantities; snapshots are
sorted by (name, labels), so two runs with identical (seed, config)
produce byte-identical JSON exports (tested).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "StageTimer",
    "MetricsRegistry",
    "ScopedRegistry",
    "null_registry",
    "DEFAULT_BATCH_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Batch-size buckets (messages per batch), cf. Fig. 7's x-axis.
DEFAULT_BATCH_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)

#: Delivery-latency buckets in seconds (1 µs .. ~100 ms, log-ish).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4,
    1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1,
)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Dict[str, Any]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def format_key(name: str, labels: LabelItems) -> str:
    """Canonical ``name{k="v",...}`` identity string (labels sorted)."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class _Metric:
    """Common identity for the four metric kinds."""

    kind = "metric"
    __slots__ = ("name", "labels", "help")

    def __init__(self, name: str, labels: LabelItems, help: str = ""):
        self.name = name
        self.labels = labels
        self.help = help

    @property
    def key(self) -> str:
        return format_key(self.name, self.labels)

    def sample(self) -> Dict[str, Any]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.key}>"


class Counter(_Metric):
    """A monotonically non-decreasing total (int or float)."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, name: str, labels: LabelItems, help: str = ""):
        super().__init__(name, labels, help)
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.key} cannot decrease by {amount}")
        self.value += amount

    def set_to(self, value: float) -> None:
        """Mirror an externally-tracked monotonic total (collectors)."""
        if value < self.value:
            raise ValueError(
                f"counter {self.key} must not decrease: {self.value} -> {value}"
            )
        self.value = value

    def sample(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Gauge(_Metric):
    """A last-write-wins value."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self, name: str, labels: LabelItems, help: str = ""):
        super().__init__(name, labels, help)
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount

    def sample(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Histogram(_Metric):
    """A fixed-bucket histogram with cumulative-export semantics.

    ``bounds`` are inclusive upper bucket edges; one implicit ``+Inf``
    bucket catches the rest. Internally counts are per-bucket (not
    cumulative); exports produce the cumulative Prometheus form.
    """

    kind = "histogram"
    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, name: str, labels: LabelItems,
                 bounds: Sequence[float], help: str = ""):
        super().__init__(name, labels, help)
        bounds = tuple(bounds)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"histogram bounds must be strictly sorted: {bounds}")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum: float = 0
        self.count: int = 0

    def observe(self, value: float, count: int = 1) -> None:
        self.counts[bisect_left(self.bounds, value)] += count
        self.sum += value * count
        self.count += count

    def cumulative(self) -> List[Tuple[str, int]]:
        """[(le, cumulative_count)] including the +Inf bucket."""
        out: List[Tuple[str, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.counts):
            running += n
            out.append((format_bound(bound), running))
        out.append(("+Inf", running + self.counts[-1]))
        return out

    def sample(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "buckets": {le: n for le, n in self.cumulative()},
            "sum": self.sum,
            "count": self.count,
        }


class StageTimer(_Metric):
    """Accumulated simulated seconds (plus span count) for one stage.

    Two usage styles:

    * explicit — ``timer.add(elapsed)`` with a caller-computed span;
    * clocked — ``timer.start(); ...; timer.stop()`` against the
      registry's (simulated) clock. Re-entrant: nested start/stop pairs
      on the *same* timer count only the outermost span, so a stage
      that recursively re-enters itself is not double-billed.
    """

    kind = "timer"
    __slots__ = ("total", "count", "_clock", "_depth", "_span_start")

    def __init__(self, name: str, labels: LabelItems,
                 clock: Callable[[], float], help: str = ""):
        super().__init__(name, labels, help)
        self.total: float = 0.0
        self.count: int = 0
        self._clock = clock
        self._depth = 0
        self._span_start = 0.0

    def add(self, elapsed: float, count: int = 1) -> None:
        if elapsed < 0:
            raise ValueError(f"timer {self.key} got negative span {elapsed}")
        self.total += elapsed
        self.count += count

    def start(self) -> None:
        if self._depth == 0:
            self._span_start = self._clock()
        self._depth += 1

    def stop(self) -> None:
        if self._depth == 0:
            raise RuntimeError(f"timer {self.key} stopped while not running")
        self._depth -= 1
        if self._depth == 0:
            self.add(self._clock() - self._span_start)

    def __enter__(self) -> "StageTimer":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    def sample(self) -> Dict[str, Any]:
        return {"kind": self.kind, "total_seconds": self.total,
                "count": self.count}


def format_bound(bound: float) -> str:
    """Deterministic text form of a bucket edge (ints without dots)."""
    if bound == int(bound):
        return str(int(bound))
    return repr(bound)


# ---------------------------------------------------------------------------
# Null (disabled) metrics: shared no-op singletons.
# ---------------------------------------------------------------------------


class _NullMetric:
    __slots__ = ()
    kind = "null"
    name = "null"
    labels: LabelItems = ()
    key = "null"
    value = 0
    total = 0.0
    count = 0
    sum = 0

    def inc(self, amount: float = 1) -> None:
        pass

    def set_to(self, value: float) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float, count: int = 1) -> None:
        pass

    def observe(self, value: float, count: int = 1) -> None:
        pass

    def start(self) -> None:
        pass

    def stop(self) -> None:
        pass

    def __enter__(self) -> "_NullMetric":
        return self

    def __exit__(self, *exc: Any) -> None:
        pass

    def __bool__(self) -> bool:
        # Lets call sites gate optional extra work on `if metric:`.
        return False


NULL_METRIC = _NullMetric()


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class MetricsRegistry:
    """Fabric-wide metric store with label scoping and pull collectors.

    ``clock`` supplies *simulated* time for clocked timers (wire it to
    ``sim.now``); collectors are zero-hot-path-cost mirrors of existing
    structures (NIC drop dicts, SST push counts), invoked only at
    snapshot/export time.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 enabled: bool = True):
        self.enabled = enabled
        self.clock: Callable[[], float] = clock if clock is not None else (lambda: 0.0)
        self._metrics: Dict[Tuple[str, LabelItems], _Metric] = {}
        self._collectors: List[Callable[[], None]] = []

    # ------------------------------------------------------------- factories

    def _get(self, cls: type, name: str, labels: Dict[str, Any],
             help: str, *args: Any) -> Any:
        key = (name, _label_items(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1], *args, help=help)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {format_key(*key)} already registered as "
                f"{metric.kind}, not {cls.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        if not self.enabled:
            return NULL_METRIC  # type: ignore[return-value]
        return self._get(Counter, name, labels, help)

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        if not self.enabled:
            return NULL_METRIC  # type: ignore[return-value]
        return self._get(Gauge, name, labels, help)

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BATCH_BUCKETS,
                  help: str = "", **labels: Any) -> Histogram:
        if not self.enabled:
            return NULL_METRIC  # type: ignore[return-value]
        return self._get(Histogram, name, labels, help, buckets)

    def timer(self, name: str, help: str = "", **labels: Any) -> StageTimer:
        if not self.enabled:
            return NULL_METRIC  # type: ignore[return-value]
        return self._get(StageTimer, name, labels, help, self.clock)

    def scoped(self, **labels: Any) -> "ScopedRegistry":
        """A view that stamps ``labels`` onto every metric it creates."""
        return ScopedRegistry(self, _label_items(labels))

    # ------------------------------------------------------------ collectors

    def add_collector(self, fn: Callable[[], None]) -> None:
        """Register a pull hook run before every snapshot/export; it
        should mirror external state into metrics via ``set_to``/``set``."""
        self._collectors.append(fn)

    def collect(self) -> None:
        for fn in self._collectors:
            fn()

    # --------------------------------------------------------------- queries

    def metrics(self, name: Optional[str] = None,
                **labels: Any) -> List[_Metric]:
        """All metrics, optionally filtered by name and a label subset."""
        want = _label_items(labels)
        out = []
        for metric in self._metrics.values():
            if name is not None and metric.name != name:
                continue
            if want and not set(want).issubset(metric.labels):
                continue
            out.append(metric)
        return out

    def value(self, name: str, **labels: Any) -> float:
        """Sum of counter/gauge values (timer totals) matching a filter."""
        total: float = 0
        for metric in self.metrics(name, **labels):
            total += getattr(metric, "value", getattr(metric, "total", 0))
        return total

    # --------------------------------------------------------------- exports

    def snapshot(self, collect: bool = True) -> Dict[str, Any]:
        """Deterministic dict snapshot (schema-versioned, sorted keys)."""
        if collect:
            self.collect()
        body = {m.key: m.sample()
                for m in sorted(self._metrics.values(), key=lambda m: m.key)}
        return {"schema_version": 1, "metrics": body}

    def to_json(self, indent: Optional[int] = 2) -> str:
        from .export import to_json

        return to_json(self, indent=indent)

    def to_prometheus(self) -> str:
        from .export import to_prometheus

        return to_prometheus(self)


class ScopedRegistry:
    """A label-stamping view over a base registry (scopes nest)."""

    __slots__ = ("base", "scope_labels")

    def __init__(self, base: MetricsRegistry, scope_labels: LabelItems):
        self.base = base
        self.scope_labels = scope_labels

    @property
    def enabled(self) -> bool:
        return self.base.enabled

    @property
    def clock(self) -> Callable[[], float]:
        return self.base.clock

    def _merge(self, labels: Dict[str, Any]) -> Dict[str, Any]:
        merged = dict(self.scope_labels)
        merged.update(labels)
        return merged

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        return self.base.counter(name, help=help, **self._merge(labels))

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        return self.base.gauge(name, help=help, **self._merge(labels))

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BATCH_BUCKETS,
                  help: str = "", **labels: Any) -> Histogram:
        return self.base.histogram(name, buckets=buckets, help=help,
                                   **self._merge(labels))

    def timer(self, name: str, help: str = "", **labels: Any) -> StageTimer:
        return self.base.timer(name, help=help, **self._merge(labels))

    def scoped(self, **labels: Any) -> "ScopedRegistry":
        return ScopedRegistry(self.base, _label_items(self._merge(labels)))

    def add_collector(self, fn: Callable[[], None]) -> None:
        self.base.add_collector(fn)

    def metrics(self, name: Optional[str] = None,
                **labels: Any) -> List[_Metric]:
        return self.base.metrics(name, **self._merge(labels))

    def value(self, name: str, **labels: Any) -> float:
        return self.base.value(name, **self._merge(labels))


_NULL_REGISTRY = MetricsRegistry(enabled=False)


def null_registry() -> MetricsRegistry:
    """The shared disabled registry (every factory returns no-ops)."""
    return _NULL_REGISTRY


def registry_enabled_from_env(env: Optional[Dict[str, str]] = None) -> bool:
    """SPINDLE_METRICS=0 disables cluster metrics (default: enabled)."""
    import os

    value = (env or os.environ).get("SPINDLE_METRICS", "1")
    return value.strip().lower() not in ("0", "false", "no", "off")


def _iter_samples(registry: MetricsRegistry) -> Iterable[_Metric]:
    return sorted(registry._metrics.values(), key=lambda m: m.key)

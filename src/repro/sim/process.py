"""Generator-based simulated processes.

A process is a Python generator driven by the :class:`~repro.sim.engine.
Simulator`. The generator expresses the passage of simulated time and
synchronization by *yielding*:

======================  ====================================================
yielded value           meaning
======================  ====================================================
``float | int`` >= 0    sleep for that many simulated seconds
:class:`Event`          wait until the event triggers; ``yield`` evaluates
                        to the event's value
:class:`Process`        join: wait until that process finishes; evaluates
                        to its result
``None``                re-schedule immediately (cooperative yield point)
:class:`AtTime`         sleep until an exact absolute timestamp (used by
                        fast paths that fold several sleeps into one wake)
======================  ====================================================

Exceptions raised inside a process propagate out of ``Simulator.run`` —
a crashing process crashes the simulation, which is the behaviour we want
in tests. A process killed with :meth:`Process.kill` simply never resumes
(used for failure injection at the node level).

A process may also be *suspended* (:meth:`Process.suspend`): its next
resumption — timer expiry, event trigger, join — is deferred until
:meth:`Process.resume`. This models GC-like hiccups and scheduler
stalls for the fault-injection plane (docs/FAULTS.md): the thread is
frozen mid-flight without losing the value it was waiting for.
"""

from __future__ import annotations

from typing import Any, Generator

from .engine import AtTime, SimulationError, Simulator
from .sync import Event

__all__ = ["Process"]


class Process:
    """A simulated thread of control.

    Create via :meth:`Simulator.spawn`. The ``completion`` event triggers
    with the generator's return value when it finishes.
    """

    __slots__ = ("sim", "name", "_gen", "_alive", "result", "completion",
                 "_suspended", "_deferred")

    #: Happens-before tracker hook (repro.analysis.lint.hb): called as
    #: ``hb_hook("kill", process)`` when a process is killed.  A killed
    #: process can never act again, so everything it ever did happens
    #: before everything the killer does next — without this edge, a
    #: crash-restart sequence looks like a race between the two
    #: incarnations of the node's threads.
    hb_hook = None

    def __init__(self, sim: Simulator, gen: Generator[Any, Any, Any], name: str = "proc"):
        if not hasattr(gen, "send"):
            raise SimulationError(f"Process requires a generator, got {type(gen)!r}")
        self.sim = sim
        self.name = name
        self._gen = gen
        self._alive = True
        self._suspended = False
        #: Resumption deferred while suspended: a 1-tuple holding the
        #: value the generator should be sent on resume (None = none).
        self._deferred = None
        self.result: Any = None
        self.completion = Event(sim, name=f"{name}.completion")
        sim.post(self._step, None)

    # ----------------------------------------------------------------- state

    @property
    def alive(self) -> bool:
        """True while the process can still run."""
        return self._alive

    @property
    def suspended(self) -> bool:
        """True while the process is frozen by :meth:`suspend`."""
        return self._suspended

    def kill(self) -> None:
        """Stop the process permanently; it will never be resumed.

        Used for failure injection: a 'crashed' node's threads are killed,
        and any events that later try to resume them are ignored.
        """
        if self._alive:
            self._alive = False
            self._deferred = None
            if Process.hb_hook is not None:
                Process.hb_hook("kill", self)
            self._gen.close()

    # ------------------------------------------------------------ suspension

    def suspend(self) -> None:
        """Freeze the process: its next resumption is deferred.

        A process has at most one outstanding resumption (it waits on
        exactly one timer/event at a time), so deferral needs only a
        single slot. Idempotent; a dead process cannot be suspended.
        """
        if self._alive:
            self._suspended = True

    def resume(self) -> None:
        """Unfreeze a suspended process.

        If a resumption arrived while frozen, it is re-scheduled *now*
        (the stall extends the wait, exactly like a real descheduled
        thread). No-op if the process was not suspended or is dead.
        """
        if not self._suspended:
            return
        self._suspended = False
        if self._deferred is not None and self._alive:
            (value,) = self._deferred
            self._deferred = None
            self.sim.post(self._step, value)

    # ------------------------------------------------------------- execution

    def _step(self, value: Any) -> None:
        """Advance the generator by one yield, interpreting the result."""
        if not self._alive:
            return
        if self._suspended:
            self._deferred = (value,)
            return
        previous = self.sim.current_process
        self.sim.current_process = self
        try:
            yielded = self._gen.send(value)
        except StopIteration as stop:
            self._alive = False
            self.result = stop.value
            self.completion.trigger(stop.value)
            return
        finally:
            self.sim.current_process = previous
        self._dispatch(yielded)

    def _dispatch(self, yielded: Any) -> None:
        """Schedule the next resumption according to the yielded value."""
        # Exact-type checks first: plain float/int sleeps dominate the
        # hot loop, and sleeps/wakeups never need a cancellation handle,
        # so they go through the simulator's no-Timer post paths.
        cls = yielded.__class__
        if cls is float or cls is int:
            if yielded < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded negative delay {yielded}"
                )
            self.sim.post_after(yielded, self._step, None)
        elif cls is AtTime:
            # A process stalled past its target time wakes immediately:
            # "at t" with t already gone means "as soon as possible"
            # (chaos stalls suspend threads across arbitrary windows).
            self.sim.post_at(max(yielded.time, self.sim.now),
                             self._step, None)
        elif isinstance(yielded, Event):
            yielded.add_waiter(self._on_event)
        elif yielded is None:
            self.sim.post(self._step, None)
        elif isinstance(yielded, Process):
            yielded.completion.add_waiter(self._on_event)
        elif isinstance(yielded, (int, float)):  # bool / numeric subclasses
            if yielded < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded negative delay {yielded}"
                )
            self.sim.post_after(float(yielded), self._step, None)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value {yielded!r}"
            )

    def _on_event(self, value: Any) -> None:
        if self._alive:
            self._step(value)

    def __repr__(self) -> str:
        state = "alive" if self._alive else "done"
        return f"<Process {self.name} {state} @{self.sim.now:.9f}>"

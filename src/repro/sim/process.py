"""Generator-based simulated processes.

A process is a Python generator driven by the :class:`~repro.sim.engine.
Simulator`. The generator expresses the passage of simulated time and
synchronization by *yielding*:

======================  ====================================================
yielded value           meaning
======================  ====================================================
``float | int`` >= 0    sleep for that many simulated seconds
:class:`Event`          wait until the event triggers; ``yield`` evaluates
                        to the event's value
:class:`Process`        join: wait until that process finishes; evaluates
                        to its result
``None``                re-schedule immediately (cooperative yield point)
======================  ====================================================

Exceptions raised inside a process propagate out of ``Simulator.run`` —
a crashing process crashes the simulation, which is the behaviour we want
in tests. A process killed with :meth:`Process.kill` simply never resumes
(used for failure injection at the node level).
"""

from __future__ import annotations

from typing import Any, Generator

from .engine import SimulationError, Simulator
from .sync import Event

__all__ = ["Process"]


class Process:
    """A simulated thread of control.

    Create via :meth:`Simulator.spawn`. The ``completion`` event triggers
    with the generator's return value when it finishes.
    """

    __slots__ = ("sim", "name", "_gen", "_alive", "result", "completion")

    def __init__(self, sim: Simulator, gen: Generator[Any, Any, Any], name: str = "proc"):
        if not hasattr(gen, "send"):
            raise SimulationError(f"Process requires a generator, got {type(gen)!r}")
        self.sim = sim
        self.name = name
        self._gen = gen
        self._alive = True
        self.result: Any = None
        self.completion = Event(sim, name=f"{name}.completion")
        sim.call_after(0.0, self._step, None)

    # ----------------------------------------------------------------- state

    @property
    def alive(self) -> bool:
        """True while the process can still run."""
        return self._alive

    def kill(self) -> None:
        """Stop the process permanently; it will never be resumed.

        Used for failure injection: a 'crashed' node's threads are killed,
        and any events that later try to resume them are ignored.
        """
        if self._alive:
            self._alive = False
            self._gen.close()

    # ------------------------------------------------------------- execution

    def _step(self, value: Any) -> None:
        """Advance the generator by one yield, interpreting the result."""
        if not self._alive:
            return
        previous = self.sim.current_process
        self.sim.current_process = self
        try:
            yielded = self._gen.send(value)
        except StopIteration as stop:
            self._alive = False
            self.result = stop.value
            self.completion.trigger(stop.value)
            return
        finally:
            self.sim.current_process = previous
        self._dispatch(yielded)

    def _dispatch(self, yielded: Any) -> None:
        """Schedule the next resumption according to the yielded value."""
        if yielded is None:
            self.sim.call_after(0.0, self._step, None)
        elif isinstance(yielded, (int, float)):
            if yielded < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded negative delay {yielded}"
                )
            self.sim.call_after(float(yielded), self._step, None)
        elif isinstance(yielded, Event):
            yielded.add_waiter(self._on_event)
        elif isinstance(yielded, Process):
            yielded.completion.add_waiter(self._on_event)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value {yielded!r}"
            )

    def _on_event(self, value: Any) -> None:
        if self._alive:
            self._step(value)

    def __repr__(self) -> str:
        state = "alive" if self._alive else "done"
        return f"<Process {self.name} {state} @{self.sim.now:.9f}>"

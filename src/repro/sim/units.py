"""Unit helpers for simulated time (seconds) and data sizes (bytes).

The whole codebase expresses time as float seconds; these tiny helpers
keep literals readable (``us(1.73)`` instead of ``1.73e-6``).
"""

from __future__ import annotations

__all__ = [
    "ns", "us", "ms", "sec",
    "KB", "MB", "GB",
    "gb_per_s", "to_us", "to_ms",
]

KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024


def ns(x: float) -> float:
    """Nanoseconds to seconds."""
    return x * 1e-9


def us(x: float) -> float:
    """Microseconds to seconds."""
    return x * 1e-6


def ms(x: float) -> float:
    """Milliseconds to seconds."""
    return x * 1e-3


def sec(x: float) -> float:
    """Seconds (identity, for symmetry in configs)."""
    return float(x)


def gb_per_s(x: float) -> float:
    """GB/s to bytes/second (decimal GB, matching '12.5 GB/s' link specs)."""
    return x * 1e9


def to_us(seconds: float) -> float:
    """Seconds to microseconds (for reporting)."""
    return seconds * 1e6


def to_ms(seconds: float) -> float:
    """Seconds to milliseconds (for reporting)."""
    return seconds * 1e3

"""Deterministic discrete-event simulation kernel.

This subpackage is the substrate on which the RDMA fabric, Derecho
protocol stack and Spindle optimizations run. It provides:

* :class:`~repro.sim.engine.Simulator` — event heap + simulated clock.
* :class:`~repro.sim.process.Process` — generator-coroutine threads.
* :class:`~repro.sim.sync.Event` / :class:`~repro.sim.sync.Doorbell` /
  :class:`~repro.sim.sync.Lock` — synchronization primitives.
* :mod:`~repro.sim.units` — µs/GB literal helpers.
"""

from .engine import AtTime, SimulationError, Simulator, Timer
from .process import Process
from .sync import Doorbell, Event, Lock
from . import units

__all__ = [
    "Simulator",
    "SimulationError",
    "Timer",
    "AtTime",
    "Process",
    "Event",
    "Doorbell",
    "Lock",
    "units",
]

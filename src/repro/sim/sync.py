"""Synchronization primitives for simulated processes.

All primitives schedule wakeups *through the simulator queue* (never
synchronously), so triggering an event from inside a running process is
always safe and same-time wakeups preserve FIFO order.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional

__all__ = ["Event", "Doorbell", "Lock"]


class Event:
    """A one-shot event that processes can wait on.

    ``trigger(value)`` wakes every current and future waiter with
    ``value``. Triggering twice is an error (one-shot semantics keep the
    protocols honest).
    """

    __slots__ = ("sim", "name", "triggered", "value", "_waiters")

    def __init__(self, sim, name: str = "event"):
        self.sim = sim
        self.name = name
        self.triggered = False
        self.value: Any = None
        self._waiters: List[Callable[[Any], None]] = []

    def trigger(self, value: Any = None) -> None:
        """Fire the event, waking all waiters via the event queue."""
        if self.triggered:
            raise RuntimeError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            self.sim.call_after(0.0, waiter, value)

    def add_waiter(self, callback: Callable[[Any], None]) -> None:
        """Register a callback for the trigger (fires immediately-queued
        if the event already triggered)."""
        if self.triggered:
            self.sim.call_after(0.0, callback, self.value)
        else:
            self._waiters.append(callback)


class Doorbell:
    """A resettable signal used to wake an idle polling thread.

    ``wait()`` hands back a fresh :class:`Event` that the caller yields
    on; ``ring()`` triggers every outstanding wait. Rings with nobody
    waiting are remembered (a single pending flag), so a poller that
    checks state, then waits, cannot miss a wakeup that raced in between:

        while True:
            work = do_all_available_work()
            if not work:
                yield doorbell.wait()     # returns at once if ring pending
    """

    __slots__ = ("sim", "name", "_pending", "_waiters", "rings")

    def __init__(self, sim, name: str = "doorbell"):
        self.sim = sim
        self.name = name
        self._pending = False
        self._waiters: List[Event] = []
        self.rings = 0

    def ring(self) -> None:
        """Wake all waiters; remember the ring if nobody is waiting."""
        self.rings += 1
        if self._waiters:
            waiters, self._waiters = self._waiters, []
            for event in waiters:
                event.trigger(None)
        else:
            self._pending = True

    def wait(self) -> Event:
        """Return an event that fires on the next (or a pending) ring."""
        event = Event(self.sim, name=f"{self.name}.wait")
        if self._pending:
            self._pending = False
            event.trigger(None)
        else:
            self._waiters.append(event)
        return event

    @property
    def waiting(self) -> int:
        """Number of processes currently blocked on the doorbell."""
        return len(self._waiters)


class Lock:
    """A FIFO mutex for simulated processes.

    Usage inside a process generator::

        yield lock.acquire()
        try:
            ... critical section (may yield delays) ...
        finally:
            lock.release()

    Contention statistics (`contended_acquires`, `wait_time`) feed the
    thread-synchronization experiments (paper §3.4).
    """

    __slots__ = ("sim", "name", "locked", "_queue", "acquires",
                 "contended_acquires", "wait_time", "_acquire_times")

    def __init__(self, sim, name: str = "lock"):
        self.sim = sim
        self.name = name
        self.locked = False
        self._queue: Deque[Event] = deque()
        self.acquires = 0
        self.contended_acquires = 0
        self.wait_time = 0.0
        self._acquire_times: Deque[float] = deque()

    def acquire(self) -> Event:
        """Return an event that fires once the lock is held by the caller."""
        self.acquires += 1
        event = Event(self.sim, name=f"{self.name}.acquire")
        if not self.locked and not self._queue:
            self.locked = True
            event.trigger(None)
        else:
            self.contended_acquires += 1
            self._acquire_times.append(self.sim.now)
            self._queue.append(event)
        return event

    def release(self) -> None:
        """Release the lock, handing it to the next queued waiter (FIFO)."""
        if not self.locked:
            raise RuntimeError(f"lock {self.name!r} released while not held")
        if self._queue:
            event = self._queue.popleft()
            self.wait_time += self.sim.now - self._acquire_times.popleft()
            event.trigger(None)  # lock stays 'locked', ownership transfers
        else:
            self.locked = False

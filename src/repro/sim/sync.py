"""Synchronization primitives for simulated processes.

All primitives schedule wakeups *through the simulator queue* (never
synchronously), so triggering an event from inside a running process is
always safe and same-time wakeups preserve FIFO order.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, NamedTuple, Optional

__all__ = ["Event", "Doorbell", "Lock"]


class Event:
    """A one-shot event that processes can wait on.

    ``trigger(value)`` wakes every current and future waiter with
    ``value``. Triggering twice is an error (one-shot semantics keep the
    protocols honest).
    """

    __slots__ = ("sim", "name", "triggered", "value", "_waiters", "_hb_vc")

    #: Happens-before tracker hook (repro.analysis.lint.hb): called as
    #: ``hb_hook(op, event)`` with op in {"trigger", "replay"}.  The
    #: "replay" op covers the only wakeup path that does NOT pass the
    #: trigger context through the scheduler: a waiter arriving *after*
    #: the trigger (``_hb_vc`` carries the trigger-time clock to it).
    hb_hook = None

    def __init__(self, sim, name: str = "event"):
        self.sim = sim
        self.name = name
        self.triggered = False
        self.value: Any = None
        self._waiters: List[Callable[[Any], None]] = []
        self._hb_vc = None

    def trigger(self, value: Any = None) -> None:
        """Fire the event, waking all waiters via the event queue."""
        if self.triggered:
            raise RuntimeError(f"event {self.name!r} triggered twice")
        if Event.hb_hook is not None:
            Event.hb_hook("trigger", self)
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            self.sim.post(waiter, value)

    def add_waiter(self, callback: Callable[[Any], None]) -> None:
        """Register a callback for the trigger (fires immediately-queued
        if the event already triggered)."""
        if self.triggered:
            if Event.hb_hook is not None:
                Event.hb_hook("replay", self)
            self.sim.post(callback, self.value)
        else:
            self._waiters.append(callback)


class Doorbell:
    """A resettable signal used to wake an idle polling thread.

    ``wait()`` hands back a fresh :class:`Event` that the caller yields
    on; ``ring()`` triggers every outstanding wait. Rings with nobody
    waiting are remembered (a single pending flag), so a poller that
    checks state, then waits, cannot miss a wakeup that raced in between:

        while True:
            work = do_all_available_work()
            if not work:
                yield doorbell.wait()     # returns at once if ring pending
    """

    __slots__ = ("sim", "name", "_pending", "_waiters", "rings", "_hb_vc")

    #: Happens-before tracker hook: ``hb_hook(op, doorbell)`` with op in
    #: {"ring", "drain"}.  A ring with nobody waiting leaves no event
    #: behind, so the ringer's clock is parked on the doorbell ("ring")
    #: and joined into the poller that later consumes the pending flag
    #: ("drain") — otherwise that wakeup edge would be invisible.
    hb_hook = None

    def __init__(self, sim, name: str = "doorbell"):
        self.sim = sim
        self.name = name
        self._pending = False
        self._waiters: List[Event] = []
        self.rings = 0
        self._hb_vc = None

    def ring(self) -> None:
        """Wake all waiters; remember the ring if nobody is waiting."""
        self.rings += 1
        if self._waiters:
            waiters, self._waiters = self._waiters, []
            for event in waiters:
                event.trigger(None)
        else:
            if Doorbell.hb_hook is not None:
                Doorbell.hb_hook("ring", self)
            self._pending = True

    def wait(self) -> Event:
        """Return an event that fires on the next (or a pending) ring."""
        event = Event(self.sim, name=f"{self.name}.wait")
        if self._pending:
            self._pending = False
            if Doorbell.hb_hook is not None:
                Doorbell.hb_hook("drain", self)
            event.trigger(None)
        else:
            self._waiters.append(event)
        return event

    @property
    def waiting(self) -> int:
        """Number of processes currently blocked on the doorbell."""
        return len(self._waiters)


class _Waiter(NamedTuple):
    """A queued acquire: the wakeup event, the claiming owner, and the
    time it started waiting. Keeping all three in ONE queue entry means
    the wakeup order and the wait-time accounting can never desync (the
    old design kept parallel deques that drifted apart on error paths).
    """

    event: Event
    owner: Any
    since: float


class Lock:
    """A FIFO mutex for simulated processes, with owner tracking.

    Usage inside a process generator::

        yield lock.acquire()
        try:
            ... critical section (may yield delays) ...
        finally:
            lock.release()

    ``held_by`` records the owning :class:`~repro.sim.process.Process`
    (defaulting to ``sim.current_process`` at acquire time) so that
    misuse — releasing an unheld lock, or releasing somebody else's
    lock — fails with holder/claimant context, and so the runtime
    sanitizer can attribute RDMA posts to the lock holder (§3.4 lock
    discipline).

    Contention statistics (`contended_acquires`, `wait_time`) feed the
    thread-synchronization experiments (paper §3.4).
    """

    __slots__ = ("sim", "name", "locked", "held_by", "held_since",
                 "_queue", "acquires", "contended_acquires", "wait_time",
                 "_last_holder", "_hb_vc")

    #: Happens-before tracker hook: ``hb_hook(op, lock, owner)`` with op
    #: in {"grant", "release"}.  Release joins the holder's clock into
    #: the lock (``_hb_vc``); grant joins the lock's clock into the new
    #: owner — so two critical sections under the same lock are ordered
    #: even when the hand-off is uncontended (no scheduler edge).
    hb_hook = None

    def __init__(self, sim, name: str = "lock"):
        self.sim = sim
        self.name = name
        self.locked = False
        #: Current owner (usually a Process), or None when free/unknown.
        self.held_by: Any = None
        #: Simulated time of the most recent ownership grant.
        self.held_since: Optional[float] = None
        self._queue: Deque[_Waiter] = deque()
        self.acquires = 0
        self.contended_acquires = 0
        self.wait_time = 0.0
        self._last_holder: Any = None
        self._hb_vc = None

    def acquire(self, owner: Any = None) -> Event:
        """Return an event that fires once the lock is held by the caller.

        ``owner`` defaults to the simulated process currently running
        (``sim.current_process``); pass an explicit token when acquiring
        from plain-callback context.
        """
        if owner is None:
            owner = self.sim.current_process
        self.acquires += 1
        event = Event(self.sim, name=f"{self.name}.acquire")
        if not self.locked and not self._queue:
            self._grant(owner)
            event.trigger(None)
        else:
            self.contended_acquires += 1
            self._queue.append(_Waiter(event, owner, self.sim.now))
        return event

    def acquire_nowait(self, owner: Any = None) -> bool:
        """Grab the lock immediately if free; return True on success.

        Equivalent to :meth:`acquire` in the uncontended case but with no
        Event allocation and no scheduler round-trip — the caller already
        holds the lock when this returns True (same grant instant, same
        hb "grant" edge, same accounting). On False the caller must fall
        back to ``yield lock.acquire()``; nothing was counted.
        """
        if self.locked or self._queue:
            return False
        if owner is None:
            owner = self.sim.current_process
        self.acquires += 1
        self._grant(owner)
        return True

    def release(self, owner: Any = None) -> None:
        """Release the lock, handing it to the next queued waiter (FIFO).

        ``owner`` defaults to the current simulated process. Releasing an
        unheld lock raises; so does releasing a lock whose tracked holder
        is a *different* process (both raise with holder/claimant context
        — silent double releases are exactly the §3.4 bugs that stay
        invisible until scale).
        """
        if owner is None:
            owner = self.sim.current_process
        if not self.locked:
            raise RuntimeError(
                f"lock {self.name!r} released while not held "
                f"(claimant: {self._describe(owner)}, "
                f"last holder: {self._describe(self._last_holder)})"
            )
        if (owner is not None and self.held_by is not None
                and owner is not self.held_by):
            raise RuntimeError(
                f"lock {self.name!r} released by non-owner "
                f"(claimant: {self._describe(owner)}, "
                f"holder: {self._describe(self.held_by)})"
            )
        if Lock.hb_hook is not None:
            Lock.hb_hook("release", self, self.held_by)
        while self._queue:
            waiter = self._queue.popleft()
            if waiter.event.triggered:
                # Defensive: a waiter whose event was triggered out of
                # band no longer needs the lock; skip it rather than
                # corrupting the hand-off (and don't count its wait).
                continue
            self.wait_time += self.sim.now - waiter.since
            self._grant(waiter.owner)
            waiter.event.trigger(None)  # lock stays 'locked': ownership transfers
            return
        self.locked = False
        self._last_holder = self.held_by
        self.held_by = None
        self.held_since = None

    # ----------------------------------------------------------- internals

    def _grant(self, owner: Any) -> None:
        self.locked = True
        self._last_holder = self.held_by if self.held_by is not None else self._last_holder
        self.held_by = owner
        self.held_since = self.sim.now
        if Lock.hb_hook is not None:
            Lock.hb_hook("grant", self, owner)

    @staticmethod
    def _describe(owner: Any) -> str:
        if owner is None:
            return "<unknown>"
        name = getattr(owner, "name", None)
        return repr(name) if name is not None else repr(owner)

"""Discrete-event simulation kernel.

The kernel is a small, deterministic event-driven simulator in the style
of SimPy: a :class:`Simulator` owns a queue of timestamped callbacks and
a notion of *simulated time*, and :class:`~repro.sim.process.Process`
objects (generator coroutines) advance that time by yielding delays and
synchronization primitives.

Determinism: events scheduled for the same timestamp fire in scheduling
order (a monotonically increasing sequence number breaks ties), so a run
with a fixed seed is exactly reproducible.

Two interchangeable schedulers implement that (time, seq) contract
(selected per Simulator via ``engine=`` or the ``SPINDLE_ENGINE``
environment variable; see docs/ENGINE.md):

* ``"optimized"`` (default) — a calendar queue: a *now-deque* for
  events at the current instant (the dominant case: zero-delay wakeups
  from event triggers and doorbells), a ring of time buckets for the
  near future, and a heap fallback for far-future events.  Internal
  wakeups are stored as bare ``(time, seq, fn, args)`` entries with no
  :class:`Timer` allocation.
* ``"reference"`` — the original flat ``heapq`` scheduler, kept
  bit-for-bit compatible as the baseline for the engine-speed benchmark
  and for differential determinism tests.

Both produce the exact same event order and the exact same timestamps;
``benchmarks/bench_engine_speed.py`` and the scheduler-conformance tests
enforce this.
"""

from __future__ import annotations

import heapq
import itertools
import os
import random
from collections import deque
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["Simulator", "SimulationError", "Timer", "AtTime"]

#: Calendar-queue geometry: ``_NUM_BUCKETS`` buckets of ``_BUCKET_WIDTH``
#: seconds each.  Protocol timing constants are O(100 ns), so a 500 ns
#: bucket keeps same-bucket occupancy small while the whole ring covers
#: 32 µs of near future; anything beyond falls back to the far heap.
_BUCKET_WIDTH = 5e-7
_NUM_BUCKETS = 64
_ENGINE_MODES = ("optimized", "reference")


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. time travel)."""


class Timer:
    """Handle for a scheduled callback; supports cancellation.

    Returned by :meth:`Simulator.call_at` / :meth:`Simulator.call_after`.
    Cancelling an already-fired timer is a no-op.
    """

    __slots__ = ("time", "_fn", "_args", "_cancelled", "_fired")

    def __init__(self, time: float, fn: Callable[..., Any], args: Tuple[Any, ...]):
        self.time = time
        self._fn = fn
        self._args = args
        self._cancelled = False
        self._fired = False

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if already fired)."""
        self._cancelled = True

    @property
    def active(self) -> bool:
        """True while the callback is still pending."""
        return not (self._cancelled or self._fired)

    def _fire(self) -> None:
        if self._cancelled:
            return
        self._fired = True
        self._fn(*self._args)


class AtTime:
    """Yieldable absolute-time sleep: ``yield AtTime(t)`` resumes the
    process at exactly ``t``.

    The predicate thread's folded fast path needs this: a wake time
    computed as a chain of float additions (``t0 + a + b``) must be hit
    *bit-for-bit*, and re-deriving it from relative delays
    (``now + (t - now)``) is not exact in floating point.
    """

    __slots__ = ("time",)

    def __init__(self, time: float):
        self.time = time


class Simulator:
    """The simulation clock and event queue.

    Typical usage::

        sim = Simulator(seed=42)
        sim.spawn(my_generator(), name="worker")
        sim.run(until=1.0)   # simulated seconds

    All timestamps are floats in *seconds*; helpers for µs/ns literals
    live in :mod:`repro.sim.units`.
    """

    #: Optional scheduling hook for the happens-before tracker
    #: (:mod:`repro.analysis.lint.hb`).  When set (on the class), every
    #: scheduling call passes ``(sim, fn, args)`` through it and
    #: schedules whatever it returns — letting the tracker thread
    #: vector-clock snapshots from the scheduling context to the fire
    #: context.  None (the default) costs one attribute check per
    #: scheduled event.
    hb_hook = None
    #: Companion hook called as ``hb_run_hook(sim)`` when :meth:`run`
    #: returns: the caller (usually test code between ``run`` calls) is
    #: causally after every event that just executed, and the tracker
    #: needs that edge to avoid phantom races against the caller's
    #: subsequent actions.
    hb_run_hook = None

    def __init__(self, seed: int = 0, engine: Optional[str] = None):
        if engine is None:
            engine = os.environ.get("SPINDLE_ENGINE", "optimized")
        if engine not in _ENGINE_MODES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {_ENGINE_MODES}"
            )
        #: Scheduler implementation: "optimized" or "reference".  The
        #: predicate thread and other fast-path users key off this.
        self.engine_mode = engine
        #: Current simulated time in seconds (read-only by convention).
        self.now: float = 0.0
        self._seq = itertools.count()
        self._processes: List[Any] = []  # live Process objects (for debugging)
        self.rng = random.Random(seed)
        self._stopped = False
        #: The :class:`~repro.sim.process.Process` whose generator is
        #: currently being advanced, or None when executing plain
        #: callbacks. Maintained by Process itself; used by Lock for
        #: owner tracking and by the runtime sanitizer to attribute RDMA
        #: posts to the thread that issued them.
        self.current_process: Optional[Any] = None
        # -- engine statistics (benchmarks/bench_engine_speed.py) -------------
        #: Callbacks actually fired (cancelled timers excluded).
        self.events_executed = 0
        #: Entries currently queued (including not-yet-reaped cancelled
        #: timers) and the high-water mark of that count.
        self.pending_events = 0
        self.peak_pending_events = 0
        if engine == "reference":
            self._heap: List[Tuple[float, int, Timer]] = []
            self.post = self._post_ref
            self.post_after = self._post_after_ref
            self.post_at = self._post_at_ref
        else:
            #: Events at exactly the current instant, in seq order.
            self._now_q: deque = deque()
            #: Near-future bucket ring.  Future buckets are unsorted
            #: lists; the active bucket is lazily heapified.
            self._buckets: List[list] = [[] for _ in range(_NUM_BUCKETS)]
            self._bucket_idx = 0
            self._active_heaped = False
            self._base = 0.0
            self._horizon = _NUM_BUCKETS * _BUCKET_WIDTH
            self._near_count = 0
            #: Far-future heap fallback (time >= horizon).
            self._far: List[tuple] = []
            self.post = self._post_opt
            self.post_after = self._post_after_opt
            self.post_at = self._post_at_opt

    # ------------------------------------------------------------- scheduling

    def call_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Timer:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        if Simulator.hb_hook is not None:
            fn, args = Simulator.hb_hook(self, fn, args)
        timer = Timer(time, fn, args)
        if self.engine_mode == "reference":
            heapq.heappush(self._heap, (time, next(self._seq), timer))
            pending = self.pending_events + 1
            self.pending_events = pending
            if pending > self.peak_pending_events:
                self.peak_pending_events = pending
        else:
            self._insert(time, next(self._seq), timer, None)
        return timer

    def call_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> Timer:
        """Schedule ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self.now + delay, fn, *args)

    # -- internal no-Timer scheduling (hot paths) ---------------------------
    #
    # ``post`` / ``post_after`` / ``post_at`` schedule a bare callback
    # with no cancellation handle.  Process wakeups, event triggers and
    # doorbell rings never cancel, so they skip the Timer allocation
    # entirely on the optimized engine.  On the reference engine these
    # delegate to call_at, reproducing the pre-rewrite cost model.

    def _post_ref(self, fn: Callable[..., Any], *args: Any) -> None:
        self.call_at(self.now + 0.0, fn, *args)

    def _post_after_ref(self, delay: float, fn: Callable[..., Any],
                        *args: Any) -> None:
        self.call_after(delay, fn, *args)

    def _post_at_ref(self, time: float, fn: Callable[..., Any],
                     *args: Any) -> None:
        self.call_at(time, fn, *args)

    def _post_opt(self, fn: Callable[..., Any], *args: Any) -> None:
        if Simulator.hb_hook is not None:
            fn, args = Simulator.hb_hook(self, fn, args)
        self._insert(self.now, next(self._seq), fn, args)

    def _post_after_opt(self, delay: float, fn: Callable[..., Any],
                        *args: Any) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        if Simulator.hb_hook is not None:
            fn, args = Simulator.hb_hook(self, fn, args)
        self._insert(self.now + delay, next(self._seq), fn, args)

    def _post_at_opt(self, time: float, fn: Callable[..., Any],
                     *args: Any) -> None:
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        if Simulator.hb_hook is not None:
            fn, args = Simulator.hb_hook(self, fn, args)
        self._insert(time, next(self._seq), fn, args)

    def _insert(self, time: float, seq: int, cb: Any, args: Any) -> None:
        """Calendar-queue insert.  ``args is None`` marks a Timer entry."""
        pending = self.pending_events + 1
        self.pending_events = pending
        if pending > self.peak_pending_events:
            self.peak_pending_events = pending
        entry = (time, seq, cb, args)
        if time == self.now:
            # Sound because the run loop always moves *every* pending
            # entry at a timestamp into the now-queue before firing any
            # of them: anything still in the buckets/heap is strictly
            # later, and a new same-instant entry has a larger seq than
            # the whole current batch.
            self._now_q.append(entry)
            return
        if time < self._horizon:
            idx = int((time - self._base) / _BUCKET_WIDTH)
            # Clamp float edge cases into the live window; ordering is
            # unaffected because the active bucket is a heap and bucket
            # index is monotone in time.
            if idx < self._bucket_idx:
                idx = self._bucket_idx
            elif idx >= _NUM_BUCKETS:
                idx = _NUM_BUCKETS - 1
            bucket = self._buckets[idx]
            if idx == self._bucket_idx and self._active_heaped:
                heapq.heappush(bucket, entry)
            else:
                bucket.append(entry)
            self._near_count += 1
        else:
            heapq.heappush(self._far, entry)

    def _advance(self) -> bool:
        """Move the next batch of equal-time events into the now-queue.

        Returns False when no events remain.  Does NOT advance the
        clock: ``now`` only moves when a live callback actually fires,
        matching the reference scheduler (cancelled timers never
        advance time).
        """
        now_q = self._now_q
        buckets = self._buckets
        far = self._far
        while True:
            active = buckets[self._bucket_idx]
            if active and not self._active_heaped:
                heapq.heapify(active)
                self._active_heaped = True
            if not active:
                if self._near_count:
                    # A later bucket is non-empty: advance the ring.
                    self._bucket_idx += 1
                    self._active_heaped = False
                    continue
                if not far:
                    return False
                # Ring exhausted: re-anchor the window at the next far
                # event and pull everything inside it into the buckets.
                base = far[0][0]
                self._base = base
                self._horizon = horizon = base + _NUM_BUCKETS * _BUCKET_WIDTH
                self._bucket_idx = 0
                self._active_heaped = False
                while far and far[0][0] < horizon:
                    entry = heapq.heappop(far)
                    idx = int((entry[0] - base) / _BUCKET_WIDTH)
                    if idx >= _NUM_BUCKETS:
                        idx = _NUM_BUCKETS - 1
                    buckets[idx].append(entry)
                    self._near_count += 1
                continue
            # Far entries are >= the horizon, i.e. beyond every bucket —
            # except entries pushed back by an `until` break, so always
            # merge by full (time, seq) comparison.
            t = active[0][0] if not far or active[0] <= far[0] else far[0][0]
            move = now_q.append
            while True:
                a_ok = active and active[0][0] == t
                f_ok = far and far[0][0] == t
                if a_ok and (not f_ok or active[0] < far[0]):
                    move(heapq.heappop(active))
                    self._near_count -= 1
                elif f_ok:
                    move(heapq.heappop(far))
                else:
                    break
            return True

    def spawn(self, generator, name: str = "proc"):
        """Start a new simulated process from a generator. See Process."""
        from .process import Process

        proc = Process(self, generator, name=name)
        self._processes.append(proc)
        return proc

    # ---------------------------------------------------------------- running

    def stop(self) -> None:
        """Stop the run loop after the current event."""
        self._stopped = True

    def run(self, until: Optional[float] = None) -> float:
        """Run events until the queue drains or ``until`` is reached.

        Returns the simulated time at which the run stopped. When ``until``
        is given, time is advanced to exactly ``until`` even if the queue
        drained earlier (matching SimPy semantics).
        """
        if self.engine_mode == "reference":
            return self._run_ref(until)
        self._stopped = False
        now_q = self._now_q
        while not self._stopped:
            if not now_q:
                if not self._advance():
                    break
                continue
            entry = now_q.popleft()
            time = entry[0]
            if until is not None and time > until:
                # Push the whole un-fired batch back for a later run().
                far = self._far
                heapq.heappush(far, entry)
                while now_q:
                    heapq.heappush(far, now_q.popleft())
                break
            self.pending_events -= 1
            cb = entry[2]
            args = entry[3]
            if args is None:  # Timer entry
                if cb._cancelled:
                    continue
                self.now = time
                self.events_executed += 1
                cb._fired = True
                cb._fn(*cb._args)
            else:
                self.now = time
                self.events_executed += 1
                cb(*args)
        if until is not None and self.now < until and not self._stopped:
            self.now = until
        if Simulator.hb_run_hook is not None:
            Simulator.hb_run_hook(self)
        return self.now

    def _run_ref(self, until: Optional[float]) -> float:
        """The pre-rewrite flat-heap run loop, kept verbatim."""
        self._stopped = False
        heap = self._heap
        while heap and not self._stopped:
            time, _seq, timer = heap[0]
            if until is not None and time > until:
                break
            heapq.heappop(heap)
            self.pending_events -= 1
            if not timer.active:
                continue
            self.now = time
            self.events_executed += 1
            timer._fire()
        if until is not None and self.now < until and not self._stopped:
            self.now = until
        if Simulator.hb_run_hook is not None:
            Simulator.hb_run_hook(self)
        return self.now

    def run_until_idle(self, max_time: Optional[float] = None) -> float:
        """Run until no events remain (optionally bounded by ``max_time``)."""
        return self.run(until=max_time)

    def peek(self) -> Optional[float]:
        """Timestamp of the next pending event, or None if queue is empty."""
        if self.engine_mode == "reference":
            heap = self._heap
            while heap and not heap[0][2].active:
                heapq.heappop(heap)
                self.pending_events -= 1
            return heap[0][0] if heap else None
        best: Optional[float] = None
        for entry in self._now_q:
            if entry[3] is not None or not entry[2]._cancelled:
                best = entry[0]
                break
        buckets = self._buckets
        for idx in range(self._bucket_idx, _NUM_BUCKETS):
            for entry in buckets[idx]:
                if entry[3] is not None or not entry[2]._cancelled:
                    if best is None or entry[0] < best:
                        best = entry[0]
        far = self._far
        while far and far[0][3] is None and far[0][2]._cancelled:
            heapq.heappop(far)
            self.pending_events -= 1
        if far and (best is None or far[0][0] < best):
            best = far[0][0]
        return best

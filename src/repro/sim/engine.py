"""Discrete-event simulation kernel.

The kernel is a small, deterministic event-driven simulator in the style
of SimPy: a :class:`Simulator` owns a heap of timestamped callbacks and a
notion of *simulated time*, and :class:`~repro.sim.process.Process`
objects (generator coroutines) advance that time by yielding delays and
synchronization primitives.

Determinism: events scheduled for the same timestamp fire in scheduling
order (a monotonically increasing sequence number breaks ties), so a run
with a fixed seed is exactly reproducible.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["Simulator", "SimulationError", "Timer"]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. time travel)."""


class Timer:
    """Handle for a scheduled callback; supports cancellation.

    Returned by :meth:`Simulator.call_at` / :meth:`Simulator.call_after`.
    Cancelling an already-fired timer is a no-op.
    """

    __slots__ = ("time", "_fn", "_args", "_cancelled", "_fired")

    def __init__(self, time: float, fn: Callable[..., Any], args: Tuple[Any, ...]):
        self.time = time
        self._fn = fn
        self._args = args
        self._cancelled = False
        self._fired = False

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if already fired)."""
        self._cancelled = True

    @property
    def active(self) -> bool:
        """True while the callback is still pending."""
        return not (self._cancelled or self._fired)

    def _fire(self) -> None:
        if self._cancelled:
            return
        self._fired = True
        self._fn(*self._args)


class Simulator:
    """The simulation clock and event queue.

    Typical usage::

        sim = Simulator(seed=42)
        sim.spawn(my_generator(), name="worker")
        sim.run(until=1.0)   # simulated seconds

    All timestamps are floats in *seconds*; helpers for µs/ns literals
    live in :mod:`repro.sim.units`.
    """

    #: Optional scheduling hook for the happens-before tracker
    #: (:mod:`repro.analysis.lint.hb`).  When set (on the class), every
    #: ``call_at`` passes ``(sim, fn, args)`` through it and schedules
    #: whatever it returns — letting the tracker thread vector-clock
    #: snapshots from the scheduling context to the fire context.  None
    #: (the default) costs one attribute check per scheduled event.
    hb_hook = None
    #: Companion hook called as ``hb_run_hook(sim)`` when :meth:`run`
    #: returns: the caller (usually test code between ``run`` calls) is
    #: causally after every event that just executed, and the tracker
    #: needs that edge to avoid phantom races against the caller's
    #: subsequent actions.
    hb_run_hook = None

    def __init__(self, seed: int = 0):
        self._now: float = 0.0
        self._heap: List[Tuple[float, int, Timer]] = []
        self._seq = itertools.count()
        self._processes: List[Any] = []  # live Process objects (for debugging)
        self.rng = random.Random(seed)
        self._stopped = False
        #: The :class:`~repro.sim.process.Process` whose generator is
        #: currently being advanced, or None when executing plain
        #: callbacks. Maintained by Process itself; used by Lock for
        #: owner tracking and by the runtime sanitizer to attribute RDMA
        #: posts to the thread that issued them.
        self.current_process: Optional[Any] = None

    # ------------------------------------------------------------------ time

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------- scheduling

    def call_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Timer:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        if Simulator.hb_hook is not None:
            fn, args = Simulator.hb_hook(self, fn, args)
        timer = Timer(time, fn, args)
        heapq.heappush(self._heap, (time, next(self._seq), timer))
        return timer

    def call_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> Timer:
        """Schedule ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self._now + delay, fn, *args)

    def spawn(self, generator, name: str = "proc"):
        """Start a new simulated process from a generator. See Process."""
        from .process import Process

        proc = Process(self, generator, name=name)
        self._processes.append(proc)
        return proc

    # ---------------------------------------------------------------- running

    def stop(self) -> None:
        """Stop the run loop after the current event."""
        self._stopped = True

    def run(self, until: Optional[float] = None) -> float:
        """Run events until the queue drains or ``until`` is reached.

        Returns the simulated time at which the run stopped. When ``until``
        is given, time is advanced to exactly ``until`` even if the queue
        drained earlier (matching SimPy semantics).
        """
        self._stopped = False
        while self._heap and not self._stopped:
            time, _seq, timer = self._heap[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._heap)
            if not timer.active:
                continue
            self._now = time
            timer._fire()
        if until is not None and self._now < until and not self._stopped:
            self._now = until
        if Simulator.hb_run_hook is not None:
            Simulator.hb_run_hook(self)
        return self._now

    def run_until_idle(self, max_time: Optional[float] = None) -> float:
        """Run until no events remain (optionally bounded by ``max_time``)."""
        return self.run(until=max_time)

    def peek(self) -> Optional[float]:
        """Timestamp of the next pending event, or None if queue is empty."""
        while self._heap and not self._heap[0][2].active:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

"""A replicated message queue on the atomic multicast (paper §1's
"message queuing systems").

Every broker replica delivers the same totally-ordered stream of
enqueued messages, so the queue state is identical everywhere without
any coordination beyond the multicast itself. Work distribution uses
the deterministic-assignment SMR idiom: entry ``i`` belongs to worker
``i mod num_workers``, a pure function of the agreed order — so all
replicas agree on every assignment with zero extra messages.
"""

from __future__ import annotations

import struct
import zlib
from collections import deque
from typing import Deque, Generator, List, Optional, Tuple

from ..core.multicast import Delivery, SubgroupMulticast

__all__ = ["ReplicatedQueue", "attach_queue"]


class ReplicatedQueue:
    """One broker replica of the queue."""

    def __init__(self, mc: SubgroupMulticast, num_workers: int = 1):
        if mc.delivery_mode != "atomic":
            raise ValueError("the queue requires atomic delivery")
        if num_workers < 1:
            raise ValueError("need at least one worker")
        self.mc = mc
        self.node_id = mc.node_id
        self.num_workers = num_workers
        #: Per-worker pending entries: (entry_index, producer, payload).
        self._pending: List[Deque[Tuple[int, int, bytes]]] = [
            deque() for _ in range(num_workers)
        ]
        self.enqueued_total = 0   # entries this replica has seen
        self.taken_total = 0

    # ---------------------------------------------------------- replication

    def apply(self, delivery: Delivery) -> None:
        """Delivery upcall: append the entry to its assigned worker."""
        index = self.enqueued_total
        self.enqueued_total += 1
        worker = index % self.num_workers
        self._pending[worker].append((index, delivery.sender, delivery.payload))

    # -------------------------------------------------------------- produce

    def enqueue(self, payload: bytes) -> Generator:
        """Append a message to the queue (generator for app processes)."""
        if self.mc.my_rank is None:
            raise RuntimeError(f"node {self.node_id} cannot produce")
        yield from self.mc.send(max(len(payload), 1), payload)

    # -------------------------------------------------------------- consume

    def take(self, worker: int, limit: Optional[int] = None
             ) -> List[Tuple[int, int, bytes]]:
        """Dequeue this worker's pending entries (up to ``limit``).

        Deterministic assignment means a worker can take from *any*
        replica and see exactly its entries, in order.
        """
        if not 0 <= worker < self.num_workers:
            raise IndexError(f"worker {worker} out of range")
        pending = self._pending[worker]
        out = []
        while pending and (limit is None or len(out) < limit):
            out.append(pending.popleft())
        self.taken_total += len(out)
        return out

    def backlog(self, worker: Optional[int] = None) -> int:
        """Entries awaiting a worker (or all workers)."""
        if worker is not None:
            return len(self._pending[worker])
        return sum(len(p) for p in self._pending)

    # ------------------------------------------------------------ integrity

    def checksum(self) -> int:
        """State digest mirroring :meth:`KvNode.checksum
        <repro.apps.kvstore.KvNode.checksum>`: CRC over the pending
        entries (order-sensitive — the queue *is* an order) plus the
        replica's position in the stream. Replicas that delivered the
        same stream and served the same takes digest identically, so
        state-transfer integrity is directly testable."""
        crc = zlib.crc32(struct.pack("<II", self.enqueued_total,
                                     self.taken_total))
        for pending in self._pending:
            for index, producer, payload in pending:
                crc = zlib.crc32(
                    struct.pack("<II", index, producer)
                    + (payload if payload is not None else b""), crc)
        return crc

    # ------------------------------------------------------------- recovery

    def snapshot(self) -> bytes:
        """Deterministic serialization of the replica state (pending
        entries + stream counters), for recovery state transfer."""
        parts = [struct.pack("<III", self.enqueued_total, self.taken_total,
                             self.num_workers)]
        for pending in self._pending:
            parts.append(struct.pack("<I", len(pending)))
            for index, producer, payload in pending:
                body = payload if payload is not None else b""
                parts.append(struct.pack("<III", index, producer, len(body)))
                parts.append(body)
        return b"".join(parts)

    def restore(self, blob: bytes) -> None:
        """Load a :meth:`snapshot` (replaces current state)."""
        self.enqueued_total, self.taken_total, workers = \
            struct.unpack_from("<III", blob)
        offset = 12
        if workers != self.num_workers:
            raise ValueError("snapshot taken with a different worker count")
        pending: List[Deque[Tuple[int, int, bytes]]] = []
        for _ in range(workers):
            (count,) = struct.unpack_from("<I", blob, offset)
            offset += 4
            q: Deque[Tuple[int, int, bytes]] = deque()
            for _ in range(count):
                index, producer, body_len = struct.unpack_from(
                    "<III", blob, offset)
                offset += 12
                q.append((index, producer, blob[offset:offset + body_len]))
                offset += body_len
            pending.append(q)
        self._pending = pending

    def apply_entry(self, sender: int, payload: Optional[bytes]) -> None:
        """Apply one durable-log entry during recovery replay (same
        transition as :meth:`apply`, without a Delivery object)."""
        index = self.enqueued_total
        self.enqueued_total += 1
        worker = index % self.num_workers
        self._pending[worker].append((index, sender, payload))

    def rebind(self, mc: SubgroupMulticast) -> None:
        """Re-attach to a new epoch's multicast endpoint (view change /
        rejoin); queue state carries over."""
        if mc.delivery_mode != "atomic":
            raise ValueError("the queue requires atomic delivery")
        self.mc = mc
        self.node_id = mc.node_id


def attach_queue(group_node, subgroup_id: int,
                 num_workers: int = 1) -> ReplicatedQueue:
    """Create a queue replica on a node and wire it to a subgroup."""
    mc = group_node.subgroup(subgroup_id)
    queue = ReplicatedQueue(mc, num_workers=num_workers)
    group_node.on_delivery(subgroup_id, queue.apply)
    return queue

"""Downstream applications of the atomic multicast (paper §1's broader
class: replicated key-value stores and message queuing systems)."""

from .kvstore import KvCommand, KvNode, attach_store
from .mqueue import ReplicatedQueue, attach_queue

__all__ = [
    "KvNode",
    "KvCommand",
    "attach_store",
    "ReplicatedQueue",
    "attach_queue",
]

"""A replicated key-value store built on the atomic multicast.

The paper motivates Spindle beyond the avionics DDS: the same
layered structure appears in "message queuing systems, key-value stores
that replicate data, atomic multicast and persistent logging" (§1).
This module is that key-value store: a state machine replicated with
the Spindle-optimized atomic multicast.

Design (textbook SMR):

* every replica is a subgroup member; writes (PUT/DELETE/CAS) are
  multicast and applied in delivery order, so all replicas stay
  identical;
* reads are served locally — *sequentially consistent* by default, or
  *linearizable* when issued through :meth:`KvNode.sync_read`, which
  multicasts a no-op fence and waits for its delivery (the classic
  read-through-the-log construction);
* compare-and-swap resolves concurrent writers by the total order, so
  every replica agrees on the winner.

Commands are marshalled into the SMC message slots with a compact
binary framing; the store's state is a plain dict per replica.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..core.multicast import Delivery
from ..ordering.base import OrderingEndpoint
from ..sim.sync import Event

__all__ = ["KvCommand", "KvNode", "attach_store",
           "OP_PUT", "OP_DELETE", "OP_CAS", "OP_FENCE"]

#: Public command opcodes (the sharded service plane frames these
#: inside request-id envelopes — repro.shard.service).
OP_PUT = 1
OP_DELETE = 2
OP_CAS = 3
OP_FENCE = 4

# Historical private aliases (internal call sites predate the export).
_OP_PUT = OP_PUT
_OP_DELETE = OP_DELETE
_OP_CAS = OP_CAS
_OP_FENCE = OP_FENCE

_HEADER = struct.Struct("<BHHI")  # op, key_len, expected_len, value_len


class KvCommand:
    """Encoding/decoding of replicated store commands."""

    @staticmethod
    def encode(op: int, key: bytes = b"", value: bytes = b"",
               expected: bytes = b"") -> bytes:
        return (_HEADER.pack(op, len(key), len(expected), len(value))
                + key + expected + value)

    @staticmethod
    def decode(data: bytes) -> Tuple[int, bytes, bytes, bytes]:
        op, key_len, expected_len, value_len = _HEADER.unpack_from(data)
        offset = _HEADER.size
        key = data[offset : offset + key_len]
        offset += key_len
        expected = data[offset : offset + expected_len]
        offset += expected_len
        value = data[offset : offset + value_len]
        return op, key, expected, value


class KvNode:
    """One replica of the store.

    Create with :func:`attach_store` on every member of a subgroup.
    Mutations are generators to run inside simulated processes::

        ok = yield from store.put(b"altitude", b"9500")
        value = yield from store.sync_read(b"altitude")   # linearizable
        value = store.read(b"altitude")                   # local, fast
    """

    def __init__(self, mc: OrderingEndpoint):
        if mc.delivery_mode != "atomic":
            raise ValueError("the KV store requires atomic delivery")
        self.mc = mc
        self.node_id = mc.node_id
        self.data: Dict[bytes, bytes] = {}
        self.applied = 0
        self.cas_failures = 0
        #: Commands applied via recovery replay (apply_command).
        self.recovered = 0
        #: verification hook: (seq, op, key) of every applied command.
        self.apply_log: List[Tuple[int, int, bytes]] = []
        self._fence_waiters: Dict[Tuple[int, int], Event] = {}
        self._write_waiters: Dict[Tuple[int, int], Event] = {}
        #: Per-sender-rank count of deliveries applied so far: the k-th
        #: delivery from rank r carries r's propose ticket k (FIFO +
        #: exactly-once, docs/ORDERING.md), so this is all that is
        #: needed to match waiters to deliveries on *any* backend.
        self._applied_from: Dict[int, int] = {}

    # ---------------------------------------------------------- replication

    def apply(self, delivery: Delivery) -> None:
        """State-machine transition, executed in delivery order.

        Registered as the subgroup's delivery upcall by attach_store.
        """
        op, key, expected, value = KvCommand.decode(delivery.payload)
        outcome: Any = None
        if op == _OP_PUT:
            self.data[key] = value
            outcome = True
        elif op == _OP_DELETE:
            outcome = self.data.pop(key, None) is not None
        elif op == _OP_CAS:
            current = self.data.get(key, b"")
            if current == expected:
                self.data[key] = value
                outcome = True
            else:
                self.cas_failures += 1
                outcome = False
        elif op == _OP_FENCE:
            outcome = None
        else:
            raise ValueError(f"unknown KV op {op}")
        self.applied += 1
        self.apply_log.append((delivery.seq, op, key))
        token = self._next_token(delivery)
        waiter = self._write_waiters.pop(token, None)
        if waiter is not None:
            waiter.trigger(outcome)
        fence = self._fence_waiters.pop(token, None)
        if fence is not None:
            fence.trigger(None)

    def _next_token(self, delivery: Delivery) -> Tuple[int, int]:
        """Consume one delivery from its sender's FIFO: the waiter token
        is ``(sender_rank, ticket)``, counted locally."""
        ticket = self._applied_from.get(delivery.sender_rank, 0)
        self._applied_from[delivery.sender_rank] = ticket + 1
        return (delivery.sender_rank, ticket)

    # ------------------------------------------------------------- mutations

    def _submit(self, payload: bytes, waiters: Dict) -> Generator:
        """Propose a command to the total order and wait for its local
        delivery (backend-agnostic: the propose ticket names it)."""
        if self.mc.my_rank is None:
            raise RuntimeError(f"node {self.node_id} is a read-only replica")
        ticket = yield from self.mc.propose(len(payload), payload)
        event = Event(self.mc.sim, name=f"kv-wait-{ticket}")
        waiters[(self.mc.my_rank, ticket)] = event
        outcome = yield event
        return outcome

    def put(self, key: bytes, value: bytes) -> Generator:
        """Replicated write; returns True once applied locally."""
        return self._submit(KvCommand.encode(_OP_PUT, key, value),
                            self._write_waiters)

    def delete(self, key: bytes) -> Generator:
        """Replicated delete; returns whether the key existed."""
        return self._submit(KvCommand.encode(_OP_DELETE, key),
                            self._write_waiters)

    def cas(self, key: bytes, expected: bytes, value: bytes) -> Generator:
        """Compare-and-swap, arbitrated by the total order; returns
        whether this CAS won."""
        return self._submit(
            KvCommand.encode(_OP_CAS, key, value, expected),
            self._write_waiters)

    # ----------------------------------------------------------------- reads

    def read(self, key: bytes) -> Optional[bytes]:
        """Local read: sequentially consistent (may lag the log tip)."""
        return self.data.get(key)

    def sync_read(self, key: bytes) -> Generator:
        """Linearizable read: fence through the log, then read locally.

        The fence multicast is delivered after every write that preceded
        the read in real time, so the local state is current.
        """
        yield from self._submit(KvCommand.encode(_OP_FENCE),
                                self._fence_waiters)
        return self.data.get(key)

    # ------------------------------------------------------------- integrity

    def checksum(self) -> int:
        """Order-insensitive state digest for replica comparison."""
        total = 0
        for key, value in self.data.items():
            total ^= hash((key, value))
        return total

    # ------------------------------------------------------------- recovery

    def snapshot(self) -> bytes:
        """Deterministic serialization of the replica state (sorted, so
        two replicas with equal state produce identical bytes)."""
        parts = [struct.pack("<I", len(self.data))]
        for key in sorted(self.data):
            value = self.data[key]
            parts.append(struct.pack("<HI", len(key), len(value)))
            parts.append(key)
            parts.append(value)
        return b"".join(parts)

    def restore(self, blob: bytes) -> None:
        """Load a :meth:`snapshot` (recovery: replaces current state)."""
        (count,) = struct.unpack_from("<I", blob)
        offset = 4
        data: Dict[bytes, bytes] = {}
        for _ in range(count):
            key_len, value_len = struct.unpack_from("<HI", blob, offset)
            offset += 6
            key = blob[offset:offset + key_len]
            offset += key_len
            data[key] = blob[offset:offset + value_len]
            offset += value_len
        self.data = data

    def apply_command(self, payload: Optional[bytes]) -> None:
        """Apply one durable-log payload during recovery replay.

        Pure state transition: no waiters fire and ``apply_log`` is not
        extended (sequence numbers reset per epoch, so replayed log
        positions don't map onto this epoch's seqs). ``None`` payloads
        (control entries) are skipped.
        """
        if payload is None:
            return
        op, key, expected, value = KvCommand.decode(payload)
        if op == _OP_PUT:
            self.data[key] = value
        elif op == _OP_DELETE:
            self.data.pop(key, None)
        elif op == _OP_CAS:
            if self.data.get(key, b"") == expected:
                self.data[key] = value
        elif op != _OP_FENCE:
            raise ValueError(f"unknown KV op {op}")
        self.recovered += 1

    def rebind(self, mc: OrderingEndpoint) -> None:
        """Re-attach this replica to a new epoch's ordering endpoint
        (view change / rejoin). State carries over; in-flight waiters
        and the per-sender ticket counters are cleared — their epoch
        died, and ticket numbering restarts, so a stale waiter could
        otherwise capture a new message's token."""
        if mc.delivery_mode != "atomic":
            raise ValueError("the KV store requires atomic delivery")
        self.mc = mc
        self.node_id = mc.node_id
        self._write_waiters.clear()
        self._fence_waiters.clear()
        self._applied_from.clear()


def attach_store(group_node, subgroup_id: int) -> KvNode:
    """Create a KV replica on a node and wire it to a subgroup."""
    mc = group_node.subgroup(subgroup_id)
    store = KvNode(mc)
    group_node.on_delivery(subgroup_id, store.apply)
    return store

"""Workloads: cluster builder, sender processes, experiment harness."""

from .cluster import Cluster
from .generators import (
    SloStats,
    continuous_sender,
    jittered_sender,
    limited_sender,
    open_loop_client,
)

__all__ = [
    "Cluster",
    "continuous_sender",
    "limited_sender",
    "jittered_sender",
    "open_loop_client",
    "SloStats",
]

from .runner import (
    ExperimentResult,
    delayed_senders,
    multi_subgroup,
    sender_set,
    single_subgroup,
)

__all__ += [
    "ExperimentResult",
    "single_subgroup",
    "multi_subgroup",
    "delayed_senders",
    "sender_set",
]

"""Experiment runner: the workload scenarios of the paper's evaluation.

Each function assembles a cluster, drives the workload of one evaluation
scenario, and returns an :class:`ExperimentResult` with the metrics the
paper reports. The benchmark harness (benchmarks/) calls these and
formats paper-style tables.

Message counts here are far below the paper's 1 M per sender: throughput
is computed in *simulated* time from the steady-state portion of the
delivery curve, so a few hundred messages per sender (several window
fills) give stable estimates — see DESIGN.md §2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import SpindleConfig, TimingModel
from ..rdma.latency import LatencyModel
from .cluster import Cluster
from .generators import continuous_sender, limited_sender

__all__ = [
    "ExperimentResult",
    "sender_set",
    "drive_to_completion",
    "single_subgroup",
    "multi_subgroup",
    "delayed_senders",
]


@dataclass
class ExperimentResult:
    """Metrics from one experiment run (one cluster, one workload)."""

    throughput: float                 # bytes/s, averaged over nodes (§4)
    latency: float                    # mean queue-to-delivery, seconds
    delivered_per_node: int           # messages delivered at node 0
    duration: float                   # simulated seconds to quiescence
    rdma_writes: int                  # total writes posted (§4.1.1)
    post_time: float                  # predicate-thread posting time, node 0
    busy_time: float                  # predicate-thread busy time, node 0
    sender_wait_fraction: float       # §4.1.1: sender time blocked on slots
    mean_batches: Tuple[float, float, float]  # send/receive/delivery (§4.1.3)
    nulls_sent: int                   # total nulls announced
    per_node_throughput: Dict[int, float] = field(default_factory=dict)
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def throughput_gbps(self) -> float:
        """Throughput in the paper's units (GB/s, decimal)."""
        return self.throughput / 1e9

    @property
    def latency_us(self) -> float:
        return self.latency * 1e6

    @property
    def post_fraction(self) -> float:
        """Fraction of predicate-thread busy time spent posting (§3.2)."""
        if self.busy_time == 0:
            return 0.0
        return self.post_time / self.busy_time

    @property
    def message_rate(self) -> float:
        """Messages delivered per second at one node (Fig. 4)."""
        if self.duration == 0:
            return 0.0
        return self.delivered_per_node / self.duration


def sender_set(n: int, pattern: str) -> List[int]:
    """The paper's three sending patterns (§4.1.1)."""
    if pattern == "all":
        return list(range(n))
    if pattern == "half":
        return list(range(max(1, n // 2)))
    if pattern == "one":
        return [0]
    raise ValueError(f"unknown sender pattern {pattern!r}")


def _collect(cluster: Cluster, subgroup_id: int, expected: int,
             sim_time: float) -> ExperimentResult:
    per_node = cluster.per_node_throughput(subgroup_id)
    group0 = cluster.group(cluster.members_of(subgroup_id)[0])
    stats0 = group0.stats(subgroup_id)
    spec = cluster.view.subgroups[subgroup_id]
    wait = 0.0
    duration = stats0.last_delivery_time or sim_time
    for nid in spec.senders:
        wait = max(wait, cluster.group(nid).stats(subgroup_id).sender_wait_time)
    # Predicate-thread timers exist only on the SST backend; quorum
    # backends report zero (their CPU story is per-message handlers).
    thread = getattr(group0, "thread", None)
    return ExperimentResult(
        throughput=sum(per_node.values()) / len(per_node),
        latency=cluster.mean_latency(subgroup_id),
        delivered_per_node=stats0.delivered,
        duration=duration,
        rdma_writes=cluster.fabric.total_writes_posted(),
        post_time=thread.post_time if thread is not None else 0.0,
        busy_time=thread.busy_time if thread is not None else 0.0,
        sender_wait_fraction=(wait / duration if duration else 0.0),
        mean_batches=stats0.mean_batches,
        nulls_sent=sum(cluster.group(nid).stats(subgroup_id).nulls_sent
                       for nid in spec.members),
        per_node_throughput=per_node,
    )


def drive_to_completion(cluster: Cluster, expectations: Dict[int, int],
                        max_time: float) -> None:
    """Run a cluster until its workload completes.

    ``expectations`` maps subgroup id -> total deliveries wanted (per
    sender count x senders x members). Backends whose protocol goes
    idle at workload end (Spindle) run to quiescence; backends with
    standing timers (Paxos heartbeats never stop) are polled in slices
    and stopped once every expectation is met. Raises if ``max_time``
    simulated seconds pass first.
    """
    if cluster.backend.quiesces:
        cluster.run_to_quiescence(max_time=max_time)
        return
    deadline = cluster.sim.now + max_time
    step = max_time / 256.0

    def done() -> bool:
        return all(cluster.total_delivered(sg) >= want
                   for sg, want in expectations.items())

    while not done():
        if cluster.sim.now >= deadline:
            raise RuntimeError(
                f"workload incomplete at {deadline}s: "
                f"{ {sg: cluster.total_delivered(sg) for sg in expectations} }"
                f" of {expectations}")
        cluster.run(until=min(deadline, cluster.sim.now + step))
    cluster.stop()


def single_subgroup(
    n: int,
    pattern: str = "all",
    config: Optional[SpindleConfig] = None,
    message_size: int = 10240,
    count: int = 200,
    window: int = 100,
    timing: Optional[TimingModel] = None,
    latency_model: Optional[LatencyModel] = None,
    max_time: float = 60.0,
    seed: int = 0,
    backend=None,
) -> ExperimentResult:
    """§4.1.1: one subgroup over all nodes, continuous senders.

    ``backend`` selects the ordering protocol (``"spindle"`` default,
    ``"paxos"`` for the baseline comparison — docs/ORDERING.md)."""
    config = config if config is not None else SpindleConfig.optimized()
    cluster = Cluster(n, config=config, timing=timing, latency=latency_model,
                      seed=seed, backend=backend)
    senders = sender_set(n, pattern)
    cluster.add_subgroup(senders=senders, window=window,
                         message_size=message_size)
    cluster.build()
    for nid in senders:
        cluster.spawn_sender(continuous_sender(
            cluster.mc(nid, 0), count=count, size=message_size))
    drive_to_completion(cluster, {0: count * len(senders) * n},
                        max_time=max_time)
    cluster.assert_all_delivered(0, per_sender=count)
    return _collect(cluster, 0, count * len(senders), cluster.sim.now)


def multi_subgroup(
    n: int,
    num_subgroups: int,
    active_subgroups: int = 1,
    config: Optional[SpindleConfig] = None,
    message_size: int = 10240,
    count: int = 150,
    window: int = 100,
    max_time: float = 120.0,
    seed: int = 0,
) -> ExperimentResult:
    """§4.1.3: all nodes in every subgroup; only some subgroups active.

    With ``active_subgroups == 1`` each node sends in subgroup 0 only
    (the single-active-subgroup test, Figs. 8/9); with more, node
    workloads round-robin across the active subgroups (Fig. 13).
    """
    config = config if config is not None else SpindleConfig.optimized()
    cluster = Cluster(n, config=config, seed=seed)
    for _ in range(num_subgroups):
        cluster.add_subgroup(window=window, message_size=message_size)
    cluster.build()
    for sg in range(active_subgroups):
        for nid in cluster.node_ids:
            cluster.spawn_sender(continuous_sender(
                cluster.mc(nid, sg), count=count, size=message_size))
    cluster.run_to_quiescence(max_time=max_time)
    for sg in range(active_subgroups):
        cluster.assert_all_delivered(sg, per_sender=count)
    # Aggregate throughput per node: total bytes delivered across the
    # active subgroups over the node's whole delivery window. (Summing
    # per-subgroup steady-state slopes would over-count: the subgroups'
    # delivery windows interleave, not coincide.)
    totals = []
    for nid in cluster.node_ids:
        stats = [cluster.group(nid).stats(sg)
                 for sg in range(active_subgroups)]
        total_bytes = sum(s.bytes_delivered for s in stats)
        start = min(s.first_delivery_time for s in stats)
        end = max(s.last_delivery_time for s in stats)
        totals.append(total_bytes / (end - start) if end > start else 0.0)
    result = _collect(cluster, 0, count * n, cluster.sim.now)
    result.throughput = sum(totals) / len(totals)
    result.extras["active_fraction_node0"] = (
        sum(cluster.group(0).thread.subgroup_time_fraction(sg)
            for sg in range(active_subgroups))
    )
    return result


def delayed_senders(
    n: int,
    delayed: Sequence[int],
    delay: float,
    config: Optional[SpindleConfig] = None,
    message_size: int = 10240,
    count: int = 150,
    delayed_count: Optional[int] = None,
    window: int = 100,
    indefinite: bool = False,
    max_time: float = 120.0,
    seed: int = 0,
) -> ExperimentResult:
    """§4.2.1: all senders, but some are delayed (or go silent).

    ``indefinite=True`` makes the delayed senders send a token burst and
    then stop forever (the paper's "lengthy delay").
    """
    config = config if config is not None else SpindleConfig.batching_and_nulls()
    cluster = Cluster(n, config=config, seed=seed)
    cluster.add_subgroup(window=window, message_size=message_size)
    cluster.build()
    delayed_set = set(delayed)
    expected = 0
    for nid in cluster.node_ids:
        if nid in delayed_set:
            if indefinite:
                burst = delayed_count if delayed_count is not None else 2
                cluster.spawn_sender(limited_sender(
                    cluster.mc(nid, 0), count=burst, size=message_size))
                expected += burst
            else:
                slow_count = delayed_count if delayed_count is not None else count
                cluster.spawn_sender(continuous_sender(
                    cluster.mc(nid, 0), count=slow_count, size=message_size,
                    delay=delay))
                expected += slow_count
        else:
            cluster.spawn_sender(continuous_sender(
                cluster.mc(nid, 0), count=count, size=message_size))
            expected += count
    cluster.run_to_quiescence(max_time=max_time)
    for nid in cluster.node_ids:
        got = cluster.group(nid).stats(0).delivered
        if got != expected:
            raise AssertionError(f"node {nid} delivered {got}/{expected}")
    result = _collect(cluster, 0, expected, cluster.sim.now)
    # §4.2.1 methodology: bandwidth is measured after a fixed number of
    # deliveries, excluding the tail where only delayed senders trickle.
    rates = [
        cluster.group(nid).stats(0).throughput(until_fraction=0.85)
        for nid in cluster.node_ids
    ]
    result.throughput = sum(rates) / len(rates)
    # Inter-delivery time of a continuous sender's messages (§4.2.1).
    continuous = [nid for nid in cluster.node_ids if nid not in delayed_set]
    if continuous:
        observer = cluster.group(continuous[0]).stats(0)
        rank = cluster.view.subgroups[0].senders.index(continuous[0])
        result.extras["interdelivery_continuous"] = (
            observer.mean_interdelivery(rank))
    return result

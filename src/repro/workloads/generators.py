"""Workload generators: the sending patterns of the paper's evaluation.

Each generator is a simulated-process generator to pass to
``Cluster.spawn_sender``. They correspond to §4's scenarios:

* :func:`continuous_sender` — tight-loop streaming (§4.1.1), optionally
  with a fixed busy-wait delay after every send or every N-th send
  (§4.2.1's 1 µs / 100 µs delayed senders).
* :func:`limited_sender` — sends a burst then stops forever (§4.2.1's
  "delayed indefinitely" senders).
* :func:`jittered_sender` — random inter-send gaps, for robustness and
  property tests (not a paper figure, but the "real setting, more varied
  patterns" of §4.2.2).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.multicast import SubgroupMulticast

__all__ = ["continuous_sender", "limited_sender", "jittered_sender"]

PayloadFn = Callable[[int], Optional[bytes]]


def continuous_sender(
    mc: SubgroupMulticast,
    count: int,
    size: int,
    payload_fn: Optional[PayloadFn] = None,
    delay: float = 0.0,
    delay_every: int = 1,
    start_delay: float = 0.0,
):
    """Send ``count`` messages of ``size`` bytes as fast as possible.

    ``delay`` adds a busy-wait after every ``delay_every``-th send (the
    paper's delayed-sender experiment, §4.2.1). ``payload_fn(k)`` may
    supply real bytes for content-checking tests; None sends
    timing-only payloads.
    """
    if start_delay > 0:
        yield start_delay
    for k in range(count):
        payload = payload_fn(k) if payload_fn is not None else None
        yield from mc.send(size, payload)
        if delay > 0 and (k + 1) % delay_every == 0:
            yield delay  # busy-wait, as in the paper's delay loop
    mc.mark_finished()


def limited_sender(
    mc: SubgroupMulticast,
    count: int,
    size: int,
    payload_fn: Optional[PayloadFn] = None,
):
    """Send ``count`` messages then go silent forever ("delayed
    indefinitely", §4.2.1). Equivalent to continuous_sender but named
    for intent at call sites."""
    yield from continuous_sender(mc, count, size, payload_fn)


def jittered_sender(
    mc: SubgroupMulticast,
    count: int,
    size: int,
    rng,
    max_gap: float,
    payload_fn: Optional[PayloadFn] = None,
):
    """Send with uniformly random gaps in [0, max_gap] between sends."""
    for k in range(count):
        payload = payload_fn(k) if payload_fn is not None else None
        yield from mc.send(size, payload)
        gap = rng.random() * max_gap
        if gap > 0:
            yield gap
    mc.mark_finished()

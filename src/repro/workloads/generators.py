"""Workload generators: the sending patterns of the paper's evaluation.

Each generator is a simulated-process generator to pass to
``Cluster.spawn_sender``. They correspond to §4's scenarios:

* :func:`continuous_sender` — tight-loop streaming (§4.1.1), optionally
  with a fixed busy-wait delay after every send or every N-th send
  (§4.2.1's 1 µs / 100 µs delayed senders).
* :func:`limited_sender` — sends a burst then stops forever (§4.2.1's
  "delayed indefinitely" senders).
* :func:`jittered_sender` — random inter-send gaps, for robustness and
  property tests (not a paper figure, but the "real setting, more varied
  patterns" of §4.2.2).
* :func:`open_loop_client` — Poisson arrivals with per-request
  deadline/SLO accounting (:class:`SloStats`). Unlike the closed-loop
  senders above (which self-throttle: the next send waits for the
  previous one's slot), an open-loop client keeps arriving at its rate
  regardless of service progress — the only workload shape that can
  expose queueing collapse under overload, which is exactly what the
  sharded service plane's admission control exists to prevent
  (docs/SHARDING.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..core.multicast import SubgroupMulticast

__all__ = ["continuous_sender", "limited_sender", "jittered_sender",
           "open_loop_client", "SloStats"]

PayloadFn = Callable[[int], Optional[bytes]]


def continuous_sender(
    mc: SubgroupMulticast,
    count: int,
    size: int,
    payload_fn: Optional[PayloadFn] = None,
    delay: float = 0.0,
    delay_every: int = 1,
    start_delay: float = 0.0,
):
    """Send ``count`` messages of ``size`` bytes as fast as possible.

    ``delay`` adds a busy-wait after every ``delay_every``-th send (the
    paper's delayed-sender experiment, §4.2.1). ``payload_fn(k)`` may
    supply real bytes for content-checking tests; None sends
    timing-only payloads.
    """
    if start_delay > 0:
        yield start_delay
    for k in range(count):
        payload = payload_fn(k) if payload_fn is not None else None
        yield from mc.send(size, payload)
        if delay > 0 and (k + 1) % delay_every == 0:
            yield delay  # busy-wait, as in the paper's delay loop
    mc.mark_finished()


def limited_sender(
    mc: SubgroupMulticast,
    count: int,
    size: int,
    payload_fn: Optional[PayloadFn] = None,
):
    """Send ``count`` messages then go silent forever ("delayed
    indefinitely", §4.2.1). Equivalent to continuous_sender but named
    for intent at call sites."""
    yield from continuous_sender(mc, count, size, payload_fn)


def jittered_sender(
    mc: SubgroupMulticast,
    count: int,
    size: int,
    rng,
    max_gap: float,
    payload_fn: Optional[PayloadFn] = None,
):
    """Send with uniformly random gaps in [0, max_gap] between sends."""
    for k in range(count):
        payload = payload_fn(k) if payload_fn is not None else None
        yield from mc.send(size, payload)
        gap = rng.random() * max_gap
        if gap > 0:
            yield gap
    mc.mark_finished()


# ===========================================================================
# Open-loop clients (the sharded service plane's load sources)
# ===========================================================================


@dataclass
class SloStats:
    """Deadline/SLO accounting for one (or a pool of) open-loop clients.

    Latency is measured arrival-to-outcome in simulated seconds; a
    request *completes* when its generator returns. Outcomes are
    bucketed by the ``status`` attribute of whatever the request
    generator returns ("ok" / "rejected" / "timeout"; anything else —
    including plain return values from non-router requests — counts as
    ok). ``slo_misses`` additionally counts ok-completions that landed
    after their deadline (served, but too late).
    """

    submitted: int = 0
    completed: int = 0
    ok: int = 0
    rejected: int = 0
    timeouts: int = 0
    slo_misses: int = 0
    attempts: int = 0
    latencies: List[float] = field(default_factory=list)

    def record(self, status: str, latency: float,
               deadline_missed: bool = False, attempts: int = 1) -> None:
        self.completed += 1
        self.attempts += attempts
        if status == "rejected":
            self.rejected += 1
            return
        if status == "timeout":
            self.timeouts += 1
            return
        self.ok += 1
        self.latencies.append(latency)
        if deadline_missed:
            self.slo_misses += 1

    # ----------------------------------------------------------- summaries

    def percentile(self, p: float) -> float:
        """Latency percentile over ok-completions (0 when empty)."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        idx = min(len(ordered) - 1, int(p / 100.0 * len(ordered)))
        return ordered[idx]

    def p50(self) -> float:
        return self.percentile(50.0)

    def p99(self) -> float:
        return self.percentile(99.0)

    def mean_latency(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    def to_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "ok": self.ok,
            "rejected": self.rejected,
            "timeouts": self.timeouts,
            "slo_misses": self.slo_misses,
            "attempts": self.attempts,
            "p50_latency": self.p50(),
            "p99_latency": self.p99(),
            "mean_latency": self.mean_latency(),
        }


def open_loop_client(
    sim,
    request_factory: Callable[[int], object],
    rate: float,
    count: int,
    rng,
    stats: Optional[SloStats] = None,
    deadline: Optional[float] = None,
    name: str = "client",
    max_resubmits: int = 0,
):
    """Open-loop Poisson client: arrivals at ``rate`` requests/second.

    ``request_factory(k)`` returns the k-th request *generator* (e.g.
    ``lambda k: router.request("put", key(k), value(k))``). Each arrival
    is spawned as its own simulated process, so a slow or rejected
    request never delays the next arrival — the defining property of an
    open-loop workload. ``deadline`` (seconds, relative to arrival) is
    passed to :class:`SloStats` accounting: ok-completions past it are
    SLO misses.

    Inter-arrival gaps draw from ``rng.expovariate(rate)`` — seed the
    RNG for deterministic runs, and give each client its OWN instance:
    gaps are pre-drawn in chunks (same values, same order, far fewer
    Python-level calls on the arrival hot path), so interleaving draws
    from a shared RNG would reorder another consumer's stream. Returns
    the :class:`SloStats` used (the ``stats`` argument, or a fresh one
    reachable from the generator's return value when driven to
    completion).

    ``max_resubmits`` lets a rejected request honor the router's
    ``retry_after`` hint (jittered when ``RouterConfig.retry_jitter``
    is set — de-synchronizing a thundering herd of open-loop clients):
    the per-request process sleeps the hint and resubmits, up to the
    budget, before the rejection is recorded. 0 (the default) records
    the first rejection immediately, exactly as before.
    """
    if rate <= 0:
        raise ValueError("arrival rate must be positive")
    if count < 1:
        raise ValueError("count must be positive")
    if stats is None:
        stats = SloStats()

    def one(k: int, arrived: float):
        outcome = yield from request_factory(k)
        resubmits = 0
        while (resubmits < max_resubmits
               and getattr(outcome, "status", "ok") == "rejected"
               and getattr(outcome, "retry_after", 0.0) > 0.0):
            yield outcome.retry_after
            resubmits += 1
            outcome = yield from request_factory(k)
        latency = sim.now - arrived
        status = getattr(outcome, "status", "ok")
        attempts = getattr(outcome, "attempts", 1)
        missed = deadline is not None and latency > deadline
        stats.record(status, latency, deadline_missed=missed,
                     attempts=attempts)

    # Chunked arrival loop: draw a batch of gaps at once and hoist the
    # per-arrival attribute lookups out of the loop. The gap *values*
    # and their order are identical to drawing one per arrival, and the
    # simulated arrival instants are unchanged (each gap is still one
    # sleep), so seeded runs are bit-identical to the scalar loop.
    spawn = sim.spawn
    expovariate = rng.expovariate
    chunk = 512
    k = 0
    while k < count:
        gaps = [expovariate(rate) for _ in range(min(chunk, count - k))]
        for gap in gaps:
            yield gap
            stats.submitted += 1
            spawn(one(k, sim.now), name=f"{name}.req{k}")
            k += 1
    return stats

"""Cluster builder: the user-facing entry point of the library.

Assembles a simulated fabric, one :class:`~repro.core.group.GroupNode`
per node, wires the SST replicas together, and offers helpers to spawn
workload processes and collect the paper's metrics.

    from repro import Cluster, SpindleConfig
    from repro.workloads import continuous_sender

    cluster = Cluster(num_nodes=4, config=SpindleConfig.optimized())
    sg = cluster.add_subgroup(message_size=10240, window=100)
    cluster.build()
    for node in cluster.node_ids:
        cluster.spawn_sender(continuous_sender(
            cluster.mc(node, sg.subgroup_id), count=100, size=10240))
    cluster.run()
    print(cluster.aggregate_throughput(sg.subgroup_id))
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..core.config import SpindleConfig, TimingModel
from ..core.group import GroupNode
from ..core.membership import SubgroupSpec, View
from ..core.persistence import StorageModel
from ..metrics.registry import MetricsRegistry, registry_enabled_from_env
from ..ordering.base import OrderingEndpoint, resolve_backend
from ..rdma.fabric import RdmaFabric
from ..rdma.latency import LatencyModel
from ..recovery.trim import TrimLedger
from ..sim.engine import Simulator
from ..storage.device import ClusterStorage, decode_log_entry, encode_log_entry

__all__ = ["Cluster"]


class Cluster:
    """A simulated Derecho deployment.

    Defaults mirror the paper's testbed: any number of nodes up to the
    16-machine, 12.5 GB/s cluster used in §4. ``backend`` selects the
    ordering protocol — ``"spindle"`` (the paper's SST multicast, the
    default) or ``"paxos"`` (the Multi-Paxos baseline it is compared
    against); see docs/ORDERING.md.
    """

    def __init__(
        self,
        num_nodes: int,
        config: Optional[SpindleConfig] = None,
        timing: Optional[TimingModel] = None,
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
        metrics: Optional[MetricsRegistry] = None,
        backend=None,
        engine: Optional[str] = None,
    ):
        if num_nodes < 1:
            raise ValueError("cluster needs at least one node")
        self.seed = seed
        self.backend = resolve_backend(backend)
        #: ``engine`` selects the event-scheduler implementation
        #: ("optimized" / "reference", see docs/ENGINE.md); None defers
        #: to SPINDLE_ENGINE or the optimized default.
        self.sim = Simulator(seed=seed, engine=engine)
        #: The fabric-wide metrics registry (docs/METRICS.md). Pass your
        #: own, or set SPINDLE_METRICS=0 to make every instrument a
        #: shared no-op (zero-cost-when-disabled).
        self.metrics = metrics if metrics is not None else MetricsRegistry(
            clock=lambda: self.sim.now,
            enabled=registry_enabled_from_env(),
        )
        self.fabric = RdmaFabric(self.sim, latency=latency)
        self.config = config if config is not None else SpindleConfig.optimized()
        self.timing = timing if timing is not None else TimingModel()
        self.node_ids: List[int] = [
            self.fabric.add_node().node_id for _ in range(num_nodes)
        ]
        self._specs: List[SubgroupSpec] = []
        self.groups: Dict[int, GroupNode] = {}
        self.view: Optional[View] = None
        self._built = False
        self._membership_params: Optional[dict] = None
        self._faults = None
        self._recovery = None
        #: Declared by :meth:`add_shards`; consumed by :meth:`router`.
        self._shard_plan: Optional[dict] = None
        self._router = None
        self._txn_plane = None
        self._fabric_collectors_registered = False
        #: Crash-stopped nodes (they stay in ``node_ids`` — provisioned
        #: machines — but are excluded from :meth:`live_nodes`).
        self.dead_nodes: Set[int] = set()
        #: Timing model of the simulated SSDs (replay cost on restart).
        self.storage_model = StorageModel()
        #: The cluster's stable storage: one append-only
        #: :class:`~repro.storage.StorageDevice` per (node, purpose),
        #: surviving crashes and view changes — durable logs and Paxos
        #: acceptor state live here (docs/DURABILITY.md).
        self.storage = ClusterStorage(self.sim, self.storage_model)
        #: Per-epoch audit log of ragged-edge trim decisions, fed by the
        #: membership protocol and the recovery coordinator and checked
        #: by :class:`repro.recovery.verify.VsyncVerifier`.
        self.trim_ledger = TrimLedger()
        #: Fired with the new :class:`View` at the end of every install
        #: (including the initial :meth:`build`).
        self.on_view_installed: List[Callable[[View], None]] = []
        #: Fired with ``(old_view, old_groups)`` at the *start* of every
        #: epoch restart, before the old groups are torn down — the last
        #: chance to snapshot per-epoch protocol state.
        self.on_epoch_end: List[Callable[[View, Dict[int, GroupNode]], None]] = []

    # ---------------------------------------------------------------- setup

    def add_subgroup(
        self,
        members: Optional[Sequence[int]] = None,
        senders: Optional[Sequence[int]] = None,
        window: int = 100,
        message_size: int = 10240,
        delivery_mode: str = "atomic",
        persistent: bool = False,
    ) -> SubgroupSpec:
        """Declare a subgroup (before :meth:`build`). Members default to
        all nodes; senders default to all members."""
        if self._built:
            raise RuntimeError("cluster already built")
        spec = SubgroupSpec.of(
            subgroup_id=len(self._specs),
            members=members if members is not None else self.node_ids,
            senders=senders,
            window=window,
            message_size=message_size,
            delivery_mode=delivery_mode,
            persistent=persistent,
        )
        self._specs.append(spec)
        return spec

    def add_shards(
        self,
        num_shards: int,
        replication: int = 2,
        num_subgroups: Optional[int] = None,
        window: int = 16,
        message_size: int = 512,
        persistent: bool = False,
    ) -> List[SubgroupSpec]:
        """Declare the sharded service plane's subgroups (before
        :meth:`build`): ``num_subgroups`` (default: one per shard,
        capped by what ``num_nodes``/``replication`` can host
        disjointly) atomic subgroups of ``replication`` members each,
        round-robin over the provisioned nodes, plus the shard plan the
        router derives its consistent-hash map from (docs/SHARDING.md).

        Returns the created specs; access the plane after build via
        :meth:`router`.
        """
        if self._built:
            raise RuntimeError("cluster already built")
        if num_shards < 1:
            raise ValueError("need at least one shard")
        if replication < 1:
            raise ValueError("replication must be positive")
        if replication > len(self.node_ids):
            raise ValueError(
                f"replication {replication} exceeds {len(self.node_ids)} nodes")
        if num_subgroups is None:
            num_subgroups = min(num_shards,
                                max(1, len(self.node_ids) // replication))
        specs: List[SubgroupSpec] = []
        n = len(self.node_ids)
        for i in range(num_subgroups):
            members = [self.node_ids[(i * replication + j) % n]
                       for j in range(replication)]
            specs.append(self.add_subgroup(
                members=members, window=window, message_size=message_size,
                persistent=persistent))
        self._shard_plan = {
            "num_shards": num_shards,
            "subgroup_ids": [spec.subgroup_id for spec in specs],
        }
        return specs

    def router(self, config=None, transfer_config=None) -> "ShardRouter":
        """The sharded service plane's request router (built lazily on
        first access; requires :meth:`add_shards` + :meth:`build`)::

            cluster.add_shards(num_shards=4, replication=2)
            cluster.build()
            outcome = yield from cluster.router().request(
                "put", b"key", b"value")
        """
        if self._router is None:
            if not self._built:
                raise RuntimeError("build() the cluster before router()")
            from ..shard import build_shard_plane

            self._router = build_shard_plane(
                self, config=config, transfer_config=transfer_config)
        return self._router

    def txn(self, config=None) -> "TxnPlane":
        """The cross-shard transaction plane (built lazily over
        :meth:`router` on first access; docs/TRANSACTIONS.md)::

            plane = cluster.txn(TxnConfig(cc="2pl"))
            outcome = yield from plane.run_txn([
                TxnOp("put", b"a", b"1"), TxnOp("put", b"b", b"2")])
        """
        if self._txn_plane is None:
            from ..txn import TxnPlane

            self._txn_plane = TxnPlane(self.router(), config=config)
        return self._txn_plane

    def enable_membership(self, heartbeat_period: float = 100e-6,
                          suspicion_timeout: float = 500e-6,
                          confirmation_grace: Optional[float] = None,
                          suspicion_backoff: float = 2.0) -> None:
        """Turn on failure detection + view changes (before build).

        Off by default: the performance experiments measure failure-free
        epochs, as the paper does. ``confirmation_grace`` (default: one
        ``suspicion_timeout``) is how long a stale peer stays *locally*
        suspected before the (irreversible) suspicion is published —
        partitions that heal inside the grace window cause no view
        change; ``suspicion_backoff`` multiplies a member's effective
        timeout after each rescinded suspicion (flapping-link damping).
        See docs/FAULTS.md."""
        if self._built:
            raise RuntimeError("cluster already built")
        if not self.backend.view_synchronous:
            raise RuntimeError(
                f"the {self.backend.name!r} backend is not view-synchronous; "
                f"it masks failures internally (leader change) rather than "
                f"through membership view changes — see docs/ORDERING.md")
        self._membership_params = dict(
            heartbeat_period=heartbeat_period,
            suspicion_timeout=suspicion_timeout,
            confirmation_grace=confirmation_grace,
            suspicion_backoff=suspicion_backoff,
        )

    def build(self) -> "Cluster":
        """Create the view, all GroupNodes, wire SSTs, start threads."""
        if self._built:
            raise RuntimeError("cluster already built")
        if not self._specs:
            raise RuntimeError("declare at least one subgroup first")
        self.view = View(0, tuple(self.node_ids), tuple(self._specs))
        self._install(self.view)
        self._built = True
        return self

    def _install(self, view: View) -> None:
        """Instantiate the backend's group objects for a view and start
        them (the backend wires its own replicas — SSTs or mailboxes)."""
        self.groups = self.backend.build_groups(self, view)
        if self.metrics.enabled:
            self._register_fabric_collectors()
        for group in self.groups.values():
            if group.membership is not None:
                group.membership.trim_ledger = self.trim_ledger
            group.start()
        self.view = view
        # Seed the new epoch's persistence engines from the on-SSD logs
        # (durable state survives the epoch restart): each engine shares
        # its node's device, which still holds the prior epoch's fsynced
        # records.
        for node_id, group in self.groups.items():
            for sg_id, engine in group.persistence.items():
                records = engine.device.records()
                if records:
                    engine.adopt_log(
                        [decode_log_entry(b) for b in records],
                        engine.device.billed_total)
        for callback in list(self.on_view_installed):
            callback(view)

    def _register_fabric_collectors(self) -> None:
        """Pull-mirrors of NIC/fabric state into the registry.

        Zero hot-path cost: the NIC keeps counting into its plain dicts
        and these collectors copy the totals into labelled counters only
        when a snapshot or export is taken (docs/METRICS.md). Reads the
        live ``fabric.nodes`` map, so nodes added later are covered, and
        registering once survives view changes."""
        if self._fabric_collectors_registered:
            return
        self._fabric_collectors_registered = True
        fabric = self.fabric
        registry = self.metrics

        def mirror_nics() -> None:
            for nid, node in sorted(fabric.nodes.items()):
                scope = registry.scoped(node=nid)
                scope.counter(
                    "spindle_nic_writes_posted_total",
                    "RDMA writes posted by this NIC").set_to(node.writes_posted)
                scope.counter(
                    "spindle_nic_bytes_posted_total",
                    "bytes posted by this NIC").set_to(node.bytes_posted)
                scope.counter(
                    "spindle_nic_writes_received_total",
                    "RDMA writes landed at this NIC").set_to(node.writes_received)
                for reason, count in sorted(
                        node.writes_dropped_by_reason.items()):
                    scope.counter(
                        "spindle_nic_writes_dropped_total",
                        "writes dropped, by reason (docs/FAULTS.md)",
                        reason=reason).set_to(count)
            registry.counter(
                "spindle_rdma_writes_posted_total",
                "fabric-wide RDMA writes posted").set_to(
                    fabric.total_writes_posted())

        def mirror_views() -> None:
            if self.view is not None:
                registry.gauge("spindle_view_id",
                               "currently installed view").set(
                                   self.view.view_id)
                registry.gauge("spindle_view_members",
                               "member count of the installed view").set(
                                   len(self.view.members))

        registry.add_collector(mirror_nics)
        registry.add_collector(mirror_views)

    def metrics_snapshot(self) -> dict:
        """Deterministic fabric-wide snapshot (runs the collectors)."""
        return self.metrics.snapshot()

    def metrics_json(self, indent: Optional[int] = 2) -> str:
        """Schema-versioned JSON export of the whole registry."""
        return self.metrics.to_json(indent=indent)

    def metrics_prometheus(self) -> str:
        """Prometheus text exposition of the whole registry."""
        return self.metrics.to_prometheus()

    def stage_profile(self) -> dict:
        """The §4.1.1 per-stage time breakdown (docs/METRICS.md)."""
        from ..metrics.stages import stage_profile

        return stage_profile(self.metrics)

    def install_view(self, new_view: View) -> None:
        """Epoch restart after a view change: tear down the old epoch's
        protocol state and build the new view's (fresh SSTs, fresh
        registration — §2.3: memory layout is fixed *per view*).

        Durable logs live on each node's (simulated) SSD
        (:attr:`storage`), so they survive the restart: the new epoch's
        engines adopt their device's fsynced contents
        (:meth:`PersistenceEngine.adopt_log
        <repro.core.persistence.PersistenceEngine.adopt_log>`) — crashed
        members' devices included, so a later restart can replay them.
        """
        old_view, old_groups = self.view, self.groups
        if old_view is not None:
            for callback in list(self.on_epoch_end):
                callback(old_view, old_groups)
        for node_id, group in old_groups.items():
            # No harvesting needed: each engine's fsynced log already
            # lives on its node's device in ``self.storage``, which the
            # epoch restart leaves untouched.
            group.teardown()
        self._install(new_view)

    def fail_node(self, node_id: int) -> None:
        """Crash-stop a node: NIC drops all its traffic, threads die.
        The node stays in ``node_ids`` (the machine is still racked) but
        leaves :meth:`live_nodes` until :meth:`restart_node`."""
        self.fabric.fail_node(node_id)
        self.dead_nodes.add(node_id)
        group = self.groups.get(node_id)
        if group is not None:
            group.kill()
        # Power loss hits the write caches: every device on the node
        # drops (or, with a torn-append fault armed, tears) its
        # un-fsynced tail. Fsynced bytes survive.
        self.storage.crash_node(node_id)

    def restart_node(self, node_id: int) -> None:
        """Power a crashed node's NIC back on (crash-recovery model:
        volatile state is gone, the durable log survives on its SSD).
        Protocol re-admission is the recovery plane's job — see
        :attr:`recovery` and docs/RECOVERY.md. Only a crashed node may
        restart: restarting a live node (never crashed, or restarted
        twice) would wrongly re-run the backend's crash-recovery path
        on live protocol state, so it raises."""
        if node_id not in self.dead_nodes:
            raise RuntimeError(
                f"restart_node({node_id}): node is not crashed "
                f"(never failed, or already restarted)")
        node = self.fabric.nodes[node_id]
        node.alive = True
        node.egress_free_at = max(node.egress_free_at, self.sim.now)
        self.dead_nodes.discard(node_id)
        self.backend.on_node_restart(self, node_id)

    def live_nodes(self) -> List[int]:
        """Provisioned nodes whose NIC is up (never address a corpse)."""
        return [n for n in self.node_ids
                if n not in self.dead_nodes and self.fabric.nodes[n].alive]

    # ------------------------------------------------------- durable storage

    def durable_log(self, node_id: int, subgroup_id: int) -> Tuple[list, int]:
        """One node's on-SSD durable log for a subgroup, as
        ``(entries, bytes)``. Reads the live engine when the node runs
        one this epoch, else the node's device in :attr:`storage`
        (which is how a crashed node's log is replayed after
        restart)."""
        group = self.groups.get(node_id)
        if group is not None and subgroup_id in group.persistence:
            engine = group.persistence[subgroup_id]
            return list(engine.log), engine.log_bytes
        device = self.storage.peek(node_id, f"sg{subgroup_id}")
        if device is None:
            return [], 0
        entries = [decode_log_entry(b) for b in device.records()]
        return entries, device.billed_total

    def adopt_durable_log(self, node_id: int, subgroup_id: int,
                          entries, log_bytes: Optional[int] = None) -> None:
        """Overwrite a node's stored durable log (recovery state
        transfer: replayed prefix + fetched delta). The next view that
        includes the node seeds its persistence engine from this."""
        entries = [tuple(e) for e in entries]
        if log_bytes is None:
            log_bytes = sum(len(p) for _s, _n, p in entries if p is not None)
        pairs = [(encode_log_entry(s, n, p), len(p) if p is not None else 0)
                 for s, n, p in entries]
        base = log_bytes - sum(b for _f, b in pairs)
        self.storage.device(node_id, f"sg{subgroup_id}").rewrite(
            pairs, billed_base=base)

    @property
    def recovery(self) -> "RecoveryCoordinator":
        """The cluster's crash-recovery coordinator (created and
        attached on first use — docs/RECOVERY.md)::

            cluster.recovery.set_checksum(0, lambda n: stores[n].checksum())
            cluster.faults.crash(3, at=ms(1), restart_at=ms(6))
        """
        if self._recovery is None:
            self._require_view_synchrony("the recovery coordinator")
            from ..recovery.coordinator import RecoveryCoordinator

            self._recovery = RecoveryCoordinator(self).attach()
        return self._recovery

    def _require_view_synchrony(self, what: str) -> None:
        if not self.backend.view_synchronous:
            raise RuntimeError(
                f"{what} drives wedge/trim/epoch-restart and needs a "
                f"view-synchronous backend; {self.backend.name!r} recovers "
                f"internally (docs/ORDERING.md)")

    def enable_recovery(self, config=None) -> "RecoveryCoordinator":
        """Create (or reconfigure) the recovery coordinator with an
        explicit :class:`~repro.recovery.coordinator.RecoveryConfig`.
        Must be called before the first :attr:`recovery` access if a
        non-default config is wanted."""
        if self._recovery is not None:
            raise RuntimeError("recovery coordinator already created")
        self._require_view_synchrony("the recovery coordinator")
        from ..recovery.coordinator import RecoveryCoordinator

        self._recovery = RecoveryCoordinator(self, config).attach()
        return self._recovery

    @property
    def faults(self) -> "FaultPlane":
        """The cluster's fault-injection plane (created on first use).

        Partition/jitter/stall/crash injection with a JSON-serializable
        schedule for exact replay — see :mod:`repro.faults` and
        docs/FAULTS.md::

            cluster.faults.partition([[0, 1], [2, 3]],
                                     at=ms(1), heal_at=ms(2))
        """
        if self._faults is None:
            from ..faults.plane import FaultPlane

            self._faults = FaultPlane(self)
        return self._faults

    def add_node(self) -> int:
        """Provision a fresh machine (e.g. a joiner for the next view).

        The node exists on the fabric but participates in no protocol
        until a view that includes it is installed via
        :meth:`install_view` (joins happen at epoch boundaries, §2.1).
        """
        node = self.fabric.add_node()
        self.node_ids.append(node.node_id)
        if self._faults is not None:
            self._faults.adopt(node)
        return node.node_id

    # -------------------------------------------------------------- running

    def spawn_sender(self, generator, name: str = "sender"):
        """Spawn a workload process (e.g. from repro.workloads.generators)."""
        return self.sim.spawn(generator, name=name)

    def run(self, until: Optional[float] = None) -> float:
        """Run the simulation until quiescent (or ``until`` seconds)."""
        return self.sim.run(until=until)

    def run_to_quiescence(self, max_time: float = 5.0) -> float:
        """Run until the system quiesces; raise if events are still
        pending ``max_time`` simulated seconds from now (livelock
        guard). ``max_time`` is relative, so multi-epoch scripts can
        call this once per epoch."""
        deadline = self.sim.now + max_time
        self.sim.run(until=deadline)
        pending = self.sim.peek()
        if pending is not None:
            raise RuntimeError(
                f"not quiescent by {deadline}s (next event at {pending}s)"
            )
        return self.sim.now

    def stop(self) -> None:
        """Stop every node's polling thread (lets the event queue drain)."""
        for group in self.groups.values():
            group.stop()

    # -------------------------------------------------------------- access

    def group(self, node_id: int) -> GroupNode:
        return self.groups[node_id]

    def mc(self, node_id: int, subgroup_id: int) -> OrderingEndpoint:
        """The ordering endpoint of a node in a subgroup."""
        return self.groups[node_id].subgroup(subgroup_id)

    def members_of(self, subgroup_id: int) -> Sequence[int]:
        if self.view is None:
            # Not an assert: those vanish under `python -O`, and this is
            # an API-misuse error we want raised in every mode.
            raise RuntimeError(
                "cluster has no installed view yet; call build() before "
                "querying subgroup membership"
            )
        return self.view.subgroups[subgroup_id].members

    # -------------------------------------------------------------- metrics

    def per_node_throughput(self, subgroup_id: int) -> Dict[int, float]:
        """Delivered bytes/second at each member of a subgroup."""
        return {
            nid: self.groups[nid].stats(subgroup_id).throughput()
            for nid in self.members_of(subgroup_id)
        }

    def aggregate_throughput(self, subgroup_id: int) -> float:
        """Paper's throughput metric: delivered bytes/second averaged
        over the subgroup's members."""
        rates = self.per_node_throughput(subgroup_id)
        return sum(rates.values()) / len(rates)

    def node_throughput_all_subgroups(self, node_id: int) -> float:
        """Total delivered bytes/second at one node across subgroups."""
        return sum(
            mc.stats.throughput()
            for mc in self.groups[node_id].multicasts.values()
        )

    def mean_latency(self, subgroup_id: int) -> float:
        """Mean queue-to-delivery latency over all members (seconds)."""
        totals = [self.groups[nid].stats(subgroup_id)
                  for nid in self.members_of(subgroup_id)]
        count = sum(s.latency_count for s in totals)
        if count == 0:
            return 0.0
        return sum(s.latency_sum for s in totals) / count

    def total_delivered(self, subgroup_id: int) -> int:
        """Total messages delivered across members (for assertions)."""
        return sum(self.groups[nid].stats(subgroup_id).delivered
                   for nid in self.members_of(subgroup_id))

    def assert_all_delivered(self, subgroup_id: int, per_sender: int) -> None:
        """Check every member delivered every sent message."""
        spec = self.view.subgroups[subgroup_id]
        expected = per_sender * len(spec.senders)
        for nid in spec.members:
            got = self.groups[nid].stats(subgroup_id).delivered
            if got != expected:
                raise AssertionError(
                    f"node {nid} delivered {got}/{expected} in sg{subgroup_id}"
                )

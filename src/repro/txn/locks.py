"""Per-shard lock tables for 2PL: wound-wait + the ALock fast path.

The §3.4 lock discipline of the paper locks whole groups before a
multicast; this module scales the same idea down to keys. A
:class:`LockTable` per shard grants shared/exclusive key locks to
transactions, with **wound-wait** deadlock avoidance keyed on txn
*age* — the first attempt's txn id, retained across that txn's retries
so a repeatedly-wounded txn keeps getting older and must eventually
win every lock (the classic wound-wait progress guarantee; a fresh id
per retry would make every retry the youngest txn in the system and
starve it under contention). Lower age = older txn:

* an **older** requester *wounds* every younger holder (their next lock
  operation — or the coordinator's pre-prepare check — aborts them) and
  polls until the lock frees;
* a **younger** requester aborts itself immediately
  (:class:`TxnAborted`) rather than wait on an older txn — no
  cross-shard waits-for cycle can form.

The acquire cost models the ALock asymmetry (PAPERS.md): a coordinator
co-located with the shard's hosting subgroup takes the *local* fast
path (CAS on node-local memory), a remote coordinator pays a one-sided
RDMA round trip. The caller picks the delay; this module just charges
it. Everything is deterministic: fixed poll interval, FIFO-free
polling whose outcome depends only on simulated time and txn ids.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Set

__all__ = ["TxnAborted", "TxnHandle", "LockTable"]


class TxnAborted(Exception):
    """The transaction lost a wound-wait race and must abort."""

    def __init__(self, txn_id: int, reason: str):
        super().__init__(f"txn {txn_id} aborted: {reason}")
        self.txn_id = txn_id
        self.reason = reason


class TxnHandle:
    """The lock-table view of one transaction attempt. ``age`` is the
    wound-wait priority: the txn id of the *first* attempt, carried
    unchanged across retries."""

    __slots__ = ("txn_id", "age", "wounded")

    def __init__(self, txn_id: int, age: Optional[int] = None):
        self.txn_id = txn_id
        self.age = txn_id if age is None else age
        self.wounded = False


class _Lock:
    __slots__ = ("exclusive", "holders")

    def __init__(self) -> None:
        self.exclusive = False
        self.holders: Set[TxnHandle] = set()


class LockTable:
    """Key locks for one shard (held coordinator-side by the TxnPlane)."""

    def __init__(self, sim, shard: int, poll: float):
        self.sim = sim
        self.shard = shard
        self.poll = poll
        self._locks: Dict[bytes, _Lock] = {}
        # -- observability ----------------------------------------------------
        self.acquired = 0
        self.wounds = 0
        self.wait_aborts = 0
        self.waits = 0

    # -------------------------------------------------------------- acquire

    def acquire(self, txn: TxnHandle, key: bytes, exclusive: bool,
                delay: float) -> Generator:
        """Take (or upgrade to) the requested lock mode, charging
        ``delay`` once for the ALock fast path, then polling under
        wound-wait until granted. Raises :class:`TxnAborted` when the
        txn is wounded or loses the wait rule."""
        if delay > 0.0:
            yield delay
        while True:
            if txn.wounded:
                raise TxnAborted(txn.txn_id, "wounded")
            lock = self._locks.get(key)
            if lock is None:
                lock = self._locks[key] = _Lock()
            others = [h for h in lock.holders if h is not txn]
            if not others:
                lock.holders.add(txn)
                lock.exclusive = exclusive or lock.exclusive
                self.acquired += 1
                return
            if not exclusive and not lock.exclusive:
                lock.holders.add(txn)
                self.acquired += 1
                return
            # Conflict: wound-wait on txn age (lower = older).
            if all(txn.age < h.age for h in others):
                for h in others:
                    if not h.wounded:
                        h.wounded = True
                        self.wounds += 1
                self.waits += 1
                yield self.poll
                continue
            self.wait_aborts += 1
            raise TxnAborted(txn.txn_id, "wound-wait")

    # -------------------------------------------------------------- release

    def release_all(self, txn: TxnHandle) -> None:
        """Drop every lock this txn holds (commit, abort, or
        coordinator-crash cleanup). Zero simulated cost."""
        dead: List[bytes] = []
        for key, lock in self._locks.items():
            if txn in lock.holders:
                lock.holders.discard(txn)
                if not lock.holders:
                    dead.append(key)
        for key in dead:
            del self._locks[key]

    def held(self) -> int:
        return sum(len(lock.holders) for lock in self._locks.values())

    def counters(self) -> Dict[str, int]:
        return {
            "acquired": self.acquired,
            "wounds": self.wounds,
            "wait_aborts": self.wait_aborts,
            "waits": self.waits,
        }

"""Coordinator-crash recovery for the transaction plane.

:func:`recover_txns` is the ``recover_txns`` pass the tentpole asks
for: after a coordinator node restarts, scan its write-ahead txn log
(``BEGIN`` / ``DECISION`` / ``END`` records, docs/TRANSACTIONS.md) and
finish every transaction the crash interrupted:

* ``BEGIN`` with no ``DECISION`` — **presumed abort**: the crash hit
  before the commit point, so the verdict is abort. An abort settle is
  re-driven to every participant (idempotent: shards that never saw
  the prepare record the verdict and dedup any late replay).
* ``BEGIN`` + ``DECISION`` with no ``END`` — the crash hit mid-commit
  (or mid-abort): re-drive a settle with the **logged** verdict. Shards
  that already settled answer with their original verdict (txn-id
  dedup), shards still holding buffered writes apply or discard them.

Both paths finish by logging the missing records and fsyncing, so a
second crash re-runs a shorter pass. The whole pass is a simulated
process: it charges the storage model's read time for the log scan and
drives settles through the router's reserved lane.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional

from .records import (
    WAL_BEGIN,
    WAL_DECISION,
    WAL_END,
    encode_wal,
    scan_wal,
)

__all__ = ["TxnRecoveryReport", "recover_txns"]


@dataclass
class TxnRecoveryReport:
    """What one recovery pass found and did."""

    node: int = -1
    scanned: int = 0          # distinct txns in the WAL
    completed: int = 0        # already ENDed, nothing to do
    redriven: int = 0         # DECISION logged, settles re-driven
    presumed_abort: int = 0   # BEGIN only -> abort settles driven
    committed: List[int] = field(default_factory=list)
    aborted: List[int] = field(default_factory=list)
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def to_dict(self) -> dict:
        return {
            "node": self.node,
            "scanned": self.scanned,
            "completed": self.completed,
            "redriven": self.redriven,
            "presumed_abort": self.presumed_abort,
            "committed": list(self.committed),
            "aborted": list(self.aborted),
            "problems": list(self.problems),
            "ok": self.ok,
        }


def recover_txns(plane, node: Optional[int] = None) -> Generator:
    """Simulated-process generator: recover the txn WAL of one
    restarted coordinator node (default: the plane's default
    coordinator). Returns a :class:`TxnRecoveryReport`."""
    coordinator = (node if node is not None
                   else plane._default_coordinator())
    report = TxnRecoveryReport(node=coordinator)
    device = plane.cluster.storage.device(coordinator,
                                          plane.config.wal_device)
    records = device.reopen()
    yield device.model.read_time(sum(len(r) for r in records))
    state = scan_wal(records)
    report.scanned = len(state)
    for txn_id in sorted(state):
        rec = state[txn_id]
        if rec.kind == WAL_END:
            report.completed += 1
            continue
        if not rec.participants:
            report.problems.append(
                f"txn {txn_id}: WAL stage {rec.kind} without a BEGIN "
                f"participant list")
            continue
        if rec.kind == WAL_BEGIN:
            # Crash before the commit point: presumed abort.
            commit = False
            report.presumed_abort += 1
            device.write(encode_wal(WAL_DECISION, txn_id, commit=False))
        else:  # WAL_DECISION without END: crash inside the settle window
            commit = rec.commit
            report.redriven += 1
        yield from plane._settle_round(txn_id, rec.participants, commit,
                                       recovered=True)
        device.write(encode_wal(WAL_END, txn_id))
        (report.committed if commit else report.aborted).append(txn_id)
    yield from device.fsync()
    return report

"""The cross-shard transaction coordinator (docs/TRANSACTIONS.md).

A :class:`TxnPlane` composes multi-key transactions over the sharded
service's independent per-subgroup total orders by **two-phase
ordering**: after the CC protocol clears the attempt (OCC validation /
2PL locks), a :class:`~repro.txn.records.PrepareRecord` is sequenced
through every write shard's own multicast — the vote is decided
*at delivery*, identically on every replica of the hosting subgroup —
then a settle round carries the commit/abort verdict through the same
orders. Under OCC, shards that were only *read* certify the read set
with a settle-free validate-only slice sequenced **after** every write
shard holds its prepared locks (lock-then-validate): a concurrent
reader that could observe this txn half-applied instead trips a
prepared lock and aborts. Single-shard transactions degenerate to one
auto-commit prepare (no settle round, no WAL): atomicity inside one
total order is free.

Durability: a presumed-abort write-ahead log on the coordinator node's
storage device (``BEGIN`` before the first prepare, ``DECISION`` before
the first settle, both fsynced; ``END`` lazily after the settle round)
makes a coordinator crash mid-commit recoverable by
:func:`repro.txn.recover.recover_txns` — prepared shards hold their
buffered writes (and block conflicting prepares) until a settle with
the logged verdict arrives, which the recovery pass re-drives
idempotently.

Determinism: txn ids are a plane-local counter, wound-wait age is the
first attempt's txn id (retained across retries so wounded txns age
instead of starving), participant rounds walk shards in sorted order,
and retry backoffs are fixed — a (cluster seed, workload) pair replays
byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Set, Tuple

from ..metrics.stages import (
    TXN_STAGE_EXECUTE,
    TXN_STAGE_PREPARE,
    TXN_STAGE_SETTLE,
    TXN_STAGE_TIME,
    TXN_STAGE_VALIDATE_OR_LOCK,
    TXN_STAGES,
)
from ..sim.units import us
from .cc import ConcurrencyControl, resolve_cc
from .locks import LockTable, TxnAborted, TxnHandle
from .records import (
    WAL_BEGIN,
    WAL_DECISION,
    WAL_END,
    PrepareRecord,
    SettleRecord,
    encode_prepare,
    encode_settle,
    encode_wal,
)

__all__ = ["TxnConfig", "TxnOp", "TxnOutcome", "TxnCounters", "TxnPlane"]


@dataclass(frozen=True)
class TxnConfig:
    """Coordinator knobs (docs/TRANSACTIONS.md)."""

    #: Concurrency control protocol: "occ" | "2pl".
    cc: str = "occ"
    #: Attempt budget in :meth:`TxnPlane.run_txn` (validation aborts,
    #: wound-wait losses and admission rejects all consume one).
    max_attempts: int = 12
    #: Fixed backoff between attempts (deterministic).
    retry_backoff: float = us(120.0)
    #: ALock fast path: lock-acquire cost when the coordinator node is
    #: a member of the shard's hosting subgroup (node-local CAS)...
    local_lock_delay: float = us(0.4)
    #: ...vs. a one-sided RDMA round trip for a remote coordinator.
    remote_lock_delay: float = us(4.0)
    #: Wound-wait poll interval while an older txn waits a lock out.
    lock_poll: float = us(2.0)
    #: Coordinator WAL device name (per coordinator node).
    wal_device: str = "txnlog"
    #: fsync the WAL at BEGIN and DECISION (durable two-phase commit).
    #: Off = timing-only runs that accept coordinator amnesia.
    wal_fsync: bool = True
    #: Chaos hook: stretch the DECISION -> settle window so a scheduled
    #: coordinator crash deterministically lands mid-commit.
    settle_delay: float = 0.0
    #: Single-shard txns skip WAL + settle via one auto-commit prepare.
    fastpath: bool = True
    #: OCC: run the coordinator-side fenced validation read (one fence
    #: per read subgroup + local compare) on *first* attempts too.
    #: Retries always fence — a cheap early abort before burning
    #: another prepare round on a read set that is already stale.
    occ_eager_validate: bool = False


@dataclass(frozen=True)
class TxnOp:
    """One operation of a transaction program: ("get"|"put"|"delete",
    key, value)."""

    op: str
    key: bytes
    value: bytes = b""


@dataclass
class TxnOutcome:
    """Terminal verdict of one :meth:`TxnPlane.run_txn` call."""

    #: "committed" | "aborted"
    status: str
    #: Abort cause: "validation" | "wounded" | "wound-wait" |
    #: "prepare_no" | "rejected" | "attempts" | "" (committed).
    reason: str = ""
    txn_id: int = -1
    attempts: int = 1
    #: Values observed by the committed attempt's "get" ops, in program
    #: order (None = absent).
    reads: List[Optional[bytes]] = field(default_factory=list)
    participants: Tuple[int, ...] = ()
    #: True when the single-shard auto-commit path served the txn.
    fastpath: bool = False


@dataclass
class TxnCounters:
    committed: int = 0
    aborted: int = 0
    attempts: int = 0
    fastpath_commits: int = 0
    prepares_sent: int = 0
    settles_sent: int = 0
    validation_aborts: int = 0
    wound_aborts: int = 0
    prepare_aborts: int = 0
    admission_aborts: int = 0
    wal_records: int = 0
    recovered_settles: int = 0

    def to_dict(self) -> dict:
        return {
            "committed": self.committed,
            "aborted": self.aborted,
            "attempts": self.attempts,
            "fastpath_commits": self.fastpath_commits,
            "prepares_sent": self.prepares_sent,
            "settles_sent": self.settles_sent,
            "validation_aborts": self.validation_aborts,
            "wound_aborts": self.wound_aborts,
            "prepare_aborts": self.prepare_aborts,
            "admission_aborts": self.admission_aborts,
            "wal_records": self.wal_records,
            "recovered_settles": self.recovered_settles,
        }


class _Txn:
    """Coordinator-side state of one transaction attempt."""

    __slots__ = ("txn_id", "coordinator", "attempt", "handle", "reads",
                 "writes", "locked_shards", "lock_seconds", "results")

    def __init__(self, txn_id: int, coordinator: int, attempt: int = 1,
                 age: Optional[int] = None):
        self.txn_id = txn_id
        self.coordinator = coordinator
        self.attempt = attempt
        # Wound-wait priority survives retries (fresh txn_id, old age).
        self.handle = TxnHandle(txn_id, age)
        #: key -> value observed from committed state (OCC read set).
        self.reads: Dict[bytes, Optional[bytes]] = {}
        #: Buffered writes in program order: (W_PUT|W_DELETE, k, v).
        self.writes: List[Tuple[int, bytes, bytes]] = []
        self.locked_shards: Set[int] = set()
        self.lock_seconds = 0.0
        #: "get" results in program order.
        self.results: List[Optional[bytes]] = []


class TxnPlane:
    """The transaction coordinator over one cluster's shard router."""

    def __init__(self, router, config: Optional[TxnConfig] = None):
        self.router = router
        self.cluster = router.cluster
        self.service = router.service
        self.sim = router.sim
        self.config = config if config is not None else TxnConfig()
        self.cc: ConcurrencyControl = resolve_cc(self.config.cc)
        self.counters = TxnCounters()
        self._txn_counter = 0
        self._lock_tables: Dict[int, LockTable] = {}
        self._colocated: Dict[int, bool] = {}
        #: Driver processes per coordinator node, killed when that node
        #: crashes (their txns recover via the WAL).
        self._drivers: Dict[int, List[object]] = {}
        #: Live txn handles per coordinator node: a crash releases
        #: their plane-side locks (the coordinator that would have is
        #: dead; prepared-state cleanup is the WAL's job).
        self._live: Dict[int, List[_Txn]] = {}
        self.cluster.faults.on_crash.append(self._on_node_crash)
        self._stage_timers: Dict[str, object] = {}
        self._register_metrics()

    # ----------------------------------------------------------- plumbing

    def lock_table(self, shard: int) -> LockTable:
        table = self._lock_tables.get(shard)
        if table is None:
            table = LockTable(self.sim, shard, self.config.lock_poll)
            self._lock_tables[shard] = table
        return table

    def lock_delay(self, shard: int) -> float:
        """The ALock asymmetry: local fast path for coordinators
        co-located with the shard's hosting subgroup."""
        return (self.config.local_lock_delay
                if self._colocated.get(shard, False)
                else self.config.remote_lock_delay)

    def _default_coordinator(self) -> int:
        return self.cluster.node_ids[0]

    def _wal(self, coordinator: int):
        return self.cluster.storage.device(coordinator,
                                           self.config.wal_device)

    def _wal_append(self, coordinator: int, record: bytes,
                    fsync: bool) -> Generator:
        device = self._wal(coordinator)
        device.write(record)
        self.counters.wal_records += 1
        if fsync and self.config.wal_fsync:
            yield from device.fsync()

    def _stage_add(self, stage: str, dt: float) -> None:
        timer = self._stage_timers.get(stage)
        if timer is not None:
            timer.add(dt)

    # -------------------------------------------------------------- client

    def run_txn(self, ops: List[TxnOp],
                coordinator_node: Optional[int] = None) -> Generator:
        """Client generator: run one transaction program to a terminal
        :class:`TxnOutcome`, retrying aborted attempts (fresh txn id,
        fixed backoff) up to ``max_attempts``."""
        coordinator = (coordinator_node if coordinator_node is not None
                       else self._default_coordinator())
        cfg = self.config
        last = None
        age = None  # first attempt's txn id = wound-wait age for retries
        for attempt in range(1, cfg.max_attempts + 1):
            self.counters.attempts += 1
            out = yield from self._attempt(ops, coordinator, attempt, age)
            out.attempts = attempt
            if age is None:
                age = out.txn_id
            if out.status == "committed":
                self.counters.committed += 1
                return out
            last = out
            if attempt < cfg.max_attempts:
                yield cfg.retry_backoff
        self.counters.aborted += 1
        last.reason = last.reason or "attempts"
        return last

    def spawn_txn(self, ops: List[TxnOp],
                  coordinator_node: Optional[int] = None,
                  name: str = "txn", outcomes: Optional[list] = None):
        """Fire-and-track: run the txn in its own simulated process,
        registered to die with its coordinator node (chaos)."""
        coordinator = (coordinator_node if coordinator_node is not None
                       else self._default_coordinator())
        sink = outcomes if outcomes is not None else []

        def driver():
            out = yield from self.run_txn(ops, coordinator_node=coordinator)
            sink.append(out)

        proc = self.sim.spawn(driver(), name=name)
        self.adopt(coordinator, proc)
        return proc, sink

    def adopt(self, coordinator: int, proc) -> None:
        """Register a driver process to be killed when ``coordinator``
        crashes (chaos scenarios spawn their own client loops)."""
        self._drivers.setdefault(coordinator, []).append(proc)

    # ------------------------------------------------------------ attempts

    def _begin(self, coordinator: int, attempt: int = 1,
               age: Optional[int] = None) -> _Txn:
        self._txn_counter += 1
        txn = _Txn(self._txn_counter, coordinator, attempt, age)
        self._live.setdefault(coordinator, []).append(txn)
        return txn

    def _end(self, txn: _Txn) -> None:
        self.cc.finish(self, txn)
        live = self._live.get(txn.coordinator)
        if live is not None and txn in live:
            live.remove(txn)

    def _attempt(self, ops: List[TxnOp], coordinator: int,
                 attempt: int = 1, age: Optional[int] = None) -> Generator:
        cfg = self.config
        self._snapshot_colocation(coordinator)
        txn = self._begin(coordinator, attempt, age)
        try:
            # ---- execute: reads + buffered writes under the CC ------
            t0 = self.sim.now
            try:
                for op in ops:
                    if op.op == "get":
                        value = yield from self.cc.read(self, txn, op.key)
                        txn.results.append(value)
                    elif op.op == "put":
                        yield from self.cc.write(self, txn, op.key, op.value)
                    elif op.op == "delete":
                        yield from self.cc.delete(self, txn, op.key)
                    else:
                        raise ValueError(f"unknown txn op {op.op!r}")
            except TxnAborted as exc:
                self.counters.wound_aborts += 1
                return TxnOutcome("aborted", exc.reason, txn.txn_id)
            self._stage_add(TXN_STAGE_EXECUTE, self.sim.now - t0)

            # ---- validate-or-lock clearance -------------------------
            t0 = self.sim.now
            try:
                ok = yield from self.cc.validate(self, txn)
            except TxnAborted as exc:
                self.counters.wound_aborts += 1
                return TxnOutcome("aborted", exc.reason, txn.txn_id)
            # 2PL accrues its lock time during execute; fold it in so
            # the stage means "conflict clearance" under either CC.
            self._stage_add(TXN_STAGE_VALIDATE_OR_LOCK,
                            (self.sim.now - t0) + txn.lock_seconds)
            if not ok:
                self.counters.validation_aborts += 1
                return TxnOutcome("aborted", "validation", txn.txn_id)

            participants, read_only = self._shard_split(txn)
            if not participants:
                if not read_only:  # nothing shard-resident to certify
                    return TxnOutcome("committed", "", txn.txn_id,
                                      reads=list(txn.results), fastpath=True)
                # OCC pure read: settle-free validate-only slices carry
                # the read set through each shard's order — no prepared
                # state, so no WAL and no settle round either.
                t0 = self.sim.now
                ok, reason = yield from self._validate_round(txn, read_only)
                self._stage_add(TXN_STAGE_VALIDATE_OR_LOCK,
                                self.sim.now - t0)
                if not ok:
                    return TxnOutcome("aborted", reason, txn.txn_id,
                                      participants=read_only)
                return TxnOutcome("committed", "", txn.txn_id,
                                  reads=list(txn.results),
                                  participants=read_only)

            # ---- single-shard fast path -----------------------------
            if cfg.fastpath and len(participants) == 1 and not read_only:
                out = yield from self._fastpath(txn, participants[0])
                return out

            # ---- two-phase ordering with a presumed-abort WAL -------
            yield from self._wal_append(
                coordinator,
                encode_wal(WAL_BEGIN, txn.txn_id, participants=participants),
                fsync=True)
            t0 = self.sim.now
            votes_ok = True
            reason = ""
            for shard in participants:
                rec = self._prepare_record(txn, shard, auto_commit=False)
                outcome = yield from self.router.request(
                    "txn_prepare", b"", value=encode_prepare(rec),
                    shard=shard)
                self.counters.prepares_sent += 1
                if outcome.status != "ok":
                    votes_ok, reason = False, "rejected"
                    self.counters.admission_aborts += 1
                    break
                if outcome.value != "yes":
                    votes_ok, reason = False, "prepare_no"
                    self.counters.prepare_aborts += 1
                    break
            self._stage_add(TXN_STAGE_PREPARE, self.sim.now - t0)

            # ---- lock-then-validate: read-only shards certify only
            # after every write shard holds its prepared locks, so a
            # concurrent reader can never observe this txn half-applied.
            if votes_ok and read_only:
                t0 = self.sim.now
                votes_ok, reason = yield from self._validate_round(
                    txn, read_only)
                self._stage_add(TXN_STAGE_VALIDATE_OR_LOCK,
                                self.sim.now - t0)

            commit = votes_ok
            yield from self._wal_append(
                coordinator,
                encode_wal(WAL_DECISION, txn.txn_id, commit=commit),
                fsync=True)
            if cfg.settle_delay > 0.0:
                yield cfg.settle_delay
            t0 = self.sim.now
            yield from self._settle_round(txn.txn_id, participants, commit)
            self._stage_add(TXN_STAGE_SETTLE, self.sim.now - t0)
            # Lazy END: losing it only costs an idempotent re-drive.
            self._wal(coordinator).write(encode_wal(WAL_END, txn.txn_id))
            self.counters.wal_records += 1

            if commit:
                return TxnOutcome("committed", "", txn.txn_id,
                                  reads=list(txn.results),
                                  participants=participants)
            return TxnOutcome("aborted", reason, txn.txn_id,
                              participants=participants)
        finally:
            self._end(txn)

    def _fastpath(self, txn: _Txn, shard: int) -> Generator:
        """One auto-commit prepare through the only participant's
        order: the shard's own total order is the atomicity domain, so
        no WAL and no settle round are needed."""
        t0 = self.sim.now
        rec = self._prepare_record(txn, shard, auto_commit=True)
        outcome = yield from self.router.request(
            "txn_prepare", b"", value=encode_prepare(rec), shard=shard)
        self.counters.prepares_sent += 1
        self._stage_add(TXN_STAGE_PREPARE, self.sim.now - t0)
        if outcome.status != "ok":
            self.counters.admission_aborts += 1
            return TxnOutcome("aborted", "rejected", txn.txn_id,
                              participants=(shard,), fastpath=True)
        if outcome.value != "yes":
            self.counters.validation_aborts += 1
            return TxnOutcome("aborted", "validation", txn.txn_id,
                              participants=(shard,), fastpath=True)
        self.counters.fastpath_commits += 1
        return TxnOutcome("committed", "", txn.txn_id,
                          reads=list(txn.results),
                          participants=(shard,), fastpath=True)

    def _settle_round(self, txn_id: int, participants: Tuple[int, ...],
                      commit: bool, recovered: bool = False) -> Generator:
        """Carry the verdict through every participant's order. Settle
        messages ride the router's reserved lane (never rejected by
        admission control, executed even through a rebalance freeze) so
        a prepared txn can always be settled."""
        for shard in participants:
            settle = SettleRecord(txn_id=txn_id, shard=shard, commit=commit)
            yield from self.router.request(
                "txn_settle", b"", value=encode_settle(settle), shard=shard)
            self.counters.settles_sent += 1
            if recovered:
                self.counters.recovered_settles += 1

    # ------------------------------------------------------------- helpers

    def _shard_split(self, txn: _Txn) -> Tuple[Tuple[int, ...],
                                               Tuple[int, ...]]:
        """(participants, read_only): write shards run the full
        prepare/settle protocol (their slice also re-validates any
        co-resident reads at delivery). Under OCC, shards that were
        *only read* get a settle-free validate-only slice sequenced
        after the write prepares. Under 2PL the locks already pin read
        stability — read-only shards need nothing."""
        write_shards: Set[int] = set()
        for _, key, _ in txn.writes:
            write_shards.add(self.router.map.shard_of(key))
        read_only: Set[int] = set()
        if self.cc.name == "occ":
            for key in txn.reads:
                shard = self.router.map.shard_of(key)
                if shard not in write_shards:
                    read_only.add(shard)
        return tuple(sorted(write_shards)), tuple(sorted(read_only))

    def _validate_round(self, txn: _Txn,
                        shards: Tuple[int, ...]) -> Generator:
        """OCC in-order read certification: an auto-commit prepare
        slice (reads only, no writes) through each read-only shard's
        order. The replica votes at delivery — value mismatch or a
        conflicting prepared lock aborts — and leaves no prepared
        state behind, so these slices need no settle and no WAL entry.

        Being stateless, the slices batch for free: read-only shards
        hosted by the same subgroup share one total order, so they
        share one slice (addressed to the lowest shard id — a replica
        hosts its whole subgroup, so it can certify every co-hosted
        shard's reads in the one delivery)."""
        shard_map = self.router.map
        by_sg: Dict[int, List[int]] = {}
        for shard in shards:
            by_sg.setdefault(shard_map.subgroup_of(shard), []).append(shard)
        for sg in sorted(by_sg):
            batch = set(by_sg[sg])
            rep = min(batch)
            reads = tuple(sorted(
                (k, v) for k, v in txn.reads.items()
                if shard_map.shard_of(k) in batch))
            rec = PrepareRecord(txn_id=txn.txn_id, shard=rep,
                                cc=self.cc.name, auto_commit=True,
                                reads=reads, writes=())
            outcome = yield from self.router.request(
                "txn_prepare", b"", value=encode_prepare(rec), shard=rep)
            self.counters.prepares_sent += 1
            if outcome.status != "ok":
                self.counters.admission_aborts += 1
                return False, "rejected"
            if outcome.value != "yes":
                self.counters.validation_aborts += 1
                return False, "validation"
        return True, ""

    def _prepare_record(self, txn: _Txn, shard: int,
                        auto_commit: bool) -> PrepareRecord:
        """This shard's slice of the txn. OCC ships the read set for
        authoritative in-order validation; 2PL ships none (the lock
        table already serialized conflicting access)."""
        reads: Tuple[Tuple[bytes, Optional[bytes]], ...] = ()
        if self.cc.name == "occ":
            reads = tuple(sorted(
                (k, v) for k, v in txn.reads.items()
                if self.router.map.shard_of(k) == shard))
        writes = tuple((wop, k, v) for wop, k, v in txn.writes
                       if self.router.map.shard_of(k) == shard)
        return PrepareRecord(txn_id=txn.txn_id, shard=shard,
                             cc=self.cc.name, auto_commit=auto_commit,
                             reads=reads, writes=writes)

    def _snapshot_colocation(self, coordinator: int) -> None:
        """Cache, per shard, whether ``coordinator`` is a member of the
        hosting subgroup (the ALock local/remote split)."""
        view = self.cluster.view
        members: Dict[int, Tuple[int, ...]] = {
            spec.subgroup_id: tuple(spec.members)
            for spec in view.subgroups}
        self._colocated = {
            shard: coordinator in members.get(
                self.router.map.subgroup_of(shard), ())
            for shard in range(self.router.map.num_shards)}

    # --------------------------------------------------------------- chaos

    def _on_node_crash(self, node: int) -> None:
        """The coordinator host died: kill its driver processes
        mid-txn and release their plane-side locks. Prepared shard
        state stays pinned until :func:`~repro.txn.recover.recover_txns`
        re-drives the WAL's verdicts."""
        for proc in self._drivers.pop(node, []):
            proc.kill()
        for txn in self._live.pop(node, []):
            for shard in txn.locked_shards:
                self.lock_table(shard).release_all(txn.handle)

    # ------------------------------------------------------------- metrics

    def _register_metrics(self) -> None:
        registry = self.cluster.metrics
        if not registry.enabled:
            return
        for stage in TXN_STAGES:
            self._stage_timers[stage] = registry.timer(
                TXN_STAGE_TIME, "txn coordinator time by stage",
                stage=stage)

        def mirror() -> None:
            c = self.counters
            registry.counter("spindle_txn_committed_total",
                             "transactions committed").set_to(c.committed)
            registry.counter("spindle_txn_aborted_total",
                             "transactions aborted").set_to(c.aborted)
            registry.counter("spindle_txn_attempts_total",
                             "transaction attempts").set_to(c.attempts)
            registry.counter("spindle_txn_fastpath_total",
                             "single-shard fast-path commits"
                             ).set_to(c.fastpath_commits)
            registry.counter("spindle_txn_prepares_total",
                             "prepare records sequenced"
                             ).set_to(c.prepares_sent)
            registry.counter("spindle_txn_settles_total",
                             "settle records sequenced"
                             ).set_to(c.settles_sent)
            held = sum(t.held() for t in self._lock_tables.values())
            registry.gauge("spindle_txn_locks_held",
                           "key locks currently held").set(held)

        registry.add_collector(mirror)

    def stage_seconds(self) -> Dict[str, float]:
        """Coordinator time per stage (zeros when metrics are off)."""
        return {stage: getattr(self._stage_timers.get(stage), "total", 0.0)
                for stage in TXN_STAGES}

    def lock_counters(self) -> Dict[str, int]:
        total = {"acquired": 0, "wounds": 0, "wait_aborts": 0, "waits": 0}
        for table in self._lock_tables.values():
            for key, value in table.counters().items():
                total[key] += value
        return total

"""Wire + WAL codecs for the cross-shard transaction plane.

Two record families share this module:

* **Ordered txn records** — :class:`PrepareRecord` / :class:`SettleRecord`
  — travel *inside* the rid envelope of the sharded service
  (:func:`repro.shard.service.frame_request`, always rid 0: txn dedup is
  by txn id, not rid) and are sequenced through the participant shard's
  own total order, so every replica of the hosting subgroup decides the
  prepare vote at the same position in the same order. The first byte
  (``OP_TXN_PREPARE`` / ``OP_TXN_SETTLE``) is chosen outside the
  ``KvCommand`` opcode range so :meth:`ShardReplica.apply` can dispatch
  by peeking it.

* **Coordinator WAL records** — :func:`encode_wal` / :func:`decode_wal`
  — the presumed-abort write-ahead log on the coordinator node's
  storage device (``BEGIN`` → ``DECISION`` → ``END``), scanned by
  :func:`repro.txn.recover.recover_txns` after a coordinator crash
  (docs/TRANSACTIONS.md).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "OP_TXN_PREPARE", "OP_TXN_SETTLE", "W_PUT", "W_DELETE",
    "WAL_BEGIN", "WAL_DECISION", "WAL_END",
    "PrepareRecord", "SettleRecord", "WalRecord",
    "encode_prepare", "encode_settle", "decode_txn_record",
    "is_txn_payload", "encode_wal", "decode_wal", "scan_wal",
]

#: Ordered-record opcodes; deliberately disjoint from the KvCommand
#: opcode range (OP_PUT..OP_FENCE = 1..4) so a replica can dispatch on
#: the first payload byte.
OP_TXN_PREPARE = 0x71
OP_TXN_SETTLE = 0x72

#: Buffered-write opcodes inside a prepare record.
W_PUT = 1
W_DELETE = 2

#: Coordinator WAL record kinds (presumed abort: a BEGIN with no
#: DECISION recovers as abort).
WAL_BEGIN = 1
WAL_DECISION = 2
WAL_END = 3

_PREP_HDR = struct.Struct("<BQBBIHH")   # op, txn_id, cc, auto, shard, nr, nw
_READ_HDR = struct.Struct("<Hi")        # klen, vlen (-1 = absent)
_WRITE_HDR = struct.Struct("<BHI")      # wop, klen, vlen
_SETTLE = struct.Struct("<BQBI")        # op, txn_id, commit, shard
_WAL_HDR = struct.Struct("<BQBH")       # kind, txn_id, commit, n_participants
_WAL_PART = struct.Struct("<I")


@dataclass(frozen=True)
class PrepareRecord:
    """One shard's slice of a transaction, sequenced into that shard's
    total order. ``reads`` carry the values the coordinator observed
    (``None`` = key absent) for authoritative validation at delivery;
    ``writes`` are buffered until the settle round — unless
    ``auto_commit`` (single-shard fast path) applies them immediately
    on a yes vote."""

    txn_id: int
    shard: int
    cc: str                                        # "occ" | "2pl"
    auto_commit: bool
    reads: Tuple[Tuple[bytes, Optional[bytes]], ...]
    writes: Tuple[Tuple[int, bytes, bytes], ...]   # (W_PUT|W_DELETE, k, v)

    def keys(self) -> List[bytes]:
        return [k for k, _ in self.reads] + [k for _, k, _ in self.writes]

    def write_keys(self) -> List[bytes]:
        return [k for _, k, _ in self.writes]


@dataclass(frozen=True)
class SettleRecord:
    """The commit/abort verdict for one prepared shard slice."""

    txn_id: int
    shard: int
    commit: bool


@dataclass
class WalRecord:
    """One decoded coordinator WAL record."""

    kind: int
    txn_id: int
    commit: bool = False
    participants: Tuple[int, ...] = field(default=())


def encode_prepare(rec: PrepareRecord) -> bytes:
    out = [_PREP_HDR.pack(OP_TXN_PREPARE, rec.txn_id,
                          1 if rec.cc == "2pl" else 0,
                          1 if rec.auto_commit else 0,
                          rec.shard, len(rec.reads), len(rec.writes))]
    for key, value in rec.reads:
        out.append(_READ_HDR.pack(len(key),
                                  -1 if value is None else len(value)))
        out.append(key)
        if value is not None:
            out.append(value)
    for wop, key, value in rec.writes:
        out.append(_WRITE_HDR.pack(wop, len(key), len(value)))
        out.append(key)
        out.append(value)
    return b"".join(out)


def encode_settle(rec: SettleRecord) -> bytes:
    return _SETTLE.pack(OP_TXN_SETTLE, rec.txn_id,
                        1 if rec.commit else 0, rec.shard)


def is_txn_payload(inner: bytes) -> bool:
    """True when an unframed command payload is a txn record."""
    return bool(inner) and inner[0] in (OP_TXN_PREPARE, OP_TXN_SETTLE)


def decode_txn_record(inner: bytes):
    """Decode an unframed txn payload into a Prepare/SettleRecord."""
    op = inner[0]
    if op == OP_TXN_SETTLE:
        _, txn_id, commit, shard = _SETTLE.unpack_from(inner, 0)
        return SettleRecord(txn_id=txn_id, shard=shard, commit=bool(commit))
    if op != OP_TXN_PREPARE:
        raise ValueError(f"not a txn record (op={op:#x})")
    (_, txn_id, cc, auto, shard,
     n_reads, n_writes) = _PREP_HDR.unpack_from(inner, 0)
    off = _PREP_HDR.size
    reads: List[Tuple[bytes, Optional[bytes]]] = []
    for _ in range(n_reads):
        klen, vlen = _READ_HDR.unpack_from(inner, off)
        off += _READ_HDR.size
        key = bytes(inner[off:off + klen])
        off += klen
        if vlen < 0:
            reads.append((key, None))
        else:
            reads.append((key, bytes(inner[off:off + vlen])))
            off += vlen
    writes: List[Tuple[int, bytes, bytes]] = []
    for _ in range(n_writes):
        wop, klen, vlen = _WRITE_HDR.unpack_from(inner, off)
        off += _WRITE_HDR.size
        key = bytes(inner[off:off + klen])
        off += klen
        value = bytes(inner[off:off + vlen])
        off += vlen
        writes.append((wop, key, value))
    return PrepareRecord(txn_id=txn_id, shard=shard,
                         cc="2pl" if cc else "occ",
                         auto_commit=bool(auto),
                         reads=tuple(reads), writes=tuple(writes))


def encode_wal(kind: int, txn_id: int, commit: bool = False,
               participants: Tuple[int, ...] = ()) -> bytes:
    out = [_WAL_HDR.pack(kind, txn_id, 1 if commit else 0,
                         len(participants))]
    for shard in participants:
        out.append(_WAL_PART.pack(shard))
    return b"".join(out)


def decode_wal(data: bytes) -> WalRecord:
    kind, txn_id, commit, n_parts = _WAL_HDR.unpack_from(data, 0)
    off = _WAL_HDR.size
    parts = []
    for _ in range(n_parts):
        (shard,) = _WAL_PART.unpack_from(data, off)
        off += _WAL_PART.size
        parts.append(shard)
    return WalRecord(kind=kind, txn_id=txn_id, commit=bool(commit),
                     participants=tuple(parts))


def scan_wal(records: List[bytes]) -> Dict[int, WalRecord]:
    """Fold a WAL record stream into per-txn recovery state: the
    returned :class:`WalRecord`'s ``kind`` is the *latest* stage seen
    for that txn (BEGIN < DECISION < END), with ``participants`` from
    BEGIN and ``commit`` from DECISION."""
    state: Dict[int, WalRecord] = {}
    for raw in records:
        rec = decode_wal(raw)
        cur = state.get(rec.txn_id)
        if cur is None:
            state[rec.txn_id] = rec
            continue
        cur.kind = max(cur.kind, rec.kind)
        if rec.kind == WAL_BEGIN and rec.participants:
            cur.participants = rec.participants
        if rec.kind == WAL_DECISION:
            cur.commit = rec.commit
    return state

"""Pluggable concurrency control for the transaction plane.

One interface, two protocols (docs/TRANSACTIONS.md):

* :class:`OccControl` — optimistic: execute against stale gateway
  reads, no locks, no waiting — conflicting txns abort and retry. The
  authoritative validation rides the shard orders: write-shard prepare
  slices re-check their reads at delivery, and read-only shards get a
  settle-free validate-only slice *after* every write shard holds its
  prepared locks (lock-then-validate, FaRM-style — a reader that could
  observe a half-committed txn trips the writer's prepared lock and
  aborts). The coordinator-side **fenced validation read** (one
  ``fence_req`` per read subgroup + local compare, the
  ``sync_read_req`` path) is an early-abort filter: retries always run
  it before burning prepare rounds on a stale read set; first attempts
  only when ``TxnConfig.occ_eager_validate`` is set.

* :class:`TwoPhaseLocking` — pessimistic: S/X key locks from the
  plane's per-shard :class:`~repro.txn.locks.LockTable` before every
  access (growing phase), released after the settle round (shrinking
  phase = strict 2PL). Deadlock avoidance is wound-wait; the acquire
  charges the ALock-style local/remote delay picked by the plane.

Both buffer writes coordinator-side (read-your-writes served from the
buffer) and ship them in the prepare record, so the replica-side
protocol is identical — the CC choice only changes how conflicts are
*detected* (validation vs locks).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from .locks import TxnAborted
from .records import W_DELETE, W_PUT

__all__ = ["ConcurrencyControl", "OccControl", "TwoPhaseLocking",
           "resolve_cc", "CC_PROTOCOLS"]


class ConcurrencyControl:
    """Strategy interface: how one txn attempt reads, writes, and
    clears itself for the prepare round. All generator methods run in
    the coordinator's simulated process."""

    name = "abstract"

    def read(self, plane, txn, key: bytes) -> Generator:
        raise NotImplementedError

    def write(self, plane, txn, key: bytes, value: bytes) -> Generator:
        raise NotImplementedError

    def delete(self, plane, txn, key: bytes) -> Generator:
        raise NotImplementedError

    def validate(self, plane, txn) -> Generator:
        """Pre-prepare check; return False to abort before any prepare
        is sequenced (OCC validation / 2PL wound check)."""
        raise NotImplementedError

    def finish(self, plane, txn) -> None:
        """Release whatever the txn holds (called on every exit path)."""
        raise NotImplementedError

    # ------------------------------------------------------ shared helpers

    @staticmethod
    def _buffered(txn, key: bytes) -> Tuple[bool, Optional[bytes]]:
        """Read-your-writes: the latest buffered write for ``key``."""
        for wop, wkey, value in reversed(txn.writes):
            if wkey == key:
                return True, (value if wop == W_PUT else None)
        return False, None

    @staticmethod
    def _stale_read(plane, key: bytes) -> Optional[bytes]:
        sg = plane.router.map.subgroup_of_key(key)
        return plane.service.gateway_replica(sg).read(key)


class OccControl(ConcurrencyControl):
    """Optimistic concurrency control with fenced validation reads."""

    name = "occ"

    def read(self, plane, txn, key: bytes) -> Generator:
        hit, value = self._buffered(txn, key)
        if hit:
            return value
        value = self._stale_read(plane, key)
        if key not in txn.reads:      # first read wins: repeatable reads
            txn.reads[key] = value
        else:
            value = txn.reads[key]
        return value
        yield  # pragma: no cover - generator marker (zero-cost read)

    def write(self, plane, txn, key: bytes, value: bytes) -> Generator:
        txn.writes.append((W_PUT, key, value))
        return
        yield  # pragma: no cover - generator marker

    def delete(self, plane, txn, key: bytes) -> Generator:
        txn.writes.append((W_DELETE, key, b""))
        return
        yield  # pragma: no cover - generator marker

    def validate(self, plane, txn) -> Generator:
        """Fenced validation reads — one fence per read subgroup, then
        local re-reads: any observed value that changed since execute
        aborts the attempt before a single prepare is sequenced. Run on
        retries (the read set already proved contended) and, when
        ``occ_eager_validate`` is set, on first attempts too; otherwise
        first attempts stay optimistic and rely on the in-order
        validation carried by the prepare slices."""
        if not (plane.config.occ_eager_validate or txn.attempt > 1):
            return True
        by_sg: Dict[int, List[bytes]] = {}
        for key in txn.reads:
            by_sg.setdefault(plane.router.map.subgroup_of_key(key),
                             []).append(key)
        for sg in sorted(by_sg):
            replica = plane.service.gateway_replica(sg)
            yield from replica.fence_req()
            for key in by_sg[sg]:
                if replica.read(key) != txn.reads[key]:
                    return False
        return True

    def finish(self, plane, txn) -> None:
        pass


class TwoPhaseLocking(ConcurrencyControl):
    """Strict two-phase locking on the plane's per-shard lock tables."""

    name = "2pl"

    def _lock(self, plane, txn, key: bytes, exclusive: bool) -> Generator:
        shard = plane.router.map.shard_of(key)
        table = plane.lock_table(shard)
        t0 = plane.sim.now
        try:
            yield from table.acquire(txn.handle, key, exclusive,
                                     plane.lock_delay(shard))
        finally:
            txn.lock_seconds += plane.sim.now - t0
        txn.locked_shards.add(shard)

    def read(self, plane, txn, key: bytes) -> Generator:
        hit, value = self._buffered(txn, key)
        if hit:
            return value
        yield from self._lock(plane, txn, key, exclusive=False)
        value = self._stale_read(plane, key)
        txn.reads.setdefault(key, value)
        return value

    def write(self, plane, txn, key: bytes, value: bytes) -> Generator:
        yield from self._lock(plane, txn, key, exclusive=True)
        txn.writes.append((W_PUT, key, value))

    def delete(self, plane, txn, key: bytes) -> Generator:
        yield from self._lock(plane, txn, key, exclusive=True)
        txn.writes.append((W_DELETE, key, b""))

    def validate(self, plane, txn) -> Generator:
        """Locks already guarantee isolation; only the wound flag can
        still abort the attempt here."""
        if txn.handle.wounded:
            raise TxnAborted(txn.txn_id, "wounded")
        return True
        yield  # pragma: no cover - generator marker

    def finish(self, plane, txn) -> None:
        for shard in txn.locked_shards:
            plane.lock_table(shard).release_all(txn.handle)
        txn.locked_shards.clear()


CC_PROTOCOLS = {
    OccControl.name: OccControl,
    TwoPhaseLocking.name: TwoPhaseLocking,
}


def resolve_cc(name: str) -> ConcurrencyControl:
    try:
        return CC_PROTOCOLS[name]()
    except KeyError:
        raise ValueError(
            f"unknown concurrency control {name!r}; "
            f"one of {sorted(CC_PROTOCOLS)}") from None

"""Cross-shard transactions over per-subgroup total orders.

The transaction plane (docs/TRANSACTIONS.md) composes multi-key
atomicity out of the sharded service's independent per-shard orders:

* :class:`~repro.txn.coordinator.TxnPlane` — two-phase ordering
  coordinator (prepare records sequenced through each participant
  shard's multicast, then a settle round), presumed-abort WAL on the
  coordinator node's storage device, single-shard fast path;
* :mod:`~repro.txn.cc` — the pluggable :class:`ConcurrencyControl`
  strategies: OCC with fenced validation reads, strict 2PL with
  wound-wait and the ALock local/remote asymmetric fast path;
* :func:`~repro.txn.recover.recover_txns` — coordinator-crash recovery
  (re-exported from :mod:`repro.recovery`).

Exports resolve lazily (PEP 562): ``repro.shard.service`` imports the
record codecs from here while the coordinator imports ``repro.shard``
back — eager re-exports would cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

__all__ = [
    "TxnConfig", "TxnOp", "TxnOutcome", "TxnPlane",
    "ConcurrencyControl", "OccControl", "TwoPhaseLocking",
    "CC_PROTOCOLS", "resolve_cc",
    "LockTable", "TxnAborted", "TxnHandle",
    "PrepareRecord", "SettleRecord",
    "TxnRecoveryReport", "recover_txns",
]

_LOCATIONS = {
    "TxnConfig": "coordinator", "TxnOp": "coordinator",
    "TxnOutcome": "coordinator", "TxnPlane": "coordinator",
    "ConcurrencyControl": "cc", "OccControl": "cc",
    "TwoPhaseLocking": "cc", "CC_PROTOCOLS": "cc", "resolve_cc": "cc",
    "LockTable": "locks", "TxnAborted": "locks", "TxnHandle": "locks",
    "PrepareRecord": "records", "SettleRecord": "records",
    "TxnRecoveryReport": "recover", "recover_txns": "recover",
}

if TYPE_CHECKING:  # pragma: no cover - typing-only eager imports
    from .cc import (CC_PROTOCOLS, ConcurrencyControl,  # noqa: F401
                     OccControl, TwoPhaseLocking, resolve_cc)
    from .coordinator import (TxnConfig, TxnOp,  # noqa: F401
                              TxnOutcome, TxnPlane)
    from .locks import LockTable, TxnAborted, TxnHandle  # noqa: F401
    from .records import PrepareRecord, SettleRecord  # noqa: F401
    from .recover import TxnRecoveryReport, recover_txns  # noqa: F401


def __getattr__(name: str):
    module = _LOCATIONS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(f".{module}", __name__), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))

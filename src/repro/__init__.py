"""Spindle: optimized atomic multicast on (simulated) RDMA.

A full reproduction of *Spindle: Techniques for Optimizing Atomic
Multicast on RDMA* (Jha, Rosa & Birman, ICDCS 2022): the Derecho
substrate (SST, SMC, predicate thread, virtual-synchrony membership),
the Spindle optimizations (opportunistic batching, null-sends, efficient
thread synchronization, in-place vs. memcpy delivery), an OMG-DDS layer
with four QoS levels, and the experiment harness that regenerates every
figure in the paper's evaluation — all running on a deterministic
discrete-event RDMA fabric simulator.

Quickstart::

    from repro import Cluster, SpindleConfig

    cluster = Cluster(num_nodes=3, config=SpindleConfig.optimized())
    group = cluster.create_group(message_size=1024, window_size=100)
    ... see examples/quickstart.py

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

__version__ = "0.1.0"

__all__ = ["SpindleConfig", "TimingModel", "Cluster", "__version__"]


def __getattr__(name):
    # Lazy imports keep `import repro` light and avoid import cycles for
    # subpackage-only users (e.g. repro.sim in the kernel tests).
    if name in ("SpindleConfig", "TimingModel"):
        from .core import config

        return getattr(config, name)
    if name == "Cluster":
        from .workloads.cluster import Cluster

        return Cluster
    raise AttributeError(f"module 'repro' has no attribute {name!r}")

"""RDMC — large-message multicast (Derecho's second data plane).

Referenced by the Spindle paper's Figure 4: SMC is the small-message
path; beyond ~12 members or for large messages, relay-based RDMC
schedules win. See :mod:`repro.rdmc.schedule` for the algorithms.
"""

from .schedule import SCHEMES, Transfer, build_schedule, sends_by_holder
from .session import RdmcGroup, RdmcSession

__all__ = [
    "RdmcGroup",
    "RdmcSession",
    "Transfer",
    "build_schedule",
    "sends_by_holder",
    "SCHEMES",
]

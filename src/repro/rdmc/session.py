"""RDMC multicast sessions: executing a relay schedule over the fabric.

One :class:`RdmcGroup` represents a set of nodes that exchange large
messages; each :meth:`~RdmcGroup.multicast` creates a session that cuts
the message into blocks, registers a staging region at every member,
and relays blocks according to the chosen schedule. Relaying is
event-driven: a node performs its scheduled sends for a block the
moment the block lands in its staging region, and the NIC egress links
serialize competing transfers — the pipelining behaviour emerges from
the fabric model rather than from precomputed timings.

Modeling note: RDMC worker CPU costs (~1 µs per posted block) are not
charged — large-message multicast is bandwidth-dominated, which is the
regime the SMC-vs-RDMC crossover benchmark explores.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..rdma.fabric import RdmaFabric
from ..rdma.memory import CellRegion, Region, WriteSnapshot
from .schedule import SCHEMES, build_schedule, sends_by_holder

__all__ = ["RdmcGroup", "RdmcSession"]

_session_ids = itertools.count()


class RdmcSession:
    """One large-message multicast in flight."""

    def __init__(
        self,
        group: "RdmcGroup",
        sender: int,
        size: int,
        payload: Optional[bytes],
        on_delivered: Optional[Callable[[int], None]],
    ):
        if size <= 0:
            raise ValueError("message size must be positive")
        if payload is not None and len(payload) != size:
            raise ValueError("payload length must equal size")
        self.session_id = next(_session_ids)
        self.group = group
        self.sender = sender
        self.size = size
        self.on_delivered = on_delivered
        block = group.block_size
        self.num_blocks = (size + block - 1) // block
        self.block_sizes = [
            min(block, size - b * block) for b in range(self.num_blocks)
        ]
        self.block_payloads: List[Optional[bytes]] = [
            payload[b * block : b * block + self.block_sizes[b]]
            if payload is not None else None
            for b in range(self.num_blocks)
        ]
        # Member order: sender first (rank 0), then the rest in id order.
        self.ranks: List[int] = [sender] + [
            m for m in group.members if m != sender
        ]
        self._rank_of = {m: r for r, m in enumerate(self.ranks)}
        schedule = build_schedule(group.scheme, len(self.ranks),
                                  self.num_blocks)
        self._sends = sends_by_holder(schedule)
        self._held: List[Set[int]] = [set() for _ in self.ranks]
        self._delivered: Set[int] = set()
        self.start_time = group.fabric.sim.now
        self.completion_times: Dict[int, float] = {}
        # Staging regions: one cell per block, at every member.
        self.regions: Dict[int, CellRegion] = {}
        self._region_keys: Dict[int, int] = {}
        for member in self.ranks:
            region = CellRegion(
                self.block_sizes,
                name=f"rdmc-s{self.session_id}@{member}",
            )
            node = group.fabric.nodes[member]
            key = node.register(region)
            self.regions[member] = region
            self._region_keys[member] = key
        self._start()

    # ------------------------------------------------------------- execution

    def _start(self) -> None:
        # Load the message into the sender's staging region.
        sender_region = self.regions[self.sender]
        for b in range(self.num_blocks):
            # RDMC staging blocks are opaque payload cells, not SST
            # counters/flags — monotonicity does not apply to them.
            # spindle-lint: allow[sst-monotonic-write]
            sender_region.write_local(
                b, self.block_payloads[b]
                if self.block_payloads[b] is not None
                else self.block_sizes[b]
            )
        self._held[0] = set(range(self.num_blocks))
        self._mark_complete(0)
        if self.group.scheme == "binomial":
            self._relay_all(0)
        else:
            for b in range(self.num_blocks):
                self._relay(0, b)

    def _relay(self, rank: int, block: int) -> None:
        """Post this holder's scheduled sends for a block it now holds."""
        self._post(self._sends.get((rank, block), ()))

    def _relay_all(self, rank: int) -> None:
        """Store-and-forward relaying: post every owed send, whole
        message to the round-0 target first, then round 1, etc."""
        sends = []
        for block in range(self.num_blocks):
            sends.extend(self._sends.get((rank, block), ()))
        sends.sort(key=lambda s: (s.round, s.dst, s.block))
        self._post(sends)

    def _post(self, steps) -> None:
        for step in steps:
            src = self.ranks[step.src]
            dst = self.ranks[step.dst]
            qp = self.group.fabric.queue_pair(src, dst)
            qp.post_write(
                self.regions[src], step.block,
                self._region_keys[dst], step.block, 1,
            )

    def _on_block_arrival(self, member: int, block: int) -> None:
        rank = self._rank_of[member]
        held = self._held[rank]
        if block in held:
            return
        held.add(block)
        if self.group.scheme == "binomial":
            # Whole-message binomial tree: store-and-forward — a relay
            # only starts sending once it holds the complete message.
            if len(held) == self.num_blocks:
                self._mark_complete(rank)
                self._relay_all(rank)
            return
        # Block-granular (cut-through) relaying: RDMC's key idea.
        self._relay(rank, block)
        if len(held) == self.num_blocks:
            self._mark_complete(rank)

    def _mark_complete(self, rank: int) -> None:
        member = self.ranks[rank]
        if member in self._delivered:
            return
        self._delivered.add(member)
        self.completion_times[member] = self.group.fabric.sim.now
        if self.on_delivered is not None and member != self.sender:
            self.on_delivered(member)

    # -------------------------------------------------------------- queries

    @property
    def complete(self) -> bool:
        """True once every member holds the whole message."""
        return len(self._delivered) == len(self.ranks)

    def payload_at(self, member: int) -> Optional[bytes]:
        """Reassemble the message at a member (content mode only)."""
        region = self.regions[member]
        parts = [region.read(b) for b in range(self.num_blocks)]
        if any(not isinstance(p, (bytes, bytearray)) for p in parts):
            return None
        return b"".join(parts)

    def completion_time(self, member: int) -> float:
        """Seconds from session start to full receipt at ``member``."""
        return self.completion_times[member] - self.start_time

    def release(self) -> None:
        """Deregister the staging regions (call after delivery)."""
        for member, key in self._region_keys.items():
            node = self.group.fabric.nodes[member]
            if key in node.regions:
                node.deregister(key)


class RdmcGroup:
    """A large-message multicast group over the simulated fabric."""

    def __init__(
        self,
        fabric: RdmaFabric,
        members: Sequence[int],
        block_size: int = 1024 * 1024,
        scheme: str = "binomial_pipeline",
    ):
        if scheme not in SCHEMES:
            raise ValueError(f"unknown scheme {scheme!r}; pick one of {SCHEMES}")
        if len(set(members)) != len(members) or len(members) < 2:
            raise ValueError("need at least two distinct members")
        if block_size <= 0:
            raise ValueError("block size must be positive")
        self.fabric = fabric
        self.members = list(members)
        self.block_size = block_size
        self.scheme = scheme
        self._sessions: Dict[Tuple[int, int], RdmcSession] = {}
        for member in self.members:
            fabric.nodes[member].on_remote_write.append(
                self._make_hook(member)
            )

    def _make_hook(self, member: int):
        def hook(region: Region, snap: WriteSnapshot) -> None:
            session = self._sessions.get((member, region.key))
            if session is not None:
                for block in range(snap.offset, snap.offset + len(snap.data)):
                    session._on_block_arrival(member, block)

        return hook

    def multicast(
        self,
        sender: int,
        size: int,
        payload: Optional[bytes] = None,
        on_delivered: Optional[Callable[[int], None]] = None,
    ) -> RdmcSession:
        """Start a large-message multicast from ``sender``."""
        if sender not in self.members:
            raise ValueError(f"{sender} is not a group member")
        session = RdmcSession(self, sender, size, payload, on_delivered)
        for member in self.members:
            self._sessions[(member, session._region_keys[member])] = session
        return session

"""Transfer schedules for RDMC-style large-message multicast.

Derecho uses a second data plane, RDMC (Behrens et al., DSN'18), for
large messages: the message is cut into blocks and relayed through the
receivers according to a precomputed schedule, so the sender's egress
link stops being the bottleneck. The Spindle paper points at it in
Figure 4 ("for subgroups with more than 12 members... shifting to RDMC
might be advisable"); this subpackage supplies that substrate.

Three schedules are provided:

* ``sequential`` — the SMC strategy: the sender unicasts the whole
  message to each receiver in turn. Completion ≈ (n-1) · msg_time.
* ``binomial`` — whole-message binomial tree (recursive doubling),
  store-and-forward: a relay starts sending only once it holds the
  complete message. Completion ≈ ceil(log2 n) · msg_time.
* ``binomial_pipeline`` — block-granular (cut-through) doubling,
  RDMC's key idea: a relay forwards each block as soon as it arrives,
  so block ``b``'s tree overlaps block ``b-1``'s. Completion ≈
  (k + log2 n) · block_time for k blocks.

A schedule is a list of :class:`Transfer` steps; execution is dynamic —
a node performs its sends for a block as soon as it holds that block,
and link serialization provides the timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["Transfer", "build_schedule", "SCHEMES"]

SCHEMES = ("sequential", "binomial", "binomial_pipeline")


@dataclass(frozen=True)
class Transfer:
    """One scheduled block relay: rank ``src`` sends ``block`` to ``dst``.

    Ranks are positions in the session's member list with the sender at
    rank 0. ``round`` orders a node's sends for the same block.
    """

    src: int
    dst: int
    block: int
    round: int


def _sequential(n: int, blocks: int) -> List[Transfer]:
    """Sender unicasts every block to each receiver in turn."""
    steps = []
    for dst in range(1, n):
        for b in range(blocks):
            steps.append(Transfer(0, dst, b, round=dst - 1))
    return steps


def _binomial(n: int, blocks: int) -> List[Transfer]:
    """Recursive doubling on whole messages: in round r, every rank
    i < 2^r forwards all blocks to rank i + 2^r (if it exists)."""
    steps = []
    r = 0
    while (1 << r) < n:
        for i in range(min(1 << r, n)):
            dst = i + (1 << r)
            if dst < n:
                for b in range(blocks):
                    steps.append(Transfer(i, dst, b, round=r))
        r += 1
    return steps


def _binomial_pipeline(n: int, blocks: int) -> List[Transfer]:
    """Block-granular doubling over per-block *rotated* relay trees.

    The sender (rank 0) injects each block exactly once, into a
    different receiver each time (rotation), and the receivers relay it
    among themselves along a binomial tree rooted at that receiver. Two
    properties follow, both essential to RDMC's performance:

    * the sender's egress carries the message once (k blocks), not
      log2(n) copies of it as in the whole-message tree;
    * relay load is spread evenly — across blocks every receiver
      forwards roughly the same number of blocks.

    Completion approaches (k + log2 n) block-transmission times.
    """
    steps = []
    receivers = n - 1
    for b in range(blocks):
        rotation = b % receivers
        # Virtual receiver order for this block's tree.
        order = [1 + ((j + rotation) % receivers) for j in range(receivers)]
        steps.append(Transfer(0, order[0], b, round=b))
        r = 0
        while (1 << r) < receivers:
            for i in range(min(1 << r, receivers)):
                dst = i + (1 << r)
                if dst < receivers:
                    steps.append(
                        Transfer(order[i], order[dst], b, round=b + 1 + r)
                    )
            r += 1
    return steps


def build_schedule(scheme: str, n: int, blocks: int) -> List[Transfer]:
    """Build the relay schedule for ``n`` members (sender = rank 0)."""
    if n < 2:
        return []
    if blocks < 1:
        raise ValueError("need at least one block")
    if scheme == "sequential":
        return _sequential(n, blocks)
    if scheme == "binomial":
        return _binomial(n, blocks)
    if scheme == "binomial_pipeline":
        return _binomial_pipeline(n, blocks)
    raise ValueError(f"unknown scheme {scheme!r}; pick one of {SCHEMES}")


def sends_by_holder(schedule: List[Transfer]) -> Dict[Tuple[int, int], List[Transfer]]:
    """Index the schedule by (holder rank, block): the sends a node owes
    once it holds that block, ordered by round."""
    index: Dict[Tuple[int, int], List[Transfer]] = {}
    for step in schedule:
        index.setdefault((step.src, step.block), []).append(step)
    for sends in index.values():
        sends.sort(key=lambda s: s.round)
    return index

"""SST — the Shared State Table (paper §2.2).

A replicated table of monotonic per-node state variables pushed among
group members with one-sided RDMA writes.
"""

from .fields import BLOB, COUNTER, FLAG, SLOT, ColumnSpec, SSTLayout
from .push import GuardedValue
from .table import SST, wire_ssts

__all__ = [
    "SST",
    "SSTLayout",
    "ColumnSpec",
    "GuardedValue",
    "wire_ssts",
    "COUNTER",
    "FLAG",
    "SLOT",
    "BLOB",
]

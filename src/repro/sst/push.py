"""Guarded multi-cell updates over the SST (paper §2.2).

For state that spans multiple cells (lists of membership changes, trim
vectors), the SST cannot rely on single-cell atomicity. Derecho's idiom:
write the data, push it, then bump and push a *guard* counter in a
second RDMA operation. The fabric's per-QP FIFO ordering (the RDMA
memory-fence guarantee) ensures any reader that sees the new guard value
also sees the new data.

:class:`GuardedValue` packages the idiom; the membership/view-change
protocol uses it for its change lists.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, Optional, Tuple

from .fields import SSTLayout
from .table import SST

__all__ = ["GuardedValue"]


class GuardedValue:
    """A blob column published atomically via a guard counter column.

    Writers call :meth:`publish` (a generator, ``yield from`` it inside
    a simulated thread). Readers call :meth:`read`, which returns the
    (version, value) pair for any row; version -1 means never published.
    """

    def __init__(self, sst: SST, data_col: int, guard_col: int):
        self.sst = sst
        self.data_col = data_col
        self.guard_col = guard_col

    @classmethod
    def declare(
        cls, layout: SSTLayout, name: str, size: int
    ) -> Tuple[int, int]:
        """Add the (data, guard) column pair to a layout being built.

        Returns ``(data_col, guard_col)``; construct the GuardedValue
        after the SST exists.
        """
        data_col = layout.blob(f"{name}.data", size)
        guard_col = layout.counter(f"{name}.guard", initial=-1)
        return data_col, guard_col

    def publish(
        self, value: Any, targets: Optional[Iterable[int]] = None
    ) -> Generator[float, None, int]:
        """Write + push data, then bump + push the guard (two writes).

        Returns the new version number.
        """
        targets = list(targets) if targets is not None else None
        self.sst.set(self.data_col, value)
        yield from self.sst.push_col(self.data_col, targets)
        version = self.sst.read_own(self.guard_col) + 1
        self.sst.set(self.guard_col, version)
        yield from self.sst.push_col(self.guard_col, targets)
        return version

    def read(self, owner: int) -> Tuple[int, Any]:
        """Read (version, value) of a row. Safe without locks: if the
        guard is visible, the matching data is too (fence guarantee)."""
        version = self.sst.read(owner, self.guard_col)
        value = self.sst.read(owner, self.data_col)
        return version, value

    def version(self, owner: int) -> int:
        """Read just the guard counter for a row."""
        return self.sst.read(owner, self.guard_col)

"""SST column layout: typed, fixed-size columns of monotonic state.

The SST (paper §2.2) is a replicated table: one row per node, a fixed
set of columns agreed at view installation. Columns are *cells* of the
underlying :class:`~repro.rdma.memory.CellRegion` — each cell is written
atomically, which models RDMA cache-line atomicity for counters/flags
and per-slot atomicity for SMC message slots.

Column kinds:

* ``counter`` — a monotonically non-decreasing 8-byte integer
  (``received_num``, ``delivered_num``, null counts, heartbeats).
* ``flag`` — a boolean that only ever goes ``False → True``
  (failure suspicions, wedged).
* ``slot`` — an SMC ring-buffer slot: message area of ``message_size``
  bytes plus an 8-byte counter (paper §2.3).
* ``blob`` — an opaque fixed-size area guarded by a separate counter
  column (the guarded-list idiom of §2.2, used by the membership
  protocol).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

__all__ = ["ColumnSpec", "SSTLayout", "COUNTER", "FLAG", "SLOT", "BLOB"]

COUNTER = "counter"
FLAG = "flag"
SLOT = "slot"
BLOB = "blob"

#: Byte size of a counter/flag cell (one cache line would be 64 B on the
#: paper's hardware; what matters for timing is the 8 B transferred).
_COUNTER_BYTES = 8


@dataclass(frozen=True)
class ColumnSpec:
    """One SST column: name, kind, transfer size and initial value."""

    name: str
    kind: str
    size: int
    initial: Any


class SSTLayout:
    """Builder for the agreed column layout of a view's SST.

    Columns are identified by name and addressed by their integer index,
    which is also their cell index in each row's
    :class:`~repro.rdma.memory.CellRegion`. Once :meth:`freeze` is
    called the layout is immutable (the paper: "the memory layout of the
    application during a view remains unchanged").
    """

    def __init__(self):
        self.columns: List[ColumnSpec] = []
        self._index: Dict[str, int] = {}
        self._frozen = False

    # ------------------------------------------------------------- builders

    def counter(self, name: str, initial: int = -1) -> int:
        """Add a monotonic counter column (default start -1, paper §2.2)."""
        return self._add(ColumnSpec(name, COUNTER, _COUNTER_BYTES, initial))

    def flag(self, name: str, initial: bool = False) -> int:
        """Add a monotonic boolean column."""
        return self._add(ColumnSpec(name, FLAG, _COUNTER_BYTES, initial))

    def slot(self, name: str, message_size: int) -> int:
        """Add an SMC slot column (message area + 8-byte counter)."""
        if message_size <= 0:
            raise ValueError("message size must be positive")
        return self._add(
            ColumnSpec(name, SLOT, message_size + _COUNTER_BYTES, None)
        )

    def blob(self, name: str, size: int, initial: Any = None) -> int:
        """Add an opaque fixed-size column (guarded-data idiom)."""
        if size <= 0:
            raise ValueError("blob size must be positive")
        return self._add(ColumnSpec(name, BLOB, size, initial))

    def _add(self, spec: ColumnSpec) -> int:
        if self._frozen:
            raise RuntimeError("layout is frozen; columns are fixed per view")
        if spec.name in self._index:
            raise ValueError(f"duplicate column name {spec.name!r}")
        index = len(self.columns)
        self.columns.append(spec)
        self._index[spec.name] = index
        return index

    def freeze(self) -> "SSTLayout":
        """Lock the layout (returns self for chaining)."""
        self._frozen = True
        return self

    # -------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self.columns)

    def index_of(self, name: str) -> int:
        """Column index for ``name`` (KeyError if absent)."""
        return self._index[name]

    def spec(self, index: int) -> ColumnSpec:
        return self.columns[index]

    @property
    def cell_sizes(self) -> Tuple[int, ...]:
        """Byte size of each column, in order (feeds CellRegion)."""
        return tuple(c.size for c in self.columns)

    @property
    def cell_kinds(self) -> Tuple[str, ...]:
        """Kind of each column, in order (feeds CellRegion's typed
        slot-array backing: counters/flags become machine words)."""
        return tuple(c.kind for c in self.columns)

    @property
    def row_bytes(self) -> int:
        """Total registered bytes per row."""
        return sum(c.size for c in self.columns)

    def initial_values(self) -> List[Any]:
        """Fresh initial cell values for a new row."""
        return [c.initial for c in self.columns]

"""The SST: a replicated table of monotonic state over one-sided RDMA.

Each node holds a full local copy of the table (paper §2.2). A node may
*write* only its own row, and publishes updates by pushing a contiguous
column span of that row to selected peers with one RDMA write each.
Reads of other rows are local reads of the last-pushed state.

Monotonicity is enforced at the write point for counter and flag
columns: the whole protocol stack (batched acknowledgments, early lock
release) relies on it, so violating it is a programming error that we
fail loudly on.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Iterable, List, Optional, Sequence

from ..rdma.fabric import RdmaFabric
from ..rdma.memory import CellRegion
from ..rdma.nic import RdmaNode
from .fields import COUNTER, FLAG, SSTLayout

__all__ = ["SST", "wire_ssts"]


class SST:
    """One node's replica of the shared state table.

    ``members`` lists the row owners (top-level group membership, fixed
    for the duration of a view). ``node`` is the local RDMA endpoint.
    """

    #: Happens-before tracker hooks (repro.analysis.lint.hb).
    #: ``hb_hook(sst, col, spec)`` fires after every :meth:`set` — the
    #: SST write point is where cross-thread races on shared protocol
    #: state become visible.  ``hb_read_hook(sst, owner)`` fires on
    #: reads of *peer* rows: a monotonic read of remotely-pushed state
    #: is the SST's synchronization mechanism (§2.2), so the reader
    #: joins the clock the remote writer parked on the row replica.
    hb_hook = None
    hb_read_hook = None

    def __init__(
        self,
        layout: SSTLayout,
        fabric: RdmaFabric,
        node: RdmaNode,
        members: Sequence[int],
        metrics: Optional[Any] = None,
    ):
        layout.freeze()
        self.layout = layout
        self.fabric = fabric
        self.node = node
        self.node_id = node.node_id
        self.members: List[int] = list(members)
        if self.node_id not in self.members:
            raise ValueError(
                f"local node {self.node_id} not in members {self.members}"
            )
        self.rows: Dict[int, CellRegion] = {}
        for owner in self.members:
            region = CellRegion(layout.cell_sizes,
                                name=f"sst-row{owner}@{self.node_id}",
                                kinds=layout.cell_kinds)
            # Pre-view initialization happens before any push can observe
            # the row, so the raw fill is sound here (and only here).
            region.cells = layout.initial_values()  # spindle-lint: allow[sst-monotonic-write]
            node.register(region)
            self.rows[owner] = region
        #: rkeys of the replicas of *my* row at each peer (set by wire_ssts).
        self._remote_row_keys: Dict[int, int] = {}
        #: Count of push operations (RDMA writes) issued through this SST.
        self.pushes_posted = 0
        #: Registry counter mirroring pushes_posted (docs/METRICS.md);
        #: a shared no-op when no metrics scope is given.
        if metrics is None:
            from ..metrics.registry import null_registry

            metrics = null_registry()
        self._push_counter = metrics.counter(
            "spindle_sst_pushes_total",
            "RDMA writes posted through this node's SST")
        #: Observers fired as ``hook(sst, col_lo, col_hi, dst)`` after
        #: each RDMA write posted by :meth:`push` (used by the runtime
        #: sanitizer for lock-discipline and monotonicity checks).
        self.on_push: List[Any] = []

    # ----------------------------------------------------------------- reads

    def read(self, owner: int, col: int) -> Any:
        """Read a cell of any row from the local copy (always safe: cells
        are written atomically)."""
        if SST.hb_read_hook is not None and owner != self.node_id:
            SST.hb_read_hook(self, owner)
        return self.rows[owner].read(col)

    def read_own(self, col: int) -> Any:
        """Read a cell of this node's own row."""
        return self.rows[self.node_id].read(col)

    def column(self, col: int, owners: Optional[Iterable[int]] = None) -> List[Any]:
        """Read one column across rows (defaults to all members)."""
        owners = self.members if owners is None else list(owners)
        if SST.hb_read_hook is not None:
            for o in owners:
                if o != self.node_id:
                    SST.hb_read_hook(self, o)
        return [self.rows[o].read(col) for o in owners]

    # ---------------------------------------------------------------- writes

    def set(self, col: int, value: Any) -> None:
        """Write a cell of the local row (visible remotely only after push).

        Counter and flag columns are checked for monotonicity; the
        correctness of batched acknowledgments and of posting after lock
        release both depend on it (paper §3.2, §3.4).
        """
        spec = self.layout.spec(col)
        row = self.rows[self.node_id]
        if spec.kind == COUNTER:
            old = row.read(col)
            if value < old:
                raise ValueError(
                    f"counter {spec.name!r} must not decrease: {old} -> {value}"
                )
        elif spec.kind == FLAG:
            old = row.read(col)
            if old and not value:
                raise ValueError(f"flag {spec.name!r} must not reset: True -> False")
        # This is THE monotonic write point the lint pass funnels
        # everyone through; the raw write below is the one sanctioned use.
        row.write_local(col, value)  # spindle-lint: allow[sst-monotonic-write]
        if SST.hb_hook is not None:
            SST.hb_hook(self, col, spec)

    # ----------------------------------------------------------------- push

    def push(
        self,
        col_lo: int,
        col_hi: int,
        targets: Optional[Iterable[int]] = None,
    ) -> Generator[float, None, None]:
        """Push columns ``[col_lo, col_hi)`` of the local row to peers.

        A generator to be ``yield from``-ed by the calling simulated
        thread: posting each RDMA write costs that thread
        ``post_overhead`` CPU (paper §3.2: ~1 µs per post). One write is
        posted per target; the span travels as one RDMA write.
        """
        if not 0 <= col_lo < col_hi <= len(self.layout):
            raise IndexError(f"bad column span [{col_lo}, {col_hi})")
        if targets is None:
            targets = self.members
        row = self.rows[self.node_id]
        post_cost = self.fabric.latency.post_overhead
        for dst in targets:
            if dst == self.node_id:
                continue
            yield post_cost
            qp = self.fabric.queue_pair(self.node_id, dst)
            qp.post_write(
                row, col_lo, self._remote_row_keys[dst], col_lo, col_hi - col_lo
            )
            self.pushes_posted += 1
            self._push_counter.inc()
            for hook in self.on_push:
                hook(self, col_lo, col_hi, dst)

    def push_col(self, col: int, targets: Optional[Iterable[int]] = None):
        """Push a single column of the local row."""
        return self.push(col, col + 1, targets)

    # ------------------------------------------------------------- utilities

    def format_table(self, columns: Optional[Sequence[int]] = None) -> str:
        """Render the local copy as an ASCII table (Table 1 style)."""
        if columns is None:
            columns = range(len(self.layout))
        names = [self.layout.spec(c).name for c in columns]
        header = " | ".join(["node".ljust(6)] + [n.ljust(12) for n in names])
        lines = [header, "-" * len(header)]
        for owner in self.members:
            cells = []
            for c in columns:
                value = self.rows[owner].read(c)
                cells.append(str(value).ljust(12))
            lines.append(" | ".join([str(owner).ljust(6)] + cells))
        return "\n".join(lines)


def wire_ssts(ssts: Dict[int, "SST"]) -> None:
    """Exchange region keys among a set of SST replicas.

    Models the address/rkey exchange Derecho performs at the start of a
    view (paper §2.3): afterwards each node can push its row into every
    peer's copy.
    """
    for sst in ssts.values():
        for peer_id, peer_sst in ssts.items():
            if peer_id == sst.node_id:
                continue
            sst._remote_row_keys[peer_id] = peer_sst.rows[sst.node_id].key

"""The predicate framework: Derecho's single polling thread (paper §2.4).

One :class:`PredicateThread` per node evaluates all registered
predicates in a loop, under a shared lock that application threads also
take when queueing sends. Its behaviour embodies two of the paper's
central observations:

* All subgroups' predicates are evaluated *fairly*, so inactive
  subgroups still cost evaluation time every iteration (§4.1.3 / Fig 8).
* Whether RDMA writes are posted while holding the lock (baseline) or
  after releasing it (§3.4) is decided here, uniformly for every
  trigger.

Protocol code supplies :class:`Predicate` objects:

* ``evaluate()`` returns ``(cpu_cost_seconds, value)`` and must be free
  of side effects. A falsy value means "nothing to do".
* ``trigger(value)`` is a generator that performs the body (yielding CPU
  costs as it goes) and *returns* an optional generator of deferred RDMA
  posts. The thread runs the posts inside or outside the lock depending
  on ``SpindleConfig.early_lock_release``, and accounts the time spent
  posting (the paper's ">30 % of predicate-thread time" metric).

When an iteration finds no work the thread parks on a doorbell, which is
rung by arriving remote writes and by local application sends — this is
the quiescence behaviour described at the end of §2.4.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from ..core.config import SpindleConfig, TimingModel
from ..metrics.registry import null_registry
from ..metrics.stages import STAGE_OTHER_PREDICATE, STAGE_SST_POST, STAGE_TIME
from ..sim.engine import AtTime, Simulator
from ..sim.sync import Doorbell, Lock

__all__ = ["Predicate", "PredicateThread"]


class Predicate:
    """Base class for a monotonic predicate and its trigger."""

    #: Human-readable name (shows up in accounting).
    name = "predicate"
    #: Subgroup this predicate belongs to (None for membership-level).
    subgroup: Optional[int] = None
    #: Pipeline stage for the metrics profile (docs/METRICS.md):
    #: "send_predicate" / "receive_predicate" / "delivery_predicate";
    #: membership and durability predicates stay "other_predicate".
    stage: str = STAGE_OTHER_PREDICATE

    def evaluate(self) -> Tuple[float, Any]:
        """Return (cpu_cost, value); value truthy means run the trigger."""
        raise NotImplementedError

    def trigger(self, value: Any):
        """Generator: perform the body, yielding CPU costs; return an
        optional generator of deferred RDMA posts."""
        raise NotImplementedError

    def generation(self) -> Optional[Any]:
        """Memoization token covering *every* input of :meth:`evaluate`.

        Return a value that is guaranteed to change whenever evaluate()
        could return a different result — typically a tuple of local
        counters plus the sum of the watched SST rows' ``version``
        generation counters (monotone under the §2.2 write discipline).
        While the token is unchanged, the thread may reuse the last
        result instead of re-evaluating.  Return None (the default) to
        disable memoization for this predicate.
        """
        return None


class PredicateThread:
    """The per-node polling thread plus its shared lock and doorbell."""

    def __init__(
        self,
        sim: Simulator,
        config: SpindleConfig,
        timing: TimingModel,
        name: str = "predicates",
        metrics: Optional[Any] = None,
    ):
        self.sim = sim
        self.config = config
        self.timing = timing
        self.name = name
        self.lock = Lock(sim, name=f"{name}.lock")
        self.doorbell = Doorbell(sim, name=f"{name}.bell")
        self.predicates: List[Predicate] = []
        self._running = False
        self._process = None
        #: True when this thread runs the folded fast path (optimized
        #: engine): uncontended lock grabs skip the scheduler round-trip
        #: and falsy passes fold their fixed-cost sleeps into one wake.
        #: Timestamps and observable state transitions are identical to
        #: the reference loop either way.
        self.fastpath = getattr(sim, "engine_mode", "optimized") != "reference"
        #: Last falsy evaluation per predicate: token -> (cost, value).
        #: Sound per the §2.2 monotonicity argument in docs/ENGINE.md:
        #: an unchanged generation token implies an unchanged result.
        self._memo: Dict[Predicate, Tuple[Any, float, Any]] = {}
        # -- accounting --------------------------------------------------------
        self.iterations = 0
        #: Predicate passes, and the subset answered from the memo cache
        #: without calling evaluate() (bench: predicate-eval savings).
        self.evals_total = 0
        self.evals_skipped = 0
        self.busy_time = 0.0
        self.idle_time = 0.0
        self.post_time = 0.0
        self.posts_run = 0
        #: time spent evaluating + triggering, per subgroup id (§4.1.3).
        self.subgroup_time: Dict[Optional[int], float] = {}
        # -- metrics plane (docs/METRICS.md) -----------------------------------
        #: A (usually node-scoped) registry view; the null registry makes
        #: every instrument below a shared no-op.
        self.metrics = metrics if metrics is not None else null_registry()
        self._stage_timers: Dict[str, Any] = {}
        self._post_timers = {
            phase: self.metrics.timer(
                STAGE_TIME, "RDMA posting time by lock phase (§3.4)",
                stage=STAGE_SST_POST, lock_phase=phase)
            for phase in ("prelock", "postlock")
        }
        self._iterations_counter = self.metrics.counter(
            "spindle_predicate_iterations_total",
            "polling-loop iterations")
        self._busy_gauge = self.metrics.gauge(
            "spindle_predicate_busy_seconds",
            "total simulated time the polling thread was busy")
        self._idle_gauge = self.metrics.gauge(
            "spindle_predicate_idle_seconds",
            "total simulated time parked on the doorbell")
        self._triggers_counter = self.metrics.counter(
            "spindle_predicate_triggers_total", "trigger bodies run")

    # -------------------------------------------------------------- lifecycle

    def register(self, predicate: Predicate) -> None:
        """Add a predicate; evaluation order is registration order."""
        self.predicates.append(predicate)
        self.doorbell.ring()

    def unregister(self, predicate: Predicate) -> None:
        self.predicates.remove(predicate)

    def start(self) -> None:
        if self._process is not None:
            raise RuntimeError("predicate thread already started")
        self._running = True
        loop = self._run_fast() if self.fastpath else self._run()
        self._process = self.sim.spawn(loop, name=self.name)

    def stop(self) -> None:
        """Ask the loop to exit at its next idle check."""
        self._running = False
        self.doorbell.ring()

    @property
    def running(self) -> bool:
        return self._running

    # ------------------------------------------------------------- main loop

    def _run(self):
        timing = self.timing
        while self._running:
            self.iterations += 1
            self._iterations_counter.inc()
            progressed = False
            iter_start = self.sim.now
            for predicate in tuple(self.predicates):
                # Everything from here to the final release is billed to
                # this predicate's stage, minus any posting time (billed
                # to sst_post by lock phase) — together the stage timers
                # partition busy_time exactly (docs/METRICS.md).
                pass_start = self.sim.now
                post_before = self.post_time
                yield self.lock.acquire()
                yield timing.lock_op
                pred_start = self.sim.now
                self.evals_total += 1
                cost, value = predicate.evaluate()
                yield cost
                if value:
                    progressed = True
                    self._triggers_counter.inc()
                    posts = yield from predicate.trigger(value)
                    self._account(predicate, self.sim.now - pred_start)
                    if self.config.early_lock_release:
                        yield timing.lock_op
                        self.lock.release()
                        if posts is not None:
                            yield from self._run_posts(posts, "postlock")
                    else:
                        if posts is not None:
                            yield from self._run_posts(posts, "prelock")
                        yield timing.lock_op
                        self.lock.release()
                else:
                    self._account(predicate, self.sim.now - pred_start)
                    yield timing.lock_op
                    self.lock.release()
                self._profile_stage(
                    predicate,
                    (self.sim.now - pass_start)
                    - (self.post_time - post_before),
                )
            self.busy_time += self.sim.now - iter_start
            self._busy_gauge.set(self.busy_time)
            if not progressed:
                idle_start = self.sim.now
                yield self.doorbell.wait()
                self.idle_time += self.sim.now - idle_start
                self._idle_gauge.set(self.idle_time)

    def _run_fast(self):
        """The folded polling loop (optimized engine).

        Produces bit-identical timestamps and state transitions to
        :meth:`_run` with fewer scheduler turns per pass
        (docs/ENGINE.md has the full soundness argument):

        * An uncontended pass grabs the lock synchronously
          (:meth:`Lock.acquire_nowait`) and folds the acquire wake plus
          the ``lock_op`` sleep into ONE absolute-time wake at
          ``t_a = pass_start + lock_op`` — exactly the instant the
          reference loop evaluates at, computed by the same chain of
          float additions.
        * The evaluate/memo decision happens AT ``t_a``, never earlier:
          an SST write landing in ``(pass_start, t_a)`` is visible to
          this pass, exactly as in the reference loop.
        * A falsy result folds the ``cost`` sleep and the trailing
          ``lock_op`` sleep into one wake at ``t_c = (t_a + cost) +
          lock_op`` (falsy passes mutate nothing and release at
          ``t_c``, so nobody can observe the difference).
        * Truthy passes run the trigger body verbatim — trigger
          mutations must become visible at the reference instants.

        Contended passes (lock already held) fall back to the reference
        sequence wholesale.

        Note the release at ``t_c`` is real, never folded away: holding
        the lock across consecutive falsy passes would move the next
        wake's *scheduling instant* from ``t_c`` back to ``t_a``, and
        when symmetric float chains on different nodes collide at the
        same timestamp, the (time, seq) tie-break would then order the
        colliding turns differently than the reference loop
        (docs/ENGINE.md, "why falsy runs are not folded further").
        """
        timing = self.timing
        sim = self.sim
        lock = self.lock
        lock_op = timing.lock_op
        while self._running:
            self.iterations += 1
            self._iterations_counter.inc()
            progressed = False
            iter_start = sim.now
            for predicate in tuple(self.predicates):
                pass_start = sim.now
                post_before = self.post_time
                if lock.acquire_nowait(self._process):
                    t_a = pass_start + lock_op
                    yield AtTime(t_a)
                    cost, value = self._decide(predicate)
                    if value:
                        progressed = True
                        self._triggers_counter.inc()
                        yield cost
                        posts = yield from predicate.trigger(value)
                        self._account(predicate, sim.now - t_a)
                        if self.config.early_lock_release:
                            yield lock_op
                            lock.release()
                            if posts is not None:
                                yield from self._run_posts(posts, "postlock")
                        else:
                            if posts is not None:
                                yield from self._run_posts(posts, "prelock")
                            yield lock_op
                            lock.release()
                    else:
                        t_c = (t_a + cost) + lock_op
                        self._account(predicate, (t_a + cost) - t_a)
                        yield AtTime(t_c)
                        lock.release()
                else:
                    # Contended: reference pass, verbatim.
                    yield lock.acquire()
                    yield lock_op
                    pred_start = sim.now
                    cost, value = self._decide(predicate)
                    yield cost
                    if value:
                        progressed = True
                        self._triggers_counter.inc()
                        posts = yield from predicate.trigger(value)
                        self._account(predicate, sim.now - pred_start)
                        if self.config.early_lock_release:
                            yield lock_op
                            lock.release()
                            if posts is not None:
                                yield from self._run_posts(posts, "postlock")
                        else:
                            if posts is not None:
                                yield from self._run_posts(posts, "prelock")
                            yield lock_op
                            lock.release()
                    else:
                        self._account(predicate, sim.now - pred_start)
                        yield lock_op
                        lock.release()
                self._profile_stage(
                    predicate,
                    (sim.now - pass_start)
                    - (self.post_time - post_before),
                )
            self.busy_time += sim.now - iter_start
            self._busy_gauge.set(self.busy_time)
            if not progressed:
                idle_start = sim.now
                yield self.doorbell.wait()
                self.idle_time += sim.now - idle_start
                self._idle_gauge.set(self.idle_time)

    def _decide(self, predicate: Predicate) -> Tuple[float, Any]:
        """Memo-or-evaluate at the current instant (the reference eval
        point): reuse the cached result while the generation token is
        unchanged, else evaluate and cache falsy results.

        Both callers hold ``self.lock`` here; the fast path acquires it
        via ``acquire_nowait``, which the static lockset pass does not
        model as an acquire."""
        self.evals_total += 1  # spindle-lint: allow[lockset-unprotected-write]
        token = predicate.generation()
        if token is not None:
            entry = self._memo.get(predicate)
            if entry is not None and entry[0] == token:
                self.evals_skipped += 1
                return entry[1], entry[2]
        cost, value = predicate.evaluate()
        if token is not None and not value:
            self._memo[predicate] = (token, cost, value)
        return cost, value

    def _run_posts(self, posts: Generator[float, None, Any],
                   phase: str = "postlock"):
        """Drive a deferred-post generator, accounting the time as
        'time spent posting RDMA writes' (§3.2 metric). ``phase`` is
        the §3.4 lock phase: "prelock" (posted while holding the shared
        lock, baseline) or "postlock" (after early release)."""
        start = self.sim.now
        result = yield from posts
        elapsed = self.sim.now - start
        self.post_time += elapsed
        self.posts_run += 1
        self._post_timers[phase].add(elapsed)
        return result

    def _profile_stage(self, predicate: Predicate, elapsed: float) -> None:
        """Bill one predicate pass (minus posting) to its stage timer."""
        stage = predicate.stage
        timer = self._stage_timers.get(stage)
        if timer is None:
            timer = self.metrics.timer(
                STAGE_TIME, "predicate-thread time by pipeline stage",
                stage=stage)
            self._stage_timers[stage] = timer
        # Clamp float fuzz: elapsed is a difference of sums of tiny
        # costs, so it can come out at -1e-19 when the pass was all
        # posting time.
        timer.add(elapsed if elapsed > 0 else 0.0)

    def _account(self, predicate: Predicate, elapsed: float) -> None:
        key = predicate.subgroup
        self.subgroup_time[key] = self.subgroup_time.get(key, 0.0) + elapsed

    # ------------------------------------------------------------- reporting

    def subgroup_time_fraction(self, subgroup: int) -> float:
        """Fraction of accounted predicate time spent on one subgroup."""
        total = sum(self.subgroup_time.values())
        if total == 0:
            return 0.0
        return self.subgroup_time.get(subgroup, 0.0) / total

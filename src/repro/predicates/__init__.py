"""Predicate framework — the single polling thread over the SST (§2.4)."""

from .framework import Predicate, PredicateThread

__all__ = ["Predicate", "PredicateThread"]

"""Deterministic fault-injection plane for the multicast pipeline.

The fault plane turns the simulator's determinism into a chaos-testing
asset: every injected fault — link-latency jitter, degradation windows,
symmetric and asymmetric partitions with scheduled heal, predicate-
thread stalls, crash + delayed-restart schedules — is driven through a
declarative, JSON-serializable :class:`FaultSchedule`, so any run
(including a failing CI seed) replays byte-identically.

Three layers:

* :class:`FaultSchedule` / the ``*Event`` dataclasses — the declarative
  description, round-trippable through JSON (docs/FAULTS.md).
* :class:`FaultPlane` — arms a schedule against a live
  :class:`~repro.workloads.cluster.Cluster`: hooks every NIC's egress
  (:attr:`~repro.rdma.nic.RdmaNode.fault_hook`), suspends/resumes
  :class:`~repro.sim.process.Process` threads, and crash-stops nodes.
  Reached via ``cluster.faults``.
* :mod:`repro.faults.scenarios` — the named chaos-scenario catalog run
  by ``spindle-repro chaos``.
"""

from .plane import FaultPlane
from .scenarios import SCENARIOS, ScenarioResult, run_scenario
from .schedule import (
    CrashEvent,
    FaultSchedule,
    JitterEvent,
    PartitionEvent,
    SeverEvent,
    StallEvent,
    StorageFaultEvent,
)

__all__ = [
    "FaultPlane",
    "FaultSchedule",
    "PartitionEvent",
    "SeverEvent",
    "JitterEvent",
    "StallEvent",
    "CrashEvent",
    "StorageFaultEvent",
    "ScenarioResult",
    "SCENARIOS",
    "run_scenario",
]

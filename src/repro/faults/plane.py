"""The FaultPlane: arms declarative fault schedules against a cluster.

One plane per cluster (``cluster.faults``). Imperative helpers record
the corresponding event into :attr:`FaultPlane.schedule` *and* arm it,
so whatever you injected by hand can be serialized afterwards and
replayed exactly::

    cluster.faults.partition([[0, 1, 2], [3, 4]], at=ms(1), heal_at=ms(2))
    cluster.faults.stall(2, duration=us(300), at=ms(1))
    print(cluster.faults.schedule.to_json())   # replayable description

or declaratively::

    schedule = FaultSchedule.from_json(open("chaos.json").read())
    cluster.faults.apply(schedule)

Injection points (docs/FAULTS.md):

* network cuts and latency: :attr:`repro.rdma.nic.RdmaNode.fault_hook`,
  consulted on every posted write;
* thread stalls: :meth:`repro.sim.process.Process.suspend` / ``resume``
  on the node's predicate thread (and detector, ``scope="node"``);
* crashes/restarts: ``Cluster.fail_node`` plus NIC revival.

Determinism: all randomness (jitter samples, loss coin flips) comes
from ``random.Random(schedule.seed)``, consumed in write-post order —
which the simulator makes deterministic — so a (cluster seed, schedule)
pair fully determines the run.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..rdma.nic import (
    DROP_INJECTED_LOSS,
    DROP_PARTITION,
    FaultDecision,
    QueuePair,
    RdmaNode,
    WriteSnapshot,
)
from .schedule import (
    CrashEvent,
    FaultSchedule,
    JitterEvent,
    PartitionEvent,
    SeverEvent,
    StallEvent,
    StorageFaultEvent,
)

__all__ = ["FaultPlane"]


class _Cut:
    """One armed directional cut (possibly one half of a partition)."""

    __slots__ = ("src", "dst", "mode", "held", "active")

    def __init__(self, src: Set[int], dst: Set[int], mode: str):
        self.src = src
        self.dst = dst
        self.mode = mode
        #: Writes buffered for RC-retransmit redelivery at heal time.
        self.held: List[Tuple[QueuePair, WriteSnapshot, int]] = []
        self.active = True

    def matches(self, src_id: int, dst_id: int) -> bool:
        return src_id in self.src and dst_id in self.dst

    def hold(self, qp: QueuePair, snap: WriteSnapshot, remote_key: int) -> None:
        self.held.append((qp, snap, remote_key))


class _JitterWindow:
    __slots__ = ("until", "extra", "jitter", "loss", "links")

    def __init__(self, until: float, extra: float, jitter: float,
                 loss: float, links: Optional[Set[Tuple[int, int]]]):
        self.until = until
        self.extra = extra
        self.jitter = jitter
        self.loss = loss
        self.links = links

    def matches(self, src_id: int, dst_id: int, now: float) -> bool:
        if now >= self.until:
            return False
        return self.links is None or (src_id, dst_id) in self.links


class FaultPlane:
    """Composable, seeded fault injection for one cluster."""

    def __init__(self, cluster, seed: Optional[int] = None):
        self.cluster = cluster
        self.sim = cluster.sim
        self.fabric = cluster.fabric
        if seed is None:
            seed = getattr(cluster, "seed", 0)
        self.schedule = FaultSchedule(seed=seed)
        self.rng = random.Random(seed)
        self._cuts: List[_Cut] = []
        self._jitters: List[_JitterWindow] = []
        # -- observability ----------------------------------------------------
        self.writes_held = 0
        self.writes_redelivered = 0
        self.stalls_started = 0
        self.stalls_finished = 0
        self.crashes = 0
        self.restarts = 0
        self.heals = 0
        self.storage_faults = 0
        # -- metrics plane (docs/METRICS.md) ----------------------------------
        # Armed events are counted as they are scheduled; the injection
        # counters above are mirrored into the registry by a pull
        # collector at snapshot time, keeping the egress hot path free
        # of metric calls.
        metrics = getattr(cluster, "metrics", None)
        if metrics is None or not getattr(metrics, "enabled", False):
            from ..metrics.registry import null_registry

            metrics = null_registry()
        self.metrics = metrics
        if metrics.enabled:
            metrics.add_collector(self._mirror_counters)
        #: Fired as ``callback(node_id)`` when a crashed node's NIC is
        #: revived. Protocol re-admission happens at the next epoch
        #: boundary; subscribe a
        #: :class:`~repro.recovery.coordinator.RecoveryCoordinator`
        #: (``cluster.recovery``) to drive replay → state transfer →
        #: rejoin automatically (docs/RECOVERY.md), or install a joined
        #: view by hand.
        self.on_restart: List[Callable[[int], None]] = []
        #: Fired as ``callback(node_id)`` immediately after a crash
        #: lands (NIC dead, threads killed, storage write caches
        #: dropped). The txn plane subscribes to amputate driver
        #: processes whose coordinator host died (docs/TRANSACTIONS.md).
        self.on_crash: List[Callable[[int], None]] = []
        #: Fired as ``callback()`` after each partition/sever heals.
        self.on_heal: List[Callable[[], None]] = []
        for node in self.fabric.nodes.values():
            self.adopt(node)

    # ------------------------------------------------------------------ wiring

    def adopt(self, node: RdmaNode) -> None:
        """Install the egress fault hook on a node (idempotent); called
        for every existing node at construction and by ``Cluster.add_node``
        for late joiners."""
        node.fault_hook = self._decide

    def reseed(self, seed: int) -> None:
        """Reset the plane's RNG and schedule seed (before arming events)."""
        self.schedule.seed = seed
        self.rng = random.Random(seed)

    # ------------------------------------------------------------- scheduling

    def apply(self, schedule: FaultSchedule, reseed: bool = True) -> None:
        """Arm every event of a declarative schedule (exact replay).

        With ``reseed`` (default) the plane's RNG is reset to the
        schedule's seed first, so replays are independent of any faults
        injected earlier by hand.
        """
        if reseed:
            self.reseed(schedule.seed)
        for event in schedule.events:
            self.schedule.add(event)
            self._arm(event)

    def partition(self, groups: Sequence[Sequence[int]],
                  at: Optional[float] = None,
                  heal_at: Optional[float] = None,
                  mode: str = "buffer") -> PartitionEvent:
        """Symmetric partition between node groups, healing at ``heal_at``."""
        event = PartitionEvent(at=self._when(at), groups=tuple(
            tuple(g) for g in groups), heal_at=heal_at, mode=mode)
        self.schedule.add(event)
        self._arm(event)
        return event

    def sever(self, src: Sequence[int], dst: Sequence[int],
              at: Optional[float] = None, heal_at: Optional[float] = None,
              mode: str = "buffer") -> SeverEvent:
        """Asymmetric cut: src→dst writes are cut, dst→src still flows."""
        event = SeverEvent(at=self._when(at), src=tuple(src), dst=tuple(dst),
                           heal_at=heal_at, mode=mode)
        self.schedule.add(event)
        self._arm(event)
        return event

    def jitter(self, until: float, extra_latency: float = 0.0,
               jitter: float = 0.0, loss: float = 0.0,
               at: Optional[float] = None,
               links: Optional[Sequence[Tuple[int, int]]] = None
               ) -> JitterEvent:
        """Latency degradation window on some (or all) directed links."""
        event = JitterEvent(
            at=self._when(at), until=until, extra_latency=extra_latency,
            jitter=jitter, loss=loss,
            links=tuple((s, d) for s, d in links) if links is not None else None,
        )
        self.schedule.add(event)
        self._arm(event)
        return event

    def stall(self, node: int, duration: float, at: Optional[float] = None,
              scope: str = "predicate") -> StallEvent:
        """Freeze a node's protocol thread(s) for ``duration`` seconds."""
        event = StallEvent(at=self._when(at), node=node, duration=duration,
                           scope=scope)
        self.schedule.add(event)
        self._arm(event)
        return event

    def crash(self, node: int, at: Optional[float] = None,
              restart_at: Optional[float] = None) -> CrashEvent:
        """Crash-stop a node; optionally revive its NIC at ``restart_at``."""
        event = CrashEvent(at=self._when(at), node=node, restart_at=restart_at)
        self.schedule.add(event)
        self._arm(event)
        return event

    def storage_fault(self, node: int, mode: str,
                      at: Optional[float] = None,
                      device: Optional[str] = None,
                      until: Optional[float] = None,
                      count: int = 1,
                      record_index: int = 0) -> StorageFaultEvent:
        """Arm a stable-storage failure mode on a node's device(s):
        ``"torn-append"`` (next ``count`` crashes tear the un-fsynced
        tail), ``"fsync-stall"`` (fsyncs held until ``until``), or
        ``"corrupt-device"`` (flip a byte in durable record
        ``record_index``) — docs/DURABILITY.md."""
        event = StorageFaultEvent(
            at=self._when(at), node=node, mode=mode, device=device,
            until=until, count=count, record_index=record_index)
        self.schedule.add(event)
        self._arm(event)
        return event

    # --------------------------------------------------------------- internals

    def _when(self, at: Optional[float]) -> float:
        return self.sim.now if at is None else at

    def _at(self, time: float, fn, *args) -> None:
        """Run ``fn`` at ``time`` (immediately if that is now/past —
        schedules built before ``cluster.run`` often start at 0)."""
        if time <= self.sim.now:
            fn(*args)
        else:
            self.sim.call_at(time, fn, *args)

    def _arm(self, event) -> None:
        kind = event.kind
        self.metrics.counter(
            "spindle_fault_events_armed_total",
            "Fault-schedule events armed against the cluster",
            kind=kind,
        ).inc()
        if kind in ("partition", "sever"):
            if kind == "partition":
                cuts = []
                for i, a in enumerate(event.groups):
                    for j, b in enumerate(event.groups):
                        if i != j:
                            cuts.append(_Cut(set(a), set(b), event.mode))
            else:
                cuts = [_Cut(set(event.src), set(event.dst), event.mode)]
            self._at(event.at, self._activate_cuts, cuts)
            if event.heal_at is not None:
                # Armed up front: heal must fire even if the cut itself
                # activated "immediately" at a past timestamp.
                self._at(event.heal_at, self._heal_cuts, cuts)
        elif kind == "jitter":
            window = _JitterWindow(
                event.until, event.extra_latency, event.jitter, event.loss,
                set(event.links) if event.links is not None else None,
            )
            self._at(event.at, self._jitters.append, window)
            self._at(event.until, self._expire_jitter, window)
        elif kind == "stall":
            self._at(event.at, self._do_stall, event.node, event.duration,
                     event.scope)
        elif kind == "crash":
            self._at(event.at, self._do_crash, event.node)
            if event.restart_at is not None:
                self._at(event.restart_at, self._do_restart, event.node)
        elif kind == "storage-fault":
            self._at(event.at, self._do_storage_fault, event)
        else:  # pragma: no cover - schedule validation prevents this
            raise ValueError(f"unknown fault event kind {kind!r}")

    # -- cuts ---------------------------------------------------------------

    def _activate_cuts(self, cuts: List[_Cut]) -> None:
        self._cuts.extend(cuts)

    def _heal_cuts(self, cuts: List[_Cut]) -> None:
        for cut in cuts:
            if not cut.active:
                continue
            cut.active = False
            if cut in self._cuts:
                self._cuts.remove(cut)
            # RC retransmit: redeliver everything held, per-QP FIFO
            # order preserved by QueuePair.deliver_held's arrival chain.
            for qp, snap, remote_key in cut.held:
                qp.deliver_held(snap, remote_key)
                self.writes_redelivered += 1
            cut.held.clear()
        self.heals += 1
        for callback in self.on_heal:
            callback()

    # -- the egress decision hook -------------------------------------------

    def _decide(self, qp: QueuePair, size: int) -> Optional[FaultDecision]:
        src, dst = qp.src.node_id, qp.dst.node_id
        for cut in self._cuts:
            if cut.matches(src, dst):
                if cut.mode == "drop":
                    return FaultDecision(drop_reason=DROP_PARTITION)
                self.writes_held += 1
                return FaultDecision(hold=cut.hold)
        now = self.sim.now
        extra = 0.0
        for window in self._jitters:
            if not window.matches(src, dst, now):
                continue
            if window.loss and self.rng.random() < window.loss:
                return FaultDecision(drop_reason=DROP_INJECTED_LOSS)
            extra += window.extra
            if window.jitter:
                extra += self.rng.random() * window.jitter
        if extra > 0.0:
            return FaultDecision(extra_latency=extra)
        return None

    def _expire_jitter(self, window: _JitterWindow) -> None:
        if window in self._jitters:
            self._jitters.remove(window)

    # -- stalls -------------------------------------------------------------

    def _do_stall(self, node: int, duration: float, scope: str) -> None:
        """Suspend the node's protocol thread(s); resume after ``duration``.

        Processes are resolved *at fire time* so stalls keep working
        across epoch restarts (``install_view`` builds new GroupNodes).
        """
        group = self.cluster.groups.get(node)
        if group is None:
            return
        procs = group.protocol_processes(scope)
        if not procs:
            return
        for proc in procs:
            proc.suspend()
        self.stalls_started += 1
        self.sim.call_after(duration, self._end_stall, procs)

    def _end_stall(self, procs) -> None:
        for proc in procs:
            proc.resume()
        self.stalls_finished += 1

    # -- crash / restart ----------------------------------------------------

    def _do_crash(self, node: int) -> None:
        if self.fabric.nodes[node].alive:
            self.cluster.fail_node(node)
            self.crashes += 1
            for callback in self.on_crash:
                callback(node)

    def _do_storage_fault(self, event: StorageFaultEvent) -> None:
        """Arm a storage failure mode on the node's device(s). Devices
        for persistent subgroups / durable acceptors exist from
        ``cluster.build()``; a *named* device is get-or-created so
        arming order never matters."""
        storage = getattr(self.cluster, "storage", None)
        if storage is None:
            return
        if event.device is not None:
            devices = [storage.device(event.node, event.device)]
        else:
            devices = storage.devices_of(event.node)
        for dev in devices:
            if event.mode == "torn-append":
                dev.torn_crashes_armed += event.count
            elif event.mode == "fsync-stall":
                dev.fsync_stalled_until = max(dev.fsync_stalled_until,
                                              event.until)
            else:  # corrupt-device
                dev.corrupt(event.record_index)
        self.storage_faults += 1

    def _do_restart(self, node: int) -> None:
        rdma_node = self.fabric.nodes[node]
        if rdma_node.alive:
            return
        restart = getattr(self.cluster, "restart_node", None)
        if restart is not None:
            restart(node)  # NIC revival + live/dead bookkeeping
        else:
            rdma_node.alive = True
            rdma_node.egress_free_at = max(rdma_node.egress_free_at,
                                           self.sim.now)
        self.restarts += 1
        for callback in self.on_restart:
            callback(node)

    # ------------------------------------------------------------- reporting

    def counters(self) -> Dict[str, int]:
        """Injection counters for reports and the chaos CLI."""
        return {
            "writes_held": self.writes_held,
            "writes_redelivered": self.writes_redelivered,
            "stalls_started": self.stalls_started,
            "stalls_finished": self.stalls_finished,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "heals": self.heals,
            "storage_faults": self.storage_faults,
        }

    def _mirror_counters(self) -> None:
        """Pull collector: mirror the injection counters into the
        registry as ``spindle_fault_injections_total{action=...}``."""
        for action, value in self.counters().items():
            self.metrics.counter(
                "spindle_fault_injections_total",
                "Fault injections performed by the FaultPlane",
                action=action,
            ).set_to(value)

"""Declarative fault schedules: validated events + exact-replay JSON.

A :class:`FaultSchedule` is a seed plus an ordered list of fault events.
Serializing it to JSON and replaying against the same cluster seed
reproduces the run byte-for-byte (the determinism regression test in
tests/test_chaos_determinism.py pins this): the schedule carries *all*
the randomness the fault plane consumes — jitter samples and loss coin
flips come from ``random.Random(schedule.seed)``, never from the wall
clock or the simulator's own RNG.

Schema (version 1)::

    {"version": 1, "seed": 7, "events": [
      {"kind": "partition", "at": 1e-3, "heal_at": 2e-3,
       "groups": [[0, 1, 2], [3, 4]], "mode": "buffer"},
      {"kind": "sever", "at": 1e-3, "heal_at": null,
       "src": [0], "dst": [3], "mode": "drop"},
      {"kind": "jitter", "at": 0.0, "until": 5e-3, "extra_latency": 2e-6,
       "jitter": 5e-6, "loss": 0.0, "links": [[0, 1]]},
      {"kind": "stall", "at": 1e-3, "node": 2, "duration": 3e-4,
       "scope": "node"},
      {"kind": "crash", "at": 1e-3, "node": 3, "restart_at": 5e-3},
      {"kind": "storage-fault", "at": 1e-3, "node": 3,
       "mode": "torn-append", "device": "sg0", "count": 1}
    ]}

``mode`` for cuts: ``"buffer"`` (default) models RC retransmit across a
transient cut — writes posted into the cut are held and redelivered in
per-QP order at heal time; ``"drop"`` models a hard cut (retry budget
exhausted, QP broken): the writes are gone, tagged
``partition`` in ``writes_dropped_by_reason``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "FaultSchedule",
    "PartitionEvent",
    "SeverEvent",
    "JitterEvent",
    "StallEvent",
    "CrashEvent",
    "StorageFaultEvent",
    "SCHEMA_VERSION",
]

SCHEMA_VERSION = 1

#: Cut modes: RC-retransmit buffering vs. hard loss.
CUT_MODES = ("buffer", "drop")
#: Stall scopes: just the predicate thread, or every protocol thread of
#: the node (predicate thread + failure detector), a full GC-like freeze.
STALL_SCOPES = ("predicate", "node")


def _check_time(name: str, value: float) -> None:
    if not isinstance(value, (int, float)) or value < 0:
        raise ValueError(f"{name} must be a non-negative time, got {value!r}")


def _check_nodes(name: str, nodes) -> Tuple[int, ...]:
    nodes = tuple(int(n) for n in nodes)
    if not nodes:
        raise ValueError(f"{name} must name at least one node")
    if len(set(nodes)) != len(nodes):
        raise ValueError(f"duplicate nodes in {name}: {nodes}")
    return nodes


@dataclass(frozen=True)
class PartitionEvent:
    """Symmetric partition: traffic between different groups is cut in
    both directions from ``at`` until ``heal_at`` (None = never heals)."""

    at: float
    groups: Tuple[Tuple[int, ...], ...]
    heal_at: Optional[float] = None
    mode: str = "buffer"
    kind: str = field(default="partition", init=False)

    def __post_init__(self):
        _check_time("at", self.at)
        groups = tuple(_check_nodes("partition group", g) for g in self.groups)
        if len(groups) < 2:
            raise ValueError("a partition needs at least two groups")
        seen = set()
        for g in groups:
            overlap = seen & set(g)
            if overlap:
                raise ValueError(f"partition groups overlap on {sorted(overlap)}")
            seen |= set(g)
        object.__setattr__(self, "groups", groups)
        if self.heal_at is not None and self.heal_at <= self.at:
            raise ValueError("heal_at must be after at")
        if self.mode not in CUT_MODES:
            raise ValueError(f"unknown cut mode {self.mode!r}")


@dataclass(frozen=True)
class SeverEvent:
    """Asymmetric cut: writes from ``src`` nodes to ``dst`` nodes are cut
    (the reverse direction still flows) from ``at`` until ``heal_at``."""

    at: float
    src: Tuple[int, ...]
    dst: Tuple[int, ...]
    heal_at: Optional[float] = None
    mode: str = "buffer"
    kind: str = field(default="sever", init=False)

    def __post_init__(self):
        _check_time("at", self.at)
        object.__setattr__(self, "src", _check_nodes("src", self.src))
        object.__setattr__(self, "dst", _check_nodes("dst", self.dst))
        if set(self.src) & set(self.dst):
            raise ValueError("sever src and dst overlap")
        if self.heal_at is not None and self.heal_at <= self.at:
            raise ValueError("heal_at must be after at")
        if self.mode not in CUT_MODES:
            raise ValueError(f"unknown cut mode {self.mode!r}")


@dataclass(frozen=True)
class JitterEvent:
    """Link degradation window: from ``at`` to ``until`` every matching
    write gains ``extra_latency`` plus uniform ``[0, jitter)`` seconds,
    and is lost with probability ``loss`` (reason ``injected-loss``).

    ``links`` restricts the window to specific directed (src, dst)
    pairs; None means every link on the fabric.
    """

    at: float
    until: float
    extra_latency: float = 0.0
    jitter: float = 0.0
    loss: float = 0.0
    links: Optional[Tuple[Tuple[int, int], ...]] = None
    kind: str = field(default="jitter", init=False)

    def __post_init__(self):
        _check_time("at", self.at)
        _check_time("until", self.until)
        if self.until <= self.at:
            raise ValueError("until must be after at")
        if self.extra_latency < 0 or self.jitter < 0:
            raise ValueError("latency additions must be non-negative")
        if not 0.0 <= self.loss < 1.0:
            raise ValueError("loss must be a probability in [0, 1)")
        if self.extra_latency == 0 and self.jitter == 0 and self.loss == 0:
            raise ValueError("jitter window injects nothing")
        if self.links is not None:
            links = tuple((int(s), int(d)) for s, d in self.links)
            if not links:
                raise ValueError("links must be None or non-empty")
            for s, d in links:
                if s == d:
                    raise ValueError(f"loopback link ({s}, {d}) in jitter window")
            object.__setattr__(self, "links", links)


@dataclass(frozen=True)
class StallEvent:
    """GC-like hiccup: freeze a node's protocol thread(s) for
    ``duration`` seconds starting at ``at``.

    ``scope="predicate"`` freezes only the predicate/polling thread;
    ``scope="node"`` also freezes the failure detector — a full
    stop-the-world pause of the node's protocol engine.
    """

    at: float
    node: int
    duration: float
    scope: str = "predicate"
    kind: str = field(default="stall", init=False)

    def __post_init__(self):
        _check_time("at", self.at)
        if self.duration <= 0:
            raise ValueError("stall duration must be positive")
        if self.scope not in STALL_SCOPES:
            raise ValueError(f"unknown stall scope {self.scope!r}")


@dataclass(frozen=True)
class CrashEvent:
    """Crash-stop a node at ``at``; optionally bring its NIC back at
    ``restart_at`` (protocol re-admission still happens at an epoch
    boundary via ``Cluster.install_view`` — see docs/FAULTS.md)."""

    at: float
    node: int
    restart_at: Optional[float] = None
    kind: str = field(default="crash", init=False)

    def __post_init__(self):
        _check_time("at", self.at)
        if self.restart_at is not None and self.restart_at <= self.at:
            raise ValueError("restart_at must be after at")


#: Storage fault modes (docs/DURABILITY.md): ``torn-append`` arms the
#: node's devices so crashes tear (partially persist) the un-fsynced
#: tail; ``fsync-stall`` holds fsync completions until ``until``;
#: ``corrupt-device`` flips a byte in durable record ``record_index``
#: so reopen CRC-truncates the device there.
STORAGE_FAULT_MODES = ("torn-append", "fsync-stall", "corrupt-device")


@dataclass(frozen=True)
class StorageFaultEvent:
    """Inject a stable-storage failure mode on one node at ``at``.

    ``device`` restricts the fault to one named device (e.g. ``"sg0"``
    or ``"paxos0"``); None hits every device the node owns. Faults
    never change timing or contents on their own — they arm the device,
    and the damage manifests through the normal write/fsync/crash/
    reopen paths (docs/DURABILITY.md)."""

    at: float
    node: int
    mode: str
    device: Optional[str] = None
    #: fsync-stall only: completions held until this simulated instant.
    until: Optional[float] = None
    #: torn-append only: how many subsequent crashes tear (default 1).
    count: int = 1
    #: corrupt-device only: which durable record to corrupt.
    record_index: int = 0
    kind: str = field(default="storage-fault", init=False)

    def __post_init__(self):
        _check_time("at", self.at)
        if self.mode not in STORAGE_FAULT_MODES:
            raise ValueError(f"unknown storage fault mode {self.mode!r}")
        if self.mode == "fsync-stall":
            if self.until is None:
                raise ValueError("fsync-stall needs an until instant")
            _check_time("until", self.until)
            if self.until <= self.at:
                raise ValueError("until must be after at")
        if self.count < 1:
            raise ValueError("count must be positive")
        if self.record_index < 0:
            raise ValueError("record_index must be non-negative")


_EVENT_TYPES = {
    "partition": PartitionEvent,
    "sever": SeverEvent,
    "jitter": JitterEvent,
    "stall": StallEvent,
    "crash": CrashEvent,
    "storage-fault": StorageFaultEvent,
}

FaultEvent = Any  # union of the five event dataclasses (3.9-compatible alias)


@dataclass
class FaultSchedule:
    """A seed plus an ordered list of fault events; JSON round-trippable."""

    seed: int = 0
    events: List[FaultEvent] = field(default_factory=list)

    def add(self, event: FaultEvent) -> "FaultSchedule":
        """Append a validated event (chainable)."""
        if type(event) not in _EVENT_TYPES.values():
            raise TypeError(f"not a fault event: {event!r}")
        self.events.append(event)
        return self

    # ------------------------------------------------------------- serialize

    def to_dict(self) -> Dict[str, Any]:
        events = []
        for event in self.events:
            d = asdict(event)
            d["kind"] = event.kind
            events.append(d)
        return {"version": SCHEMA_VERSION, "seed": self.seed, "events": events}

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSchedule":
        version = data.get("version", SCHEMA_VERSION)
        if version != SCHEMA_VERSION:
            raise ValueError(f"unsupported schedule version {version!r}")
        schedule = cls(seed=int(data.get("seed", 0)))
        for entry in data.get("events", []):
            entry = dict(entry)
            kind = entry.pop("kind", None)
            event_cls = _EVENT_TYPES.get(kind)
            if event_cls is None:
                raise ValueError(f"unknown fault event kind {kind!r}")
            # JSON turns tuples into lists; the dataclass validators
            # normalize node containers back to tuples.
            if "links" in entry and entry["links"] is not None:
                entry["links"] = tuple(tuple(link) for link in entry["links"])
            if "groups" in entry:
                entry["groups"] = tuple(tuple(g) for g in entry["groups"])
            schedule.add(event_cls(**entry))
        return schedule

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        return cls.from_dict(json.loads(text))

    def __len__(self) -> int:
        return len(self.events)

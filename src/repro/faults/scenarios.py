"""Named chaos scenarios: seeded fault campaigns with built-in checks.

Each scenario builds a cluster, arms a :class:`FaultSchedule` through the
cluster's :class:`~repro.faults.plane.FaultPlane`, runs a workload, and
returns a :class:`ScenarioResult` whose ``ok``/``problems`` fields encode
the protocol invariants the run must uphold (identical survivor delivery
logs, view agreement, quiescence, minority stall — docs/FAULTS.md).

Everything is deterministic in ``(scenario, seed)``: the cluster seed,
the schedule seed, and the fault plane's RNG all derive from the one
``seed`` argument, so ``run_scenario(name, seed)`` executed twice yields
byte-identical delivery logs and trace fingerprints — that property is
pinned by tests/test_chaos_determinism.py and re-checked on every
``spindle-repro chaos`` invocation via ``--repeat``.

    from repro.faults.scenarios import run_scenario, SCENARIOS
    result = run_scenario("partition-heal", seed=7)
    assert result.ok, result.problems
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..sim.units import ms, us

__all__ = ["ScenarioResult", "SCENARIOS", "run_scenario", "scenario_names"]


@dataclass
class ScenarioResult:
    """Outcome of one chaos scenario run (JSON-friendly via ``to_dict``)."""

    name: str
    seed: int
    ok: bool
    problems: List[str]
    duration: float
    delivered: Dict[int, int]
    #: sha256 over every node's ordered delivery log — the replay pin.
    log_digest: str
    #: sha256 over the full protocol event timeline (Tracer.fingerprint).
    trace_fingerprint: str
    drops_by_reason: Dict[str, int]
    fault_counters: Dict[str, int]
    #: node -> list of installed successor-view member tuples.
    views: Dict[int, List[Tuple[int, ...]]]
    schedule_json: str
    notes: List[str] = field(default_factory=list)
    #: Black-box linearizability audit (repro.analysis.linearize), for
    #: scenarios that drive a KV/shard workload; None when not audited.
    linearizability: Optional[dict] = None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "ok": self.ok,
            "problems": self.problems,
            "duration": self.duration,
            "delivered": {str(k): v for k, v in self.delivered.items()},
            "log_digest": self.log_digest,
            "trace_fingerprint": self.trace_fingerprint,
            "drops_by_reason": self.drops_by_reason,
            "fault_counters": self.fault_counters,
            "views": {str(k): [list(m) for m in v]
                      for k, v in self.views.items()},
            "schedule_json": self.schedule_json,
            "notes": self.notes,
            "linearizability": self.linearizability,
        }


class _Harness:
    """Shared scenario scaffolding: cluster + logs + views + tracer."""

    def __init__(self, num_nodes: int, seed: int, *,
                 membership: Optional[dict] = None,
                 count: int = 0, size: int = 512, window: int = 10,
                 persistent: bool = False):
        from ..analysis.trace import Tracer
        from ..core.config import SpindleConfig
        from ..workloads import Cluster, continuous_sender

        self.cluster = Cluster(num_nodes=num_nodes,
                               config=SpindleConfig.optimized(), seed=seed)
        self.cluster.add_subgroup(message_size=size, window=window,
                                  persistent=persistent)
        if membership is not None:
            self.cluster.enable_membership(**membership)
        self.cluster.build()
        self.logs: Dict[int, List[tuple]] = {
            nid: [] for nid in self.cluster.node_ids}
        self.views: Dict[int, List[Tuple[int, ...]]] = {
            nid: [] for nid in self.cluster.node_ids}
        for nid in self.cluster.node_ids:
            self.cluster.group(nid).on_delivery(
                0, lambda d, nid=nid: self.logs[nid].append(
                    (d.seq, d.sender, d.size)))
            if membership is not None:
                self.cluster.group(nid).membership.on_new_view.append(
                    lambda v, nid=nid: self.views[nid].append(v.members))
        self.tracer = Tracer(self.cluster)
        self.tracer.attach()
        if count:
            for nid in self.cluster.node_ids:
                self.cluster.spawn_sender(continuous_sender(
                    self.cluster.mc(nid, 0), count=count, size=size))
        self.count = count
        self.size = size

    # ---------------------------------------------------------- multi-epoch

    def track_epochs(self) -> None:
        """Keep the delivery-log and view recorders alive across epoch
        restarts (groups are rebuilt per view, so the hooks registered
        at build time die with the first view — recovery scenarios span
        several). Registered *after* build, so the initial view (whose
        install already fired) is not double-hooked."""
        def rewire(_view) -> None:
            for nid, group in self.cluster.groups.items():
                log = self.logs.setdefault(nid, [])
                group.on_delivery(
                    0, lambda d, log=log: log.append(
                        (d.seq, d.sender, d.size)))
                if group.membership is not None:
                    views = self.views.setdefault(nid, [])
                    group.membership.on_new_view.append(
                        lambda v, views=views: views.append(v.members))

        self.cluster.on_view_installed.append(rewire)

    # ------------------------------------------------------------- reporting

    def log_digest(self) -> str:
        h = hashlib.sha256()
        for nid in sorted(self.logs):
            h.update(f"node {nid}:{self.logs[nid]!r}\n".encode())
        return h.hexdigest()

    def result(self, name: str, seed: int, problems: List[str],
               notes: Optional[List[str]] = None) -> ScenarioResult:
        cluster = self.cluster
        return ScenarioResult(
            name=name, seed=seed, ok=not problems, problems=problems,
            duration=cluster.sim.now,
            delivered={nid: len(log) for nid, log in self.logs.items()},
            log_digest=self.log_digest(),
            trace_fingerprint=self.tracer.fingerprint(),
            drops_by_reason=cluster.fabric.drops_by_reason(),
            fault_counters=cluster.faults.counters(),
            views=dict(self.views),
            schedule_json=cluster.faults.schedule.to_json(),
            notes=notes or [],
        )

    # --------------------------------------------------------------- checks

    def check_all_delivered(self, problems: List[str],
                            nodes: Optional[List[int]] = None,
                            expected: Optional[int] = None) -> None:
        nodes = nodes if nodes is not None else list(self.cluster.node_ids)
        expected = (expected if expected is not None
                    else self.count * len(self.cluster.node_ids))
        for nid in nodes:
            if len(self.logs[nid]) != expected:
                problems.append(
                    f"node {nid} delivered {len(self.logs[nid])}/{expected}")

    def check_logs_identical(self, problems: List[str],
                             nodes: List[int]) -> None:
        reference = self.logs[nodes[0]]
        for nid in nodes[1:]:
            if self.logs[nid] != reference:
                problems.append(
                    f"delivery logs diverge: node {nodes[0]} vs node {nid} "
                    f"({len(reference)} vs {len(self.logs[nid])} entries)")

    def check_views(self, problems: List[str], nodes: List[int],
                    expected_members: Tuple[int, ...]) -> None:
        for nid in nodes:
            if not self.views[nid]:
                problems.append(f"node {nid} installed no successor view")
            elif self.views[nid][-1] != expected_members:
                problems.append(
                    f"node {nid} installed view {self.views[nid][-1]}, "
                    f"expected {expected_members}")

    def check_no_view_change(self, problems: List[str]) -> None:
        for nid, installed in self.views.items():
            if installed:
                problems.append(
                    f"node {nid} installed unexpected view {installed[-1]}")


# ===========================================================================
# The catalog
# ===========================================================================


def scenario_partition_heal(seed: int) -> ScenarioResult:
    """Transient symmetric partition that heals inside the confirmation
    grace window: RC-buffered writes redeliver, local suspicions rescind
    (false alarms, no published flags), no view change, and every node
    still delivers every message in the same order."""
    h = _Harness(4, seed, count=60, membership=dict(
        heartbeat_period=us(100), suspicion_timeout=us(500),
        confirmation_grace=us(600)))
    h.cluster.faults.partition([[0, 1], [2, 3]],
                               at=ms(1), heal_at=ms(1.8), mode="buffer")
    h.cluster.run(until=ms(60))
    problems: List[str] = []
    h.check_no_view_change(problems)
    h.check_all_delivered(problems)
    h.check_logs_identical(problems, list(h.cluster.node_ids))
    if h.cluster.faults.heals != 1:
        problems.append("partition never healed")
    if h.cluster.faults.writes_redelivered == 0:
        problems.append("no writes were buffered across the cut")
    alarms = sum(
        sum(h.cluster.group(n).membership.false_alarms.values())
        for n in h.cluster.node_ids)
    notes = [f"false alarms rescinded: {alarms}",
             f"writes redelivered: {h.cluster.faults.writes_redelivered}"]
    return h.result("partition-heal", seed, problems, notes)


def scenario_partition_majority(seed: int) -> ScenarioResult:
    """Hard partition (retry budget exhausted, mode='drop') that never
    heals: the majority side confirms its suspicions and installs a
    successor view excluding the minority; the minority wedges and
    stalls (no quorum) instead of electing a split-brain view."""
    h = _Harness(5, seed, count=40, membership=dict(
        heartbeat_period=us(100), suspicion_timeout=us(500),
        confirmation_grace=us(500)))
    h.cluster.faults.partition([[0, 1, 2], [3, 4]], at=ms(1), mode="drop")
    h.cluster.run(until=ms(60))
    problems: List[str] = []
    h.check_views(problems, [0, 1, 2], (0, 1, 2))
    h.check_logs_identical(problems, [0, 1, 2])
    for nid in (3, 4):
        svc = h.cluster.group(nid).membership
        if h.views[nid]:
            problems.append(f"minority node {nid} installed a view "
                            f"(split brain): {h.views[nid][-1]}")
        if not svc.minority_stalled:
            problems.append(f"minority node {nid} is not stalled "
                            f"(wedged={svc.wedged})")
    drops = h.cluster.fabric.drops_by_reason()
    if drops.get("partition", 0) == 0:
        problems.append("no writes were dropped by the partition")
    return h.result("partition-majority", seed, problems)


def scenario_jitter_storm(seed: int) -> ScenarioResult:
    """Cluster-wide latency degradation (extra latency + uniform jitter
    on every link) while all nodes stream: atomic multicast must still
    deliver everything, identically ordered, and the run must quiesce."""
    h = _Harness(4, seed, count=80)
    h.cluster.faults.jitter(until=ms(20), extra_latency=us(2),
                            jitter=us(6), at=0.0)
    try:
        h.cluster.run_to_quiescence(max_time=2.0)
    except RuntimeError as exc:
        h.cluster.run()
        return h.result("jitter-storm", seed, [f"no quiescence: {exc}"])
    problems: List[str] = []
    h.check_all_delivered(problems)
    h.check_logs_identical(problems, list(h.cluster.node_ids))
    return h.result("jitter-storm", seed, problems)


def scenario_sender_stall(seed: int) -> ScenarioResult:
    """GC-like hiccup: one node's whole protocol engine (predicate
    thread + failure detector) freezes for 800 us mid-stream. Its
    heartbeat goes stale past the suspicion timeout but resumes inside
    the grace window, so the suspicion is rescinded (with backoff) and
    the workload completes with no view change."""
    h = _Harness(4, seed, count=60, membership=dict(
        heartbeat_period=us(100), suspicion_timeout=us(500),
        confirmation_grace=us(700)))
    h.cluster.faults.stall(2, duration=us(800), at=ms(1), scope="node")
    h.cluster.faults.stall(2, duration=us(400), at=ms(4),
                           scope="predicate")
    h.cluster.run(until=ms(60))
    problems: List[str] = []
    h.check_no_view_change(problems)
    h.check_all_delivered(problems)
    h.check_logs_identical(problems, list(h.cluster.node_ids))
    counters = h.cluster.faults.counters()
    if counters["stalls_finished"] != 2:
        problems.append(f"expected 2 finished stalls, "
                        f"got {counters['stalls_finished']}")
    return h.result("sender-stall", seed, problems)


def scenario_leader_crash(seed: int) -> ScenarioResult:
    """Crash the rank-0 leader mid-stream: survivors detect, wedge,
    ragged-trim, and the next live member leads the reconfiguration.
    Every survivor installs the same successor view and holds an
    identical delivery log (virtual synchrony)."""
    h = _Harness(4, seed, count=150, window=8, membership=dict(
        heartbeat_period=us(100), suspicion_timeout=us(500)))
    h.cluster.faults.crash(0, at=ms(1))
    h.cluster.run(until=ms(80))
    problems: List[str] = []
    h.check_views(problems, [1, 2, 3], (1, 2, 3))
    h.check_logs_identical(problems, [1, 2, 3])
    if h.cluster.faults.crashes != 1:
        problems.append("crash event did not fire")
    return h.result("leader-crash", seed, problems)


def scenario_crash_restart(seed: int) -> ScenarioResult:
    """Crash a node and revive its NIC later: the old view has already
    reconfigured around it (protocol re-admission happens at an epoch
    boundary, docs/FAULTS.md), so the restart must not perturb the
    survivors' agreement — it only flips the NIC back to alive."""
    h = _Harness(4, seed, count=100, window=8, membership=dict(
        heartbeat_period=us(100), suspicion_timeout=us(500)))
    h.cluster.faults.crash(3, at=ms(1), restart_at=ms(40))
    h.cluster.run(until=ms(80))
    problems: List[str] = []
    h.check_views(problems, [0, 1, 2], (0, 1, 2))
    h.check_logs_identical(problems, [0, 1, 2])
    counters = h.cluster.faults.counters()
    if counters["restarts"] != 1:
        problems.append("restart event did not fire")
    if not h.cluster.fabric.nodes[3].alive:
        problems.append("node 3's NIC was not revived")
    return h.result("crash-restart", seed, problems)


def _wire_kv_epochs(h: _Harness, stores: dict, *,
                    puts_per_writer: int, value_pad: int,
                    writer_gap: float, recorder=None) -> None:
    """Attach a replicated KV store (apps.kvstore) to subgroup 0 of
    every member and spawn one epoch-tagged writer per member on every
    installed view (the initial view included).

    Recovery scenarios cannot use ``continuous_sender`` — a wedged epoch
    would raise out of it — so each writer issues a bounded burst of
    PUTs with unique per-(view, node) keys and stops cleanly when the
    epoch wedges under it. Stores are *rebound* across epochs (replica
    state carries over, per-epoch waiters are dropped); a node first
    seen in a later view (the rejoiner) gets a fresh store, which the
    recovery applier then rebuilds from the durable log.
    """
    from ..apps.kvstore import attach_store

    cluster = h.cluster

    def writer(store, view_id: int, nid: int):
        try:
            for i in range(puts_per_writer):
                key = b"k%d.%d.%d" % (view_id, nid, i)
                value = (b"v%d.%d.%d" % (view_id, nid, i)).ljust(
                    value_pad, b".")
                # History recording is passive (plain list appends, no
                # sim events) — a wedge leaves the op pending, which is
                # exactly what the auditor's semantics want.
                op = (None if recorder is None else recorder.invoke(
                    nid, "put", key, value, cluster.sim.now))
                yield from store.put(key, value)
                if op is not None:
                    recorder.complete(op, cluster.sim.now)
                yield writer_gap
        except RuntimeError:
            return  # epoch wedged mid-write: the view change wins

    def start_epoch(view) -> None:
        for nid, group in cluster.groups.items():
            store = stores.get(nid)
            if store is None:
                stores[nid] = store = attach_store(group, 0)
            else:
                store.rebind(group.subgroup(0))
                group.on_delivery(0, store.apply)
            cluster.spawn_sender(writer(store, view.view_id, nid),
                                 name=f"kv-writer-v{view.view_id}-n{nid}")

    cluster.on_view_installed.append(start_epoch)
    start_epoch(cluster.view)


def _kv_final_reads(cluster, stores: dict, recorder) -> None:
    """Synthetic end-of-run audit reads: observe every written key on
    every replica, so replica state enters the recorded history (the
    auditor can only judge what was observed). All reads share one
    instant — concurrent with each other, but strictly after every
    completed write."""
    keys = sorted({op.key for op in recorder.history()
                   if op.kind == "put"})
    at = cluster.sim.now
    live = set(cluster.live_nodes())
    for nid in sorted(stores):
        if nid not in live:
            continue  # a corpse's store is legitimately stale
        data = stores[nid].data
        for key in keys:
            recorder.record_read(1000 + nid, key, data.get(key), at)


def _finish_audit(problems: List[str], notes: List[str],
                  recorder) -> dict:
    """Run the auditor's seeded-violation self-test, then the real
    check; fold violations into the scenario verdict."""
    from ..analysis.linearize import check_recorder, selftest

    selftest_ok, _ = selftest()
    if not selftest_ok:
        problems.append("linearizability auditor failed its self-test")
    report = check_recorder(recorder)
    if not report.ok:
        problems.extend(
            f"linearizability: {v}" for v in report.violations[:5])
    notes.append(
        f"linearizability: {report.ops_checked} ops / "
        f"{report.keys_checked} keys ({report.pending_ops} pending): "
        f"{'ok' if report.ok else 'VIOLATION'}")
    return report.to_dict()


def _kv_rebuild_applier(stores: dict):
    """Recovery applier: wipe the rejoiner's (volatile, crash-lost) KV
    state and replay the complete durable log through the pure
    state-transition path."""
    def rebuild(node: int, entries) -> None:
        store = stores[node]
        store.data.clear()
        for _seq, _sender, payload in entries:
            store.apply_command(payload)
    return rebuild


def scenario_crash_restart_rejoin(seed: int) -> ScenarioResult:
    """Full crash-recovery loop (docs/RECOVERY.md): node 3 crash-stops
    at 1 ms and its NIC revives at 8 ms. The survivors reconfigure
    around it (view 1); on restart the recovery coordinator replays the
    node's durable log off its SSD, pulls the missed delta over the
    wire — with chunk 0's first attempt deterministically dropped, so
    the per-chunk timeout + exponential-backoff path is exercised —
    cuts a join epoch (wedge, settle, ``kind="join"`` trim, drain, tail
    sync) and installs view 2 with the node readmitted. The rejoiner's
    KV state must converge to a byte-identical checksum and the
    cross-view virtual-synchrony verifier must find zero violations."""
    from ..analysis.linearize import HistoryRecorder
    from ..recovery import RecoveryConfig, TransferConfig, VsyncVerifier

    h = _Harness(4, seed, size=256, window=8, persistent=True,
                 membership=dict(heartbeat_period=us(100),
                                 suspicion_timeout=us(500)))
    h.track_epochs()
    cluster = h.cluster
    stores: Dict[int, object] = {}
    recorder = HistoryRecorder()
    _wire_kv_epochs(h, stores, puts_per_writer=12, value_pad=24,
                    writer_gap=us(40), recorder=recorder)
    coord = cluster.enable_recovery(RecoveryConfig(
        transfer=TransferConfig(chunk_size=512, chunk_timeout=us(300),
                                drop_chunks=frozenset({0}))))
    coord.set_applier(0, _kv_rebuild_applier(stores))
    coord.set_checksum(0, lambda nid: stores[nid].checksum())
    verifier = VsyncVerifier(cluster)

    cluster.faults.crash(3, at=ms(1), restart_at=ms(8))
    cluster.run(until=ms(30))

    problems: List[str] = []
    counters = cluster.faults.counters()
    if counters["restarts"] != 1:
        problems.append("restart event did not fire")
    report = coord.reports.get(3)
    if report is None or not report.done:
        state = report.state if report is not None else "no report"
        extra = report.problems if report is not None else []
        problems.append(f"node 3 did not complete recovery "
                        f"(state={state}, {extra})")
    else:
        xfer = report.transfers.get(0)
        if xfer is None or not xfer.ok:
            problems.append("no successful delta transfer recorded")
        else:
            if xfer.injected_timeouts < 1:
                problems.append("injected chunk drop never fired")
            if xfer.timeouts < 1:
                problems.append("per-chunk timeout path was not exercised")
            if xfer.backoff_total <= 0.0:
                problems.append("no backoff delay was accumulated")
        if report.replayed.get(0, 0) <= 0:
            problems.append("rejoiner replayed nothing from its durable log")
        if report.fetched.get(0, 0) <= 0:
            problems.append("no delta entries moved over the wire")
        if report.checksum_ok.get(0) is not True:
            problems.append(f"post-rejoin checksum validation failed "
                            f"({report.checksum_ok.get(0)})")
        if report.rejoin_view_id is None or report.rejoin_view_id < 2:
            problems.append(f"rejoin view {report.rejoin_view_id} is not "
                            f"a later view")
    if cluster.view.members != (0, 1, 2, 3):
        problems.append(f"final view {cluster.view.members} does not "
                        f"readmit node 3")
    elif cluster.view.view_id < 2:
        problems.append(f"final view id {cluster.view.view_id} < 2")
    sums = {nid: stores[nid].checksum() for nid in sorted(stores)}
    if len(set(sums.values())) != 1:
        problems.append(f"replica checksums diverge after rejoin: {sums}")
    vs = verifier.check()
    if not vs.ok:
        problems.extend(f"vsync {v}" for v in vs.violations[:5])
    if len(verifier.views) < 3:
        problems.append(f"expected >=2 view changes, saw views "
                        f"{sorted(verifier.views)}")
    notes = []
    if report is not None and report.done:
        xfer = report.transfers[0]
        notes = [f"replayed {report.replayed[0]} entries, fetched "
                 f"{report.fetched[0]} over {xfer.chunks} chunks",
                 f"timeouts {xfer.timeouts} (injected "
                 f"{xfer.injected_timeouts}), backoff "
                 f"{xfer.backoff_total * 1e6:.0f} us",
                 f"vsync: {vs.deliveries_checked} deliveries over "
                 f"{vs.epochs_checked} epochs"]
    _kv_final_reads(cluster, stores, recorder)
    lin = _finish_audit(problems, notes, recorder)
    res = h.result("crash-restart-rejoin", seed, problems, notes)
    res.linearizability = lin
    return res


def scenario_mid_transfer_source_crash(seed: int) -> ScenarioResult:
    """Recovery under fire: node 4 crashes at 1 ms and revives at 6 ms;
    its state transfer is stretched (small chunks + inter-chunk gap) so
    that node 0 — the transfer source — crash-stops at 8 ms mid-stream.
    The transfer must fail over to the next live source and restart
    from chunk 0 (no cross-source splicing), while the concurrent
    failure view change (view 2 excludes node 0) races the join cut.
    Node 4 must still rejoin, converge, and the verifier must hold
    across all three view transitions."""
    from ..analysis.linearize import HistoryRecorder
    from ..recovery import RecoveryConfig, TransferConfig, VsyncVerifier

    h = _Harness(5, seed, size=256, window=8, persistent=True,
                 membership=dict(heartbeat_period=us(100),
                                 suspicion_timeout=us(500)))
    h.track_epochs()
    cluster = h.cluster
    stores: Dict[int, object] = {}
    recorder = HistoryRecorder()
    _wire_kv_epochs(h, stores, puts_per_writer=18, value_pad=48,
                    writer_gap=us(40), recorder=recorder)
    coord = cluster.enable_recovery(RecoveryConfig(
        transfer=TransferConfig(chunk_size=256, chunk_timeout=us(250),
                                inter_chunk_gap=us(100))))
    coord.set_applier(0, _kv_rebuild_applier(stores))
    coord.set_checksum(0, lambda nid: stores[nid].checksum())
    verifier = VsyncVerifier(cluster)

    cluster.faults.crash(4, at=ms(1), restart_at=ms(6))
    cluster.faults.crash(0, at=ms(8))
    cluster.run(until=ms(40))

    problems: List[str] = []
    counters = cluster.faults.counters()
    if counters["crashes"] != 2:
        problems.append(f"expected 2 crashes, got {counters['crashes']}")
    if counters["restarts"] != 1:
        problems.append("restart event did not fire")
    report = coord.reports.get(4)
    if report is None or not report.done:
        state = report.state if report is not None else "no report"
        extra = report.problems if report is not None else []
        problems.append(f"node 4 did not complete recovery "
                        f"(state={state}, {extra})")
    else:
        xfer = report.transfers.get(0)
        if xfer is None or not xfer.ok:
            problems.append("no successful delta transfer recorded")
        else:
            if xfer.failovers < 1:
                problems.append("source crash did not force a failover")
            if len(xfer.sources_used) < 2:
                problems.append(f"transfer used sources "
                                f"{xfer.sources_used}, expected >=2")
            if xfer.source == 0:
                problems.append("transfer claims completion from the "
                                "crashed source")
        if report.checksum_ok.get(0) is not True:
            problems.append(f"post-rejoin checksum validation failed "
                            f"({report.checksum_ok.get(0)})")
    if cluster.view.members != (1, 2, 3, 4):
        problems.append(f"final view {cluster.view.members}, expected "
                        f"node 0 out and node 4 readmitted")
    sums = {nid: stores[nid].checksum() for nid in (1, 2, 3, 4)}
    if len(set(sums.values())) != 1:
        problems.append(f"survivor/rejoiner checksums diverge: {sums}")
    vs = verifier.check()
    if not vs.ok:
        problems.extend(f"vsync {v}" for v in vs.violations[:5])
    if len(verifier.views) < 3:
        problems.append(f"expected >=2 view changes, saw views "
                        f"{sorted(verifier.views)}")
    notes = []
    if report is not None and report.done:
        xfer = report.transfers[0]
        notes = [f"failovers {xfer.failovers}, sources {xfer.sources_used}, "
                 f"cut retries {report.cut_retries}",
                 f"fetched {report.fetched.get(0, 0)} entries over "
                 f"{xfer.chunks} chunks after failover",
                 f"vsync: {vs.deliveries_checked} deliveries over "
                 f"{vs.epochs_checked} epochs"]
    _kv_final_reads(cluster, stores, recorder)
    lin = _finish_audit(problems, notes, recorder)
    res = h.result("mid-transfer-source-crash", seed, problems, notes)
    res.linearizability = lin
    return res


# ===========================================================================
# Durability-plane scenarios (docs/DURABILITY.md)
# ===========================================================================


def _durability_watermark(h: _Harness) -> List[int]:
    """Track the highest acknowledged-durable sequence number:
    ``on_durable`` fires only for entries fsynced on *every* member,
    so ``acked[0]`` is exactly the prefix the power-loss zero-loss
    contract covers."""
    acked = [-1]
    for nid in h.cluster.node_ids:
        h.cluster.group(nid).on_durable(
            0, lambda w: acked.__setitem__(0, max(acked[0], w)))
    return acked


def _check_power_loss_logs(h: _Harness, problems: List[str],
                           acked_seq: int) -> None:
    """Every member's recovered durable log must contain every
    acknowledged seq, and all logs must be identical (post-adoption)."""
    logs: Dict[int, list] = {}
    for nid in h.cluster.node_ids:
        entries, _log_bytes = h.cluster.durable_log(nid, 0)
        logs[nid] = entries
        seqs = {e[0] for e in entries}
        missing = [s for s in range(acked_seq + 1) if s not in seqs]
        if missing:
            problems.append(
                f"node {nid} lost acknowledged entries {missing[:5]} "
                f"(acked through seq {acked_seq})")
    first = h.cluster.node_ids[0]
    for nid in h.cluster.node_ids[1:]:
        if logs[nid] != logs[first]:
            problems.append(f"recovered durable logs diverge: "
                            f"node {first} vs node {nid}")


def scenario_power_loss(seed: int) -> ScenarioResult:
    """Whole-cluster power loss mid-stream: every node crash-stops in
    the same instant (write caches die — un-fsynced tails are gone;
    fsynced bytes survive), the lights come back, and storage-only
    recovery (:func:`repro.recovery.recover_power_loss`) reopens every
    device, reconciles longest-log-wins, and installs the successor
    view. The contract: every entry whose durability watermark fired
    (fsynced on ALL members) is in every recovered log — un-fsynced
    tail entries may vanish, they were never acknowledged."""
    from ..recovery import recover_power_loss

    h = _Harness(4, seed, count=120, size=256, window=8, persistent=True)
    h.track_epochs()
    cluster = h.cluster
    acked = _durability_watermark(h)
    for nid in cluster.node_ids:
        cluster.faults.crash(nid, at=us(500))
    reports: List = []

    def driver():
        yield ms(2)
        report = yield from recover_power_loss(cluster)
        reports.append(report)

    cluster.spawn_sender(driver(), name="powerloss-recovery")
    cluster.run(until=ms(8))

    problems: List[str] = []
    if cluster.faults.counters()["crashes"] != 4:
        problems.append("not every node crashed")
    if not reports:
        problems.append("power-loss recovery never completed")
        return h.result("power-loss", seed, problems)
    report = reports[0]
    if not report.ok:
        problems.extend(f"recovery: {p}" for p in report.problems[:5])
    if acked[0] < 0:
        problems.append("no durability watermark advanced before the "
                        "crash (the run proves nothing)")
    if cluster.view.view_id != 1:
        problems.append(f"successor view not installed "
                        f"(view_id={cluster.view.view_id})")
    _check_power_loss_logs(h, problems, acked[0])
    storage = cluster.storage.counters()
    notes = [f"acked through seq {acked[0]}, adopted "
             f"{report.adopted.get(0, 0)} entries (top seq "
             f"{report.adopted_seq.get(0, -1)})",
             f"lost un-fsynced records {storage['lost_tail_records']}, "
             f"disk replay cost {report.read_cost * 1e6:.0f} us"]
    return h.result("power-loss", seed, problems, notes)


def scenario_torn_write(seed: int) -> ScenarioResult:
    """Power loss with hostile storage: fsync completions stall
    cluster-wide (writes pile up volatile), every device is armed to
    *tear* on the crash (a partial frame reaches the platter), then the
    whole cluster loses power mid-stream. Recovery's CRC scan must
    truncate each torn tail, and the zero-acknowledged-loss contract
    must still hold — the stall froze the durability watermark early,
    so everything past it was never acknowledged and is legitimately
    discardable."""
    from ..recovery import recover_power_loss

    h = _Harness(4, seed, count=120, size=256, window=8, persistent=True)
    h.track_epochs()
    cluster = h.cluster
    acked = _durability_watermark(h)
    for nid in cluster.node_ids:
        cluster.faults.storage_fault(nid, "fsync-stall", at=us(600),
                                     until=ms(1.5), device="sg0")
        cluster.faults.storage_fault(nid, "torn-append", at=us(700),
                                     device="sg0")
        cluster.faults.crash(nid, at=ms(1))
    reports: List = []

    def driver():
        yield ms(2)
        report = yield from recover_power_loss(cluster)
        reports.append(report)

    cluster.spawn_sender(driver(), name="powerloss-recovery")
    cluster.run(until=ms(8))

    problems: List[str] = []
    if not reports:
        problems.append("power-loss recovery never completed")
        return h.result("torn-write", seed, problems)
    report = reports[0]
    if not report.ok:
        problems.extend(f"recovery: {p}" for p in report.problems[:5])
    storage = cluster.storage.counters()
    if storage["torn_writes"] < 1:
        problems.append("no crash actually tore a tail (fault armed "
                        "but no volatile frame was pending)")
    if cluster.faults.counters()["storage_faults"] != 8:
        problems.append(f"expected 8 storage faults armed, got "
                        f"{cluster.faults.counters()['storage_faults']}")
    if acked[0] < 0:
        problems.append("no durability watermark advanced before the "
                        "fsync stall")
    _check_power_loss_logs(h, problems, acked[0])
    notes = [f"torn tails {storage['torn_writes']}, records CRC-dropped "
             f"at reopen {report.dropped_on_reopen}, lost un-fsynced "
             f"{storage['lost_tail_records']}",
             f"acked through seq {acked[0]}, adopted "
             f"{report.adopted.get(0, 0)} entries"]
    return h.result("torn-write", seed, problems, notes)


# ===========================================================================
# Multi-Paxos backend scenarios (docs/ORDERING.md)
# ===========================================================================


class _PaxosHarness(_Harness):
    """Scenario scaffolding for ``Cluster(backend="paxos")``.

    No membership plane (the backend masks failures internally via
    leader change), so views stay empty; a restarted node re-learns the
    whole log from instance 0, so its delivery log is reset at the
    restart event — the recorded log is then the post-recovery replay,
    comparable entry-for-entry with the survivors'.
    """

    def __init__(self, num_nodes: int, seed: int, *, count: int,
                 senders: Optional[List[int]] = None, size: int = 512,
                 window: int = 8, send_gap: float = 0.0,
                 paxos_config=None):
        from ..analysis.trace import Tracer
        from ..core.config import SpindleConfig
        from ..workloads import Cluster, continuous_sender

        backend = "paxos"
        if paxos_config is not None:
            from ..ordering.paxos import PaxosBackend
            backend = PaxosBackend(paxos_config)
        self.cluster = Cluster(num_nodes=num_nodes,
                               config=SpindleConfig.optimized(), seed=seed,
                               backend=backend)
        sender_ids = senders if senders is not None else self.cluster.node_ids
        self.cluster.add_subgroup(senders=sender_ids, message_size=size,
                                  window=window)
        self.cluster.build()
        self.logs: Dict[int, List[tuple]] = {
            nid: [] for nid in self.cluster.node_ids}
        self.views: Dict[int, List[Tuple[int, ...]]] = {
            nid: [] for nid in self.cluster.node_ids}
        for nid in self.cluster.node_ids:
            self.cluster.group(nid).on_delivery(
                0, lambda d, nid=nid: self.logs[nid].append(
                    (d.seq, d.sender, d.size)))
        self.cluster.faults.on_restart.append(
            lambda node: self.logs[node].clear())
        self.tracer = Tracer(self.cluster)
        self.tracer.attach()
        for nid in sender_ids:
            self.cluster.spawn_sender(continuous_sender(
                self.cluster.mc(nid, 0), count=count, size=size,
                delay=send_gap))
        self.count = count
        self.size = size
        self.senders = list(sender_ids)

    def run(self, until: float) -> None:
        """Drive the run, then stop the standing timers (heartbeats
        never quiesce) and drain the event queue."""
        self.cluster.run(until=until)
        self.cluster.stop()
        self.cluster.run(until=until + ms(1))

    def leader_changes(self, observer: int) -> int:
        return self.cluster.mc(observer, 0).leader_changes


def scenario_paxos_leader_crash(seed: int) -> ScenarioResult:
    """Crash the Multi-Paxos leader (member 0, ballot 0) mid-stream: a
    follower's lease expires, it wins phase 1 with a higher ballot of
    its residue class, re-proposes the in-flight tail, and the
    survivors converge on identical gap-free logs — no membership
    plane, no view change: the quorum masks the failure."""
    h = _PaxosHarness(4, seed, count=30, senders=[1, 2, 3],
                      send_gap=us(50))
    h.cluster.faults.crash(0, at=ms(1))
    h.run(until=ms(40))
    problems: List[str] = []
    h.check_all_delivered(problems, nodes=[1, 2, 3],
                          expected=30 * 3)
    h.check_logs_identical(problems, [1, 2, 3])
    if h.cluster.faults.crashes != 1:
        problems.append("crash event did not fire")
    changes = h.leader_changes(1)
    if changes < 1:
        problems.append("no leader election happened despite the crash")
    new_leader = h.cluster.mc(1, 0).leader_member_rank()
    if new_leader == 0:
        problems.append("survivors still believe the crashed leader")
    notes = [f"leader changes at node 1: {changes}, "
             f"new leader member rank: {new_leader}"]
    return h.result("paxos-leader-crash", seed, problems, notes)


def scenario_paxos_partition_heal(seed: int) -> ScenarioResult:
    """Symmetric partition that splits the group into two minorities
    ({0,1} | {2,3}: neither holds a majority of 3): commits stall on
    both sides — consistency over availability — buffered writes
    redeliver at heal, client retransmits and (possibly dueling)
    elections resolve, and every node ends with the identical complete
    log."""
    h = _PaxosHarness(4, seed, count=25, send_gap=us(40))
    h.cluster.faults.partition([[0, 1], [2, 3]],
                               at=ms(1), heal_at=ms(4), mode="buffer")
    h.run(until=ms(60))
    problems: List[str] = []
    h.check_all_delivered(problems, expected=25 * 4)
    h.check_logs_identical(problems, list(h.cluster.node_ids))
    if h.cluster.faults.heals != 1:
        problems.append("partition never healed")
    if h.cluster.faults.writes_redelivered == 0:
        problems.append("no writes were buffered across the cut")
    notes = [f"writes redelivered: {h.cluster.faults.writes_redelivered}",
             f"leader changes at node 0: {h.leader_changes(0)}"]
    return h.result("paxos-partition-heal", seed, problems, notes)


def scenario_paxos_crash_restart_rejoin(seed: int) -> ScenarioResult:
    """Crash the leader, then power it back on: the survivors elect a
    new leader and keep committing; the restarted node comes back as a
    fresh-incarnation follower, learns the chosen log from instance 0
    (LEARN_REQ catch-up — no recovery coordinator involved), and
    replays it to an entry-for-entry copy of the survivors' logs."""
    h = _PaxosHarness(4, seed, count=30, senders=[1, 2, 3],
                      send_gap=us(50))
    h.cluster.faults.crash(0, at=ms(1), restart_at=ms(8))
    h.run(until=ms(60))
    problems: List[str] = []
    h.check_all_delivered(problems, expected=30 * 3)
    h.check_logs_identical(problems, list(h.cluster.node_ids))
    counters = h.cluster.faults.counters()
    if counters["restarts"] != 1:
        problems.append("restart event did not fire")
    if h.leader_changes(1) < 1:
        problems.append("no leader election happened despite the crash")
    if h.cluster.mc(0, 0).is_leader:
        problems.append("restarted node reclaimed leadership (it must "
                        "rejoin as a follower)")
    if h.cluster.mc(0, 0).incarnation != 1:
        problems.append(f"restarted node's incarnation is "
                        f"{h.cluster.mc(0, 0).incarnation}, expected 1")
    notes = [f"restarted node caught up {len(h.logs[0])} entries, "
             f"commit watermark {h.cluster.mc(0, 0).commit_upto}"]
    return h.result("paxos-crash-restart-rejoin", seed, problems, notes)


def scenario_power_loss_paxos(seed: int) -> ScenarioResult:
    """Whole-cluster power loss under the Multi-Paxos backend with
    durable acceptors (docs/ORDERING.md): the workload commits, every
    node crashes in the same window, and each restarts from its
    promise/accept WAL. The ordinary election + learn-from-zero path
    must reconstruct every committed entry — no recovery coordinator,
    no view change: a majority of durable accepts IS the truth, and
    every pre-crash delivery is an acknowledged write whose loss fails
    the scenario."""
    from ..ordering.paxos import PaxosConfig

    h = _PaxosHarness(3, seed, count=20, size=256, send_gap=us(30),
                      paxos_config=PaxosConfig(durable_acceptors=True))
    cluster = h.cluster
    pre_crash: Dict[int, List[tuple]] = {}

    def snapshot():
        yield ms(2) - us(1)
        for nid in cluster.node_ids:
            pre_crash[nid] = list(h.logs[nid])

    cluster.spawn_sender(snapshot(), name="pre-crash-snapshot")
    for i, nid in enumerate(cluster.node_ids):
        cluster.faults.crash(nid, at=ms(2) + i * us(1),
                             restart_at=ms(3) + i * us(10))
    h.run(until=ms(40))

    problems: List[str] = []
    counters = cluster.faults.counters()
    if counters["restarts"] != 3:
        problems.append(f"expected 3 restarts, got {counters['restarts']}")
    acked = set()
    for log in pre_crash.values():
        acked |= {(seq, sender) for seq, sender, _size in log}
    if not acked:
        problems.append("nothing was delivered before the outage")
    for nid in cluster.node_ids:
        have = {(seq, sender) for seq, sender, _size in h.logs[nid]}
        lost = acked - have
        if lost:
            problems.append(f"node {nid} lost {len(lost)} acknowledged "
                            f"entries after power loss "
                            f"(first: {sorted(lost)[:3]})")
    h.check_all_delivered(problems, expected=20 * 3)
    h.check_logs_identical(problems, list(cluster.node_ids))
    for nid in cluster.node_ids:
        if cluster.mc(nid, 0).incarnation < 1:
            problems.append(f"node {nid} did not bump its incarnation "
                            f"on WAL recovery")
    wal = cluster.storage.counters()
    notes = [f"pre-crash acked {len(acked)} distinct entries, final "
             f"log {len(h.logs[cluster.node_ids[0]])} entries per node",
             f"WAL fsyncs {wal['fsyncs']}, lost un-fsynced records "
             f"{wal['lost_tail_records']}"]
    return h.result("power-loss-paxos", seed, problems, notes)


# ===========================================================================
# Sharded service plane scenarios (docs/SHARDING.md)
# ===========================================================================


class _ShardHarness(_Harness):
    """Scenario scaffolding for the sharded service plane: builds the
    cluster through :meth:`Cluster.add_shards` (multiple disjoint
    subgroups) instead of one global subgroup, and records delivery
    logs on *every* plan subgroup as ``(sg, seq, sender, size)``."""

    def __init__(self, num_nodes: int, seed: int, *, num_shards: int,
                 replication: int, num_subgroups: Optional[int] = None,
                 membership: Optional[dict] = None, window: int = 16,
                 size: int = 256, persistent: bool = False):
        from ..analysis.trace import Tracer
        from ..core.config import SpindleConfig
        from ..workloads import Cluster

        self.cluster = Cluster(num_nodes=num_nodes,
                               config=SpindleConfig.optimized(), seed=seed)
        self.cluster.add_shards(num_shards=num_shards,
                                replication=replication,
                                num_subgroups=num_subgroups,
                                window=window, message_size=size)
        if membership is not None:
            self.cluster.enable_membership(**membership)
        self.cluster.build()
        self.subgroup_ids = list(self.cluster._shard_plan["subgroup_ids"])
        self.logs: Dict[int, List[tuple]] = {
            nid: [] for nid in self.cluster.node_ids}
        self.views: Dict[int, List[Tuple[int, ...]]] = {
            nid: [] for nid in self.cluster.node_ids}
        self._hook_epoch()
        self.tracer = Tracer(self.cluster)
        self.tracer.attach()
        self.count = 0
        self.size = size

    def _hook_epoch(self) -> None:
        """Register delivery/view recorders on the current epoch's
        groups (re-run from :meth:`track_epochs` after each install)."""
        for nid, group in self.cluster.groups.items():
            log = self.logs.setdefault(nid, [])
            for sg in self.subgroup_ids:
                if sg not in group.multicasts:
                    continue
                group.on_delivery(
                    sg, lambda d, log=log, sg=sg: log.append(
                        (sg, d.seq, d.sender, d.size)))
            if group.membership is not None:
                views = self.views.setdefault(nid, [])
                group.membership.on_new_view.append(
                    lambda v, views=views: views.append(v.members))

    def track_epochs(self) -> None:
        self.cluster.on_view_installed.append(
            lambda _view: self._hook_epoch())

    # --------------------------------------------------------------- checks

    def check_subgroup_logs_identical(self, problems: List[str]) -> None:
        """Per-subgroup virtual synchrony: every live member of a plan
        subgroup must hold the identical (sg-filtered) delivery log."""
        live = set(self.cluster.live_nodes())
        for spec in self.cluster.view.subgroups:
            if spec.subgroup_id not in self.subgroup_ids:
                continue
            members = [n for n in spec.members if n in live]
            if len(members) < 2:
                continue
            ref = [e for e in self.logs[members[0]]
                   if e[0] == spec.subgroup_id]
            for nid in members[1:]:
                mine = [e for e in self.logs[nid]
                        if e[0] == spec.subgroup_id]
                if mine != ref:
                    problems.append(
                        f"sg{spec.subgroup_id} delivery logs diverge: "
                        f"node {members[0]} vs node {nid} "
                        f"({len(ref)} vs {len(mine)} entries)")

    def check_census(self, problems: List[str], router,
                     expected: Dict[bytes, bytes]) -> None:
        """Every written key must hold its final value on every live
        replica of the subgroup its shard maps to."""
        live = set(self.cluster.live_nodes())
        specs = {sg.subgroup_id: sg for sg in self.cluster.view.subgroups}
        missing = 0
        for key in sorted(expected):
            sg = router.map.subgroup_of_key(key)
            spec = specs.get(sg)
            if spec is None:
                problems.append(f"key {key!r} maps to missing sg{sg}")
                continue
            for nid in spec.members:
                if nid not in live:
                    continue
                replica = router.service.replicas.get((sg, nid))
                if replica is None:
                    continue
                got = replica.data.get(key)
                if got != expected[key]:
                    missing += 1
                    if missing <= 3:
                        problems.append(
                            f"key {key!r} on node {nid} sg{sg}: "
                            f"{got!r} != {expected[key]!r}")
        if missing > 3:
            problems.append(f"... {missing} census mismatches total")


def _shard_clients(h: _ShardHarness, router, expected: Dict[bytes, bytes],
                   outcomes: List, *, clients: int, puts_per_client: int,
                   gap: float, value_pad: int = 24, recorder=None) -> None:
    """Spawn ``clients`` deterministic sequential writers against the
    router. Unlike raw subgroup senders these are *service* clients:
    rejections/timeouts surface as outcomes, and view changes are
    absorbed by the router's idempotent replay — so the client bodies
    never see a wedge RuntimeError."""
    sim = h.cluster.sim

    def client(c: int):
        for i in range(puts_per_client):
            key = b"c%d.k%d" % (c, i)
            value = (b"v%d.%d" % (c, i)).ljust(value_pad, b".")
            op = (None if recorder is None else recorder.invoke(
                c, "put", key, value, sim.now))
            outcome = yield from router.request("put", key, value)
            if op is not None:
                if outcome.status == "ok":
                    recorder.complete(op, sim.now)
                elif outcome.status == "rejected":
                    # Admission control refused it — the write never
                    # entered any log, so it has no history slot.
                    recorder.drop(op)
                # "timeout": pending — the effect may or may not land.
            outcomes.append((c, i, outcome.status, outcome.attempts,
                             outcome.shard))
            if outcome.status == "ok":
                expected[key] = value
            yield gap

    for c in range(clients):
        h.cluster.spawn_sender(client(c), name=f"shard-client-{c}")


def _shard_final_reads(h: _ShardHarness, router, recorder) -> None:
    """Synthetic end-of-run audit reads of every written key on every
    live replica of the subgroup the key's shard maps to."""
    keys = sorted({op.key for op in recorder.history()
                   if op.kind == "put"})
    live = set(h.cluster.live_nodes())
    specs = {sg.subgroup_id: sg for sg in h.cluster.view.subgroups}
    at = h.cluster.sim.now
    for key in keys:
        sg = router.map.subgroup_of_key(key)
        spec = specs.get(sg)
        if spec is None:
            continue
        for nid in spec.members:
            if nid not in live:
                continue
            replica = router.service.replicas.get((sg, nid))
            if replica is None:
                continue
            recorder.record_read(1000 + nid, key,
                                 replica.data.get(key), at)


def scenario_shard_failover(seed: int) -> ScenarioResult:
    """Kill a shard gateway under client load: node 0 — the gateway of
    subgroup 0, hosting half the shards — crash-stops mid-stream while
    open-loop-style clients keep writing through the router. The
    membership plane confirms the failure, the recovery plane installs
    the successor view, and the router must (a) re-derive the shard map
    for the committed view, (b) promote the next live sender to gateway,
    (c) replay every in-flight request idempotently (rid dedup makes
    replays exactly-once even when the original committed pre-wedge),
    so that **every client request still completes "ok"** and the
    cross-shard verifier finds zero violations."""
    from ..analysis.linearize import HistoryRecorder
    from ..shard import RouterConfig

    h = _ShardHarness(6, seed, num_shards=4, replication=3,
                      num_subgroups=2, window=8,
                      membership=dict(heartbeat_period=us(100),
                                      suspicion_timeout=us(500)))
    h.track_epochs()
    cluster = h.cluster
    cluster.enable_recovery()
    router = cluster.router(RouterConfig(max_retries=400))

    expected: Dict[bytes, bytes] = {}
    outcomes: List[tuple] = []
    recorder = HistoryRecorder()
    _shard_clients(h, router, expected, outcomes,
                   clients=4, puts_per_client=20, gap=us(50),
                   recorder=recorder)

    cluster.faults.crash(0, at=us(400))
    cluster.run(until=ms(40))

    problems: List[str] = []
    if cluster.faults.crashes != 1:
        problems.append("crash event did not fire")
    if cluster.view.members != (1, 2, 3, 4, 5):
        problems.append(f"final view {cluster.view.members} does not "
                        f"exclude the crashed gateway")
    total = 4 * 20
    if len(outcomes) != total:
        problems.append(f"only {len(outcomes)}/{total} requests returned")
    not_ok = [o for o in outcomes if o[2] != "ok"]
    if not_ok:
        problems.append(f"{len(not_ok)} requests did not complete ok "
                        f"(first: {not_ok[0]})")
    c = router.counters
    if c.gateway_changes < 1:
        problems.append("gateway never changed despite the crash")
    if c.epoch_retries + c.wedge_aborts < 1:
        problems.append("no request crossed the epoch boundary "
                        "(crash landed outside the client window)")
    h.check_census(problems, router, expected)
    h.check_subgroup_logs_identical(problems)
    audit = router.verifier.check()
    if not audit.ok:
        problems.extend(f"shard audit: {v}" for v in audit.violations[:5])
    notes = [f"gateway changes {c.gateway_changes}, epoch retries "
             f"{c.epoch_retries}, wedge aborts {c.wedge_aborts}, "
             f"duplicates {sum(r.duplicates_skipped for r in router.service.replicas.values())}",
             f"audit: {audit.shards_checked} shards, "
             f"{audit.keys_checked} keys checked"]
    _shard_final_reads(h, router, recorder)
    lin = _finish_audit(problems, notes, recorder)
    res = h.result("shard-failover", seed, problems, notes)
    res.linearizability = lin
    return res


def scenario_rebalance_under_load(seed: int) -> ScenarioResult:
    """Live shard migration under write load *and* degraded links: a
    jitter storm stretches every link while clients stream PUTs and a
    migration driver moves the fullest shard of subgroup 0 to the next
    subgroup mid-run. The hand-off (freeze, drain, fence, chunked CRC
    transfer, replay through the target's total order, checksum
    agreement, map flip, source delete — docs/SHARDING.md) must commit
    with zero data loss: every client write lands "ok", queued requests
    re-route to the target, and the cross-shard verifier agrees."""
    from ..analysis.linearize import HistoryRecorder

    h = _ShardHarness(6, seed, num_shards=6, replication=2,
                      num_subgroups=3, window=8)
    cluster = h.cluster
    router = cluster.router()
    service = router.service

    cluster.faults.jitter(until=ms(8), extra_latency=us(1),
                          jitter=us(3), at=0.0)

    expected: Dict[bytes, bytes] = {}
    outcomes: List[tuple] = []
    recorder = HistoryRecorder()
    _shard_clients(h, router, expected, outcomes,
                   clients=3, puts_per_client=40, gap=us(80),
                   recorder=recorder)

    records: List = []

    def driver():
        yield ms(1.5)
        src = router.map.subgroup_ids[0]
        shards = router.map.shards_of_subgroup(src)
        # Deterministic pick: the fullest shard (ties: lowest id).
        shard = max(shards, key=lambda s: (
            len(service.shard_items(s, router.map)), -s))
        ids = router.map.subgroup_ids
        target = ids[(ids.index(src) + 1) % len(ids)]
        record = yield from router.rebalancer.migrate(shard, target)
        records.append(record)

    cluster.spawn_sender(driver(), name="rebalance-driver")
    try:
        cluster.run_to_quiescence(max_time=2.0)
    except RuntimeError as exc:
        cluster.run()
        return h.result("rebalance-under-load", seed,
                        [f"no quiescence: {exc}"])

    problems: List[str] = []
    total = 3 * 40
    if len(outcomes) != total:
        problems.append(f"only {len(outcomes)}/{total} requests returned")
    not_ok = [o for o in outcomes if o[2] != "ok"]
    if not_ok:
        problems.append(f"{len(not_ok)} requests did not complete ok "
                        f"(first: {not_ok[0]})")
    if not records:
        problems.append("migration driver never completed")
    else:
        rec = records[0]
        if not rec.ok:
            problems.append(f"migration failed: {rec.error}")
        if not rec.crc_ok:
            problems.append("hand-off transfer CRC did not validate")
        if not rec.checksum_agree:
            problems.append("target replicas disagree with the source "
                            "checksum")
        if rec.keys_moved < 1:
            problems.append("migration moved no keys")
        if rec.chunks < 1:
            problems.append("hand-off used no transfer chunks")
    if router.counters.reroutes < 1:
        problems.append("no request was re-routed by the map flip")
    h.check_census(problems, router, expected)
    h.check_subgroup_logs_identical(problems)
    audit = router.verifier.check()
    if not audit.ok:
        problems.extend(f"shard audit: {v}" for v in audit.violations[:5])
    notes = []
    if records:
        rec = records[0]
        notes = [f"shard {rec.shard}: sg{rec.source_subgroup} -> "
                 f"sg{rec.target_subgroup}, {rec.keys_moved} keys / "
                 f"{rec.bytes_moved} bytes over {rec.chunks} chunks",
                 f"reroutes {router.counters.reroutes}, rejected "
                 f"{dict(router.counters.rejected)}",
                 f"audit: {audit.keys_checked} keys on "
                 f"{audit.replicas_checked} replicas"]
    _shard_final_reads(h, router, recorder)
    lin = _finish_audit(problems, notes, recorder)
    res = h.result("rebalance-under-load", seed, problems, notes)
    res.linearizability = lin
    return res


# ===========================================================================
# Transaction-plane scenarios (docs/TRANSACTIONS.md)
# ===========================================================================


def _txn_keys_in_distinct_subgroups(router, prefix: bytes,
                                    count: int = 2) -> List[bytes]:
    """Deterministically derive ``count`` keys that land in pairwise
    distinct subgroups (so a txn over them is genuinely multi-shard)."""
    found: Dict[int, bytes] = {}
    i = 0
    while len(found) < count and i < 4096:
        key = prefix + b"%d" % i
        sg = router.map.subgroup_of_key(key)
        if sg not in found:
            found[sg] = key
        i += 1
    return [found[sg] for sg in sorted(found)]


def _txn_key_in_shard(router, prefix: bytes, shard: int) -> bytes:
    for i in range(65536):
        key = prefix + b"%d" % i
        if router.map.shard_of(key) == shard:
            return key
    raise RuntimeError(f"no {prefix!r} key hashes into shard {shard}")


def _txn_final_state_read(h, router, recorder) -> None:
    """One synthetic snapshot txn observing every audited key across
    all shards (gateway replicas, one shared instant): the cross-shard
    observation that forces torn transactions into the open."""
    keys = set()
    for txn in recorder.history():
        keys.update(txn.reads)
        keys.update(txn.writes)
    state = {}
    for key in sorted(keys):
        sg = router.map.subgroup_of_key(key)
        state[key] = router.service.gateway_replica(sg).read(key)
    recorder.record_state_read(999, state, h.cluster.sim.now)


def _finish_txn_audit(problems: List[str], notes: List[str],
                      recorder) -> dict:
    """Self-test the txn auditor, then run the strict-serializability
    check; fold violations into the scenario verdict."""
    from ..analysis.linearize import check_txn_recorder, txn_selftest

    selftest_ok, _ = txn_selftest()
    if not selftest_ok:
        problems.append("txn serializability auditor failed its self-test")
    report = check_txn_recorder(recorder)
    if not report.ok:
        problems.extend(
            f"strict serializability: {v}" for v in report.violations[:5])
    notes.append(
        f"strict serializability: {report.ops_checked} txns / "
        f"{report.keys_checked} keys ({report.pending_ops} pending): "
        f"{'ok' if report.ok else 'VIOLATION'}")
    return report.to_dict()


def scenario_txn_coordinator_crash(seed: int) -> ScenarioResult:
    """Crash the transaction coordinator's host mid-commit: node 4 (no
    subgroup membership — a pure coordinator) drives single-shard
    fast-path txns plus two multi-shard txns when it crash-stops with a
    DECISION fsynced but the settle round not yet driven. The prepared
    shards must hold their buffered writes pinned until the restarted
    node's :func:`repro.txn.recover.recover_txns` pass re-drives the
    WAL's logged verdicts — no acked write lost, no transaction torn
    across shards, and the txn-granular strict-serializability audit
    must pass over the whole run."""
    from ..analysis.linearize import TxnHistoryRecorder
    from ..txn import TxnConfig, TxnOp
    from ..txn.recover import recover_txns

    # 2 subgroups x replication 2 consume nodes 0-3; node 4 hosts only
    # the coordinator (and its WAL device).
    h = _ShardHarness(5, seed, num_shards=4, replication=2,
                      num_subgroups=2, window=8)
    cluster = h.cluster
    coord = 4
    # The stretched settle window pins the crash mid-commit: DECISION
    # lands within ~300us, the crash at 1ms, the settle only at ~2.5ms.
    plane = cluster.txn(TxnConfig(cc="occ", settle_delay=ms(2.5)))
    router = plane.router
    sim = cluster.sim
    recorder = TxnHistoryRecorder()
    expected: Dict[bytes, bytes] = {}
    outcomes: List[tuple] = []

    def bg_client(c: int, count: int):
        for i in range(count):
            key = b"bg%d.k%d" % (c, i)
            value = b"v%d.%d" % (c, i)
            tid = recorder.invoke(100 + c, sim.now)
            recorder.pending_writes(tid, {key: value})
            out = yield from plane.run_txn(
                [TxnOp("put", key, value)], coordinator_node=coord)
            if out.status == "committed":
                recorder.complete(tid, sim.now, writes={key: value})
                expected[key] = value
            else:
                recorder.drop(tid)
            outcomes.append((c, i, out.status, out.attempts))
            if i > 0:
                prev = b"bg%d.k%d" % (c, i - 1)
                rid = recorder.invoke(100 + c, sim.now)
                rout = yield from plane.run_txn(
                    [TxnOp("get", prev)], coordinator_node=coord)
                if rout.status == "committed":
                    recorder.complete(rid, sim.now,
                                      reads={prev: rout.reads[0]})
                else:
                    recorder.drop(rid)
            yield us(60)

    for c in range(2):
        proc = cluster.spawn_sender(bg_client(c, 10), name=f"txn-bg-{c}")
        plane.adopt(coord, proc)

    # Pinned multi-shard txn: committed (DECISION=commit fsynced) but
    # the client dies inside the settle window — recovery must re-drive
    # the commit to every participant.
    pin_keys = _txn_keys_in_distinct_subgroups(router, b"pin.")
    pin_writes = {pin_keys[0]: b"PIN-A", pin_keys[1]: b"PIN-B"}
    pin_tid = recorder.invoke(50, 0.0)
    recorder.pending_writes(pin_tid, pin_writes)
    plane.spawn_txn([TxnOp("put", k, v) for k, v in sorted(pin_writes.items())],
                    coordinator_node=coord, name="pinned-txn")

    # Doomed multi-shard txn launched 50us before the crash: depending
    # on seed timing it dies pre-BEGIN (invisible), pre-DECISION
    # (presumed abort) or post-DECISION (re-driven) — all must leave
    # the store atomic.
    doom_keys = _txn_keys_in_distinct_subgroups(router, b"doom.")
    doom_writes = {doom_keys[0]: b"DOOM-A", doom_keys[1]: b"DOOM-B"}

    def doomed():
        yield us(950)
        tid = recorder.invoke(51, sim.now)
        recorder.pending_writes(tid, doom_writes)
        out = yield from plane.run_txn(
            [TxnOp("put", k, v) for k, v in sorted(doom_writes.items())],
            coordinator_node=coord)
        if out.status == "committed":
            recorder.complete(tid, sim.now, writes=dict(doom_writes))

    plane.adopt(coord, cluster.spawn_sender(doomed(), name="doomed-txn"))

    cluster.faults.crash(coord, at=ms(1), restart_at=ms(4))
    reports: List = []

    def on_restart(node: int) -> None:
        if node != coord:
            return

        def recovery_pass():
            rep = yield from recover_txns(plane, node=coord)
            reports.append(rep)

        cluster.spawn_sender(recovery_pass(), name="txn-recovery")

    cluster.faults.on_restart.append(on_restart)

    # Post-recovery liveness: the restarted coordinator must still
    # commit a fresh multi-shard txn through the same plane.
    post: List = []

    def post_client():
        yield ms(5)
        keys = _txn_keys_in_distinct_subgroups(router, b"post.")
        writes = {keys[0]: b"POST-A", keys[1]: b"POST-B"}
        tid = recorder.invoke(52, sim.now)
        recorder.pending_writes(tid, writes)
        out = yield from plane.run_txn(
            [TxnOp("put", k, v) for k, v in sorted(writes.items())],
            coordinator_node=coord)
        post.append(out)
        if out.status == "committed":
            recorder.complete(tid, sim.now, writes=writes)
            expected.update(writes)

    # Not adopted: it sleeps through the crash and drives its txn only
    # after the restart+recovery window.
    cluster.spawn_sender(post_client(), name="txn-post")

    cluster.run(until=ms(12))

    problems: List[str] = []
    if cluster.faults.crashes != 1:
        problems.append("coordinator crash never fired")
    if cluster.faults.restarts != 1:
        problems.append("coordinator restart never fired")
    if not reports:
        problems.append("recovery pass never ran")
        rep = None
    else:
        rep = reports[0]
        if not rep.ok:
            problems.extend(f"recovery: {p}" for p in rep.problems[:5])
        if rep.scanned < 1:
            problems.append("recovery scanned an empty WAL")
        if rep.redriven < 1:
            problems.append("no txn was re-driven "
                            "(crash missed the settle window)")
    # The pinned txn passed its commit point: recovery must have landed
    # its writes on every participant.
    expected.update(pin_writes)
    if plane.counters.recovered_settles < 2:
        problems.append("recovery drove fewer settles than the pinned "
                        "txn's participant count")
    # Atomicity of the doomed txn: all-or-nothing across its shards.
    present = [router.service.gateway_replica(
        router.map.subgroup_of_key(k)).read(k) is not None
        for k in doom_keys]
    if any(present) and not all(present):
        problems.append(f"doomed txn torn across shards: {present}")
    if all(present):
        expected.update(doom_writes)
    # No prepared residue anywhere after recovery.
    for (sg, nid), replica in sorted(router.service.replicas.items()):
        if replica.txn_prepared:
            problems.append(f"sg{sg}@node{nid} left prepared txns "
                            f"{sorted(replica.txn_prepared)}")
        if replica.txn_locks:
            problems.append(f"sg{sg}@node{nid} left txn locks "
                            f"{sorted(replica.txn_locks)}")
    not_ok = [o for o in outcomes if o[2] != "committed"]
    if not_ok:
        problems.append(f"{len(not_ok)} acked background txns did not "
                        f"commit (first: {not_ok[0]})")
    if not post or post[0].status != "committed":
        problems.append("post-recovery txn did not commit "
                        "(coordinator not live after restart)")
    h.check_census(problems, router, expected)
    h.check_subgroup_logs_identical(problems)
    audit = router.verifier.check()
    if not audit.ok:
        problems.extend(f"shard audit: {v}" for v in audit.violations[:5])
    c = plane.counters
    notes = [f"txns: {c.committed} committed / {c.aborted} aborted, "
             f"{c.fastpath_commits} fastpath, {c.wal_records} WAL records",
             f"recovery: scanned {rep.scanned}, redriven {rep.redriven}, "
             f"presumed-abort {rep.presumed_abort}, completed "
             f"{rep.completed}" if rep is not None else "recovery: none",
             f"recovered settles {c.recovered_settles}, doomed txn "
             f"{'committed' if all(present) else 'aborted'}"]
    _txn_final_state_read(h, router, recorder)
    lin = _finish_txn_audit(problems, notes, recorder)
    res = h.result("txn-coordinator-crash", seed, problems, notes)
    res.linearizability = lin
    return res


def scenario_txn_rebalance_open(seed: int) -> ScenarioResult:
    """Live shard migration racing an open transaction: 2PL clients
    stream conflicting multi-shard txns while a pinned txn deliberately
    holds a *prepared* record on the shard being migrated. The migration
    must wait out the prepared txn (``prepared_waits``) because its
    buffered writes live outside the snapshot — and the settle that
    releases it must cut through the frozen router lane (the reserved
    settle lane), or the two would deadlock. Zero write loss, clean
    checksum hand-off, and a passing strict-serializability audit."""
    from ..analysis.linearize import TxnHistoryRecorder
    from ..txn import TxnConfig, TxnOp

    h = _ShardHarness(6, seed, num_shards=6, replication=2,
                      num_subgroups=3, window=8)
    cluster = h.cluster
    plane = cluster.txn(TxnConfig(cc="2pl", settle_delay=us(800),
                                  max_attempts=40))
    router = plane.router
    service = router.service
    sim = cluster.sim
    recorder = TxnHistoryRecorder()
    expected: Dict[bytes, bytes] = {}
    outcomes: List[tuple] = []

    def bg_client(c: int, count: int):
        for i in range(count):
            own = b"t%d.k%d" % (c, i)
            value = b"v%d.%d" % (c, i)
            shared = b"shared.%d" % (i % 2)
            if c == 0 and i % 3 == 0:
                # Writer txn: X-locks the shared key, wounding/blocking
                # the reader clients (wound-wait exercise).
                ops = [TxnOp("put", own, value),
                       TxnOp("put", shared, b"s%d.%d" % (c, i))]
            else:
                ops = [TxnOp("put", own, value), TxnOp("get", shared)]
            tid = recorder.invoke(100 + c, sim.now)
            out = yield from plane.run_txn(ops, coordinator_node=0)
            outcomes.append((c, i, out.status, out.attempts))
            if out.status == "committed":
                writes = {op.key: op.value for op in ops if op.op == "put"}
                reads = ({shared: out.reads[0]}
                         if out.reads else {})
                recorder.complete(tid, sim.now, reads=reads, writes=writes)
                for k, v in writes.items():
                    expected[k] = v
            else:
                recorder.drop(tid)
            yield us(120)

    for c in range(3):
        cluster.spawn_sender(bg_client(c, 10), name=f"txn-2pl-{c}")

    records: List = []
    pin_sink: List = []
    driver_problems: List[str] = []

    def driver():
        yield ms(1.2)
        src = router.map.subgroup_ids[0]
        shards = router.map.shards_of_subgroup(src)
        shard = max(shards, key=lambda s: (
            len(service.shard_items(s, router.map)), -s))
        ids = router.map.subgroup_ids
        target = ids[(ids.index(src) + 1) % len(ids)]
        # Pinned txn: one write in the migrating shard, one in the
        # target subgroup — multi-shard, so it holds a prepared record
        # through the stretched settle window.
        key_a = _txn_key_in_shard(router, b"pin.", shard)
        key_b = _txn_key_in_shard(
            router, b"pin2.", router.map.shards_of_subgroup(target)[0])
        pin_writes = {key_a: b"PIN-A", key_b: b"PIN-B"}

        def pinned():
            tid = recorder.invoke(50, sim.now)
            out = yield from plane.run_txn(
                [TxnOp("put", k, v) for k, v in sorted(pin_writes.items())],
                coordinator_node=0)
            pin_sink.append(out)
            if out.status == "committed":
                recorder.complete(tid, sim.now, writes=dict(pin_writes))
                expected.update(pin_writes)

        cluster.spawn_sender(pinned(), name="pinned-open-txn")
        # Only migrate once the pinned txn is provably prepared on the
        # source — the race this scenario exists to exercise.
        source_rep = service.gateway_replica(src)
        for _ in range(4000):
            if source_rep.prepared_txns_touching(shard, router.map):
                break
            yield us(5)
        else:
            driver_problems.append(
                "pinned txn never reached prepared state on the source")
        record = yield from router.rebalancer.migrate(shard, target)
        records.append(record)

    cluster.spawn_sender(driver(), name="txn-rebalance-driver")
    try:
        cluster.run_to_quiescence(max_time=2.0)
    except RuntimeError as exc:
        cluster.run()
        return h.result("txn-rebalance-open", seed,
                        [f"no quiescence: {exc}"])

    problems: List[str] = list(driver_problems)
    if not records:
        problems.append("migration driver never completed")
    else:
        rec = records[0]
        if not rec.ok:
            problems.append(f"migration failed: {rec.error}")
        if not rec.crc_ok:
            problems.append("hand-off transfer CRC did not validate")
        if not rec.checksum_agree:
            problems.append("target replicas disagree with the source "
                            "checksum")
        if rec.keys_moved < 1:
            problems.append("migration moved no keys")
        if rec.prepared_waits < 1:
            problems.append("migration never waited on the prepared txn "
                            "(the race was not exercised)")
    if not pin_sink or pin_sink[0].status != "committed":
        problems.append("pinned txn did not commit across the migration")
    not_ok = [o for o in outcomes if o[2] != "committed"]
    if not_ok:
        problems.append(f"{len(not_ok)} txns did not commit "
                        f"(first: {not_ok[0]})")
    total = 3 * 10
    if len(outcomes) != total:
        problems.append(f"only {len(outcomes)}/{total} txns returned")
    if router.counters.settle_reserved < 1:
        problems.append("no settle rode the reserved router lane")
    h.check_census(problems, router, expected)
    h.check_subgroup_logs_identical(problems)
    audit = router.verifier.check()
    if not audit.ok:
        problems.extend(f"shard audit: {v}" for v in audit.violations[:5])
    c = plane.counters
    locks = plane.lock_counters()
    notes = []
    if records:
        rec = records[0]
        notes.append(
            f"shard {rec.shard}: sg{rec.source_subgroup} -> "
            f"sg{rec.target_subgroup}, {rec.keys_moved} keys, "
            f"prepared waits {rec.prepared_waits}")
    notes.append(
        f"txns: {c.committed} committed / {c.aborted} aborted in "
        f"{c.attempts} attempts; locks: {locks['acquired']} acquired, "
        f"{locks['wounds']} wounds, {locks['wait_aborts']} wait aborts")
    notes.append(
        f"settles through reserved lane: "
        f"{router.counters.settle_reserved}")
    _txn_final_state_read(h, router, recorder)
    lin = _finish_txn_audit(problems, notes, recorder)
    res = h.result("txn-rebalance-open", seed, problems, notes)
    res.linearizability = lin
    return res


#: name -> scenario function. Ordering is the CLI's ``--all`` ordering.
SCENARIOS: Dict[str, Callable[[int], ScenarioResult]] = {
    "partition-heal": scenario_partition_heal,
    "partition-majority": scenario_partition_majority,
    "jitter-storm": scenario_jitter_storm,
    "sender-stall": scenario_sender_stall,
    "leader-crash": scenario_leader_crash,
    "crash-restart": scenario_crash_restart,
    "crash-restart-rejoin": scenario_crash_restart_rejoin,
    "mid-transfer-source-crash": scenario_mid_transfer_source_crash,
    "power-loss": scenario_power_loss,
    "torn-write": scenario_torn_write,
    "paxos-leader-crash": scenario_paxos_leader_crash,
    "paxos-partition-heal": scenario_paxos_partition_heal,
    "paxos-crash-restart-rejoin": scenario_paxos_crash_restart_rejoin,
    "power-loss-paxos": scenario_power_loss_paxos,
    "shard-failover": scenario_shard_failover,
    "rebalance-under-load": scenario_rebalance_under_load,
    "txn-coordinator-crash": scenario_txn_coordinator_crash,
    "txn-rebalance-open": scenario_txn_rebalance_open,
}


def scenario_names() -> List[str]:
    return list(SCENARIOS)


def run_scenario(name: str, seed: int = 0) -> ScenarioResult:
    """Run one named scenario; raises ``KeyError`` on unknown names."""
    try:
        fn = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(SCENARIOS)}"
        ) from None
    return fn(seed)

"""Command-line interface: run the paper's experiments without writing code.

Examples::

    python -m repro.cli single --nodes 8 --pattern all --config optimized
    python -m repro.cli single --nodes 16 --config baseline --count 60
    python -m repro.cli multi --nodes 8 --subgroups 10 --active 1
    python -m repro.cli delayed --nodes 8 --delayed 1 --delay-us 100
    python -m repro.cli rdmc --nodes 16 --size 8388608
    python -m repro.cli compare --nodes 8
    python -m repro.cli lint src

Each experiment command prints the metrics the paper reports (GB/s
averaged over nodes, latency, batch sizes, RDMA write counts); ``lint``
runs the spindle-lint invariant checks (docs/LINT.md).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .analysis import format_table, gbps, usec
from .core.config import SpindleConfig
from .sim.units import us

CONFIGS = {
    "baseline": SpindleConfig.baseline,
    "batching": SpindleConfig.batching_only,
    "nulls": SpindleConfig.batching_and_nulls,
    "optimized": SpindleConfig.optimized,
}


def _result_rows(result):
    return [
        ["throughput (GB/s)", gbps(result.throughput)],
        ["mean latency (us)", usec(result.latency)],
        ["message rate (msg/s)", f"{result.message_rate:,.0f}"],
        ["RDMA writes", f"{result.rdma_writes:,}"],
        ["post/busy fraction", f"{result.post_fraction * 100:.0f}%"],
        ["sender wait fraction", f"{result.sender_wait_fraction * 100:.0f}%"],
        ["mean batches s/r/d", "/".join(f"{b:.1f}" for b in result.mean_batches)],
        ["nulls sent", f"{result.nulls_sent}"],
        ["simulated duration", f"{result.duration * 1e3:.2f} ms"],
    ]


def cmd_single(args) -> int:
    from .workloads import single_subgroup

    result = single_subgroup(
        args.nodes, args.pattern, CONFIGS[args.config](),
        message_size=args.size, count=args.count, window=args.window,
        backend=args.backend,
    )
    print(format_table(["metric", "value"], _result_rows(result)))
    return 0


def cmd_multi(args) -> int:
    from .workloads import multi_subgroup

    result = multi_subgroup(
        args.nodes, num_subgroups=args.subgroups,
        active_subgroups=args.active, config=CONFIGS[args.config](),
        message_size=args.size, count=args.count, window=args.window,
    )
    print(format_table(["metric", "value"], _result_rows(result)))
    return 0


def cmd_delayed(args) -> int:
    from .workloads import delayed_senders

    result = delayed_senders(
        args.nodes, delayed=list(range(args.delayed)),
        delay=us(args.delay_us), config=CONFIGS[args.config](),
        message_size=args.size, count=args.count,
        indefinite=args.indefinite,
    )
    rows = _result_rows(result)
    inter = result.extras.get("interdelivery_continuous")
    if inter:
        rows.append(["interdelivery, continuous sender",
                     f"{inter * 1e6:.2f} us"])
    print(format_table(["metric", "value"], rows))
    return 0


def cmd_rdmc(args) -> int:
    from .rdma import RdmaFabric
    from .rdmc import RdmcGroup, SCHEMES
    from .sim import Simulator

    rows = []
    for scheme in SCHEMES:
        sim = Simulator()
        fabric = RdmaFabric(sim)
        members = [fabric.add_node().node_id for _ in range(args.nodes)]
        group = RdmcGroup(fabric, members, block_size=args.block,
                          scheme=scheme)
        session = group.multicast(members[0], args.size)
        sim.run()
        worst = max(session.completion_time(m) for m in members)
        rows.append([scheme, f"{worst * 1e6:.0f}",
                     gbps(args.size / worst)])
    print(format_table(["scheme", "completion (us)", "eff. GB/s"], rows))
    return 0


def cmd_compare(args) -> int:
    from .workloads import single_subgroup

    rows = []
    for name, factory in CONFIGS.items():
        count = args.count if name != "baseline" else max(40, args.count // 3)
        result = single_subgroup(args.nodes, args.pattern, factory(),
                                 message_size=args.size, count=count,
                                 window=args.window)
        rows.append([name, gbps(result.throughput), usec(result.latency),
                     f"{result.rdma_writes:,}"])
    print(format_table(
        ["config", "GB/s", "latency (us)", "RDMA writes"], rows))
    return 0


def cmd_chaos(args) -> int:
    """Run named chaos scenarios (docs/FAULTS.md) across a seed sweep."""
    import json

    from .faults.scenarios import SCENARIOS, run_scenario

    if args.list:
        rows = [[name, (fn.__doc__ or "").strip().split("\n")[0]]
                for name, fn in SCENARIOS.items()]
        print(format_table(["scenario", "description"], rows))
        return 0

    if args.scenario:
        unknown = [s for s in args.scenario if s not in SCENARIOS]
        if unknown:
            print(f"chaos: unknown scenario(s): {', '.join(unknown)} "
                  f"(try --list)", file=sys.stderr)
            return 2
        names = args.scenario
    elif args.all:
        names = list(SCENARIOS)
    else:
        print("chaos: pick --scenario NAME (repeatable), --all, or --list",
              file=sys.stderr)
        return 2

    sanitize = (os.environ.get("SPINDLE_SANITIZE", "").strip().lower()
                in ("1", "true", "yes", "on")) or args.sanitize
    sanitizer = None
    if sanitize:
        from .analysis.lint.sanitizer import enable_global

        sanitizer = enable_global(strict=True)

    seeds = list(range(args.seed, args.seed + args.sweep))
    rows = []
    failures = []
    summary: "dict[str, dict]" = {}
    for name in names:
        for seed in seeds:
            runs = [run_scenario(name, seed)
                    for _ in range(max(1, args.repeat))]
            result = runs[0]
            replay_ok = all(
                r.log_digest == result.log_digest
                and r.trace_fingerprint == result.trace_fingerprint
                for r in runs[1:]
            )
            problems = list(result.problems)
            if not replay_ok:
                problems.append("replay diverged: same seed + schedule "
                                "produced different logs")
            ok = result.ok and replay_ok
            rows.append([
                name, str(seed), "ok" if ok else "FAIL",
                str(sum(result.delivered.values())),
                result.log_digest[:12],
                "; ".join(problems) if problems else "-",
            ])
            if not ok:
                failures.append((name, seed, result, problems))
            stats = summary.setdefault(name, {
                "pass": 0, "fail": 0, "delivered": 0,
                "lin": None, "first_problem": None})
            stats["pass" if ok else "fail"] += 1
            stats["delivered"] += sum(result.delivered.values())
            if result.linearizability is not None:
                lin_ok = (result.linearizability["ok"]
                          and stats["lin"] in (None, "ok"))
                stats["lin"] = "ok" if lin_ok else "VIOLATION"
            if problems and stats["first_problem"] is None:
                stats["first_problem"] = problems[0]
            if args.json:
                payload = result.to_dict()
                payload["replay_ok"] = replay_ok
                print(json.dumps(payload, sort_keys=True))

    if not args.json:
        print(format_table(
            ["scenario", "seed", "status", "delivered", "log digest",
             "problems"], rows))
        if len(names) > 1 or len(seeds) > 1:
            summary_rows = [[
                name,
                f"{st['pass']}/{st['pass'] + st['fail']}",
                str(st["delivered"]),
                st["lin"] or "-",
                st["first_problem"] or "-",
            ] for name, st in summary.items()]
            print()
            print(format_table(
                ["scenario", "passed", "delivered", "linearizable",
                 "first problem"], summary_rows))
        if sanitizer is not None:
            print(sanitizer.report().splitlines()[0])

    if failures and args.artifact_dir:
        os.makedirs(args.artifact_dir, exist_ok=True)
        for name, seed, result, problems in failures:
            path = os.path.join(args.artifact_dir,
                                f"chaos-{name}-seed{seed}.json")
            artifact = result.to_dict()
            artifact["problems"] = problems
            artifact["replay_cmd"] = (
                f"spindle-repro chaos --scenario {name} --seed {seed}")
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(artifact, fh, indent=2, sort_keys=True)
            print(f"chaos: wrote failure artifact {path}", file=sys.stderr)

    if failures:
        print(f"chaos: {len(failures)} failing (scenario, seed) pair(s)",
              file=sys.stderr)
        return 1
    return 0


def cmd_recover(args) -> int:
    """Run a crash → replay → transfer → rejoin pipeline in-process and
    print the recovery audit: per-stage timers, chunked-transfer stats,
    the trim ledger, and the cross-view virtual-synchrony verifier
    verdict (docs/RECOVERY.md)."""
    import json

    from .faults.scenarios import (_Harness, _kv_rebuild_applier,
                                   _wire_kv_epochs)
    from .recovery import RecoveryConfig, TransferConfig, VsyncVerifier
    from .sim.units import ms

    crash_node = (args.crash_node if args.crash_node is not None
                  else args.nodes - 1)
    if not 0 <= crash_node < args.nodes:
        print("recover: --crash-node out of range", file=sys.stderr)
        return 2

    h = _Harness(args.nodes, args.seed, size=256, window=8, persistent=True,
                 membership=dict(heartbeat_period=us(100),
                                 suspicion_timeout=us(500)))
    h.track_epochs()
    cluster = h.cluster
    stores: dict = {}
    _wire_kv_epochs(h, stores, puts_per_writer=args.puts, value_pad=32,
                    writer_gap=us(40))
    coord = cluster.enable_recovery(RecoveryConfig(transfer=TransferConfig(
        chunk_size=args.chunk_size,
        chunk_timeout=us(args.chunk_timeout_us),
        drop_chunks=frozenset(args.drop_chunk or ()))))
    coord.set_applier(0, _kv_rebuild_applier(stores))
    coord.set_checksum(0, lambda nid: stores[nid].checksum())
    verifier = VsyncVerifier(cluster)

    cluster.faults.crash(crash_node, at=ms(args.crash_ms),
                         restart_at=ms(args.restart_ms))
    cluster.run(until=ms(args.until_ms))

    report = coord.reports.get(crash_node)
    vs = verifier.check()

    if args.json:
        print(json.dumps({
            "report": report.to_dict() if report is not None else None,
            "vsync": vs.to_dict(),
            "trim_ledger": cluster.trim_ledger.to_dict(),
            "final_view": {"view_id": cluster.view.view_id,
                           "members": list(cluster.view.members)},
        }, indent=2, sort_keys=True))
    else:
        if report is None:
            print(f"recover: node {crash_node} never restarted "
                  f"(no recovery report)", file=sys.stderr)
            return 1
        rows = [["state", report.state],
                ["started (ms)", f"{report.started_at * 1e3:.3f}"],
                ["finished (ms)", f"{report.finished_at * 1e3:.3f}"],
                ["rejoin view", str(report.rejoin_view_id)],
                ["cut retries", str(report.cut_retries)]]
        for stage, secs in report.stage_seconds.items():
            rows.append([f"stage {stage} (us)", f"{secs * 1e6:.1f}"])
        for sg_id in sorted(report.replayed):
            rows.append([f"sg{sg_id} replayed / fetched",
                         f"{report.replayed.get(sg_id, 0)} / "
                         f"{report.fetched.get(sg_id, 0)} entries"])
        for sg_id, xfer in sorted(report.transfers.items()):
            rows.append([f"sg{sg_id} transfer",
                         f"{xfer.bytes_transferred} B over {xfer.chunks} "
                         f"chunks from node {xfer.source} "
                         f"(sources tried: {xfer.sources_used})"])
            rows.append([f"sg{sg_id} retries",
                         f"{xfer.timeouts} timeouts "
                         f"({xfer.injected_timeouts} injected), "
                         f"{xfer.failovers} failovers, backoff "
                         f"{xfer.backoff_total * 1e6:.0f} us"])
        for sg_id, ok in sorted(report.checksum_ok.items()):
            rows.append([f"sg{sg_id} checksum vs source",
                         {True: "match", False: "MISMATCH",
                          None: "no hook"}[ok]])
        print(format_table(["recovery", "value"], rows))
        print()
        trims = [[str(d.prior_view_id), str(d.next_view_id), d.kind,
                  ", ".join(f"sg{sg}={t}"
                            for sg, t in sorted(d.trims.items()))]
                 for d in cluster.trim_ledger.committed.values()]
        if trims:
            print(format_table(
                ["ending view", "next view", "kind", "trims"], trims))
            print()
        print(f"final view: {cluster.view.view_id} "
              f"members={cluster.view.members}")
        print(f"vsync: {'ok' if vs.ok else 'FAIL'} — "
              f"{vs.deliveries_checked} deliveries over "
              f"{vs.epochs_checked} epochs"
              + ("" if vs.ok else f"; {vs.violations[:3]}"))
        for problem in report.problems:
            print(f"problem: {problem}", file=sys.stderr)

    ok = (report is not None and report.done and vs.ok
          and not report.problems)
    return 0 if ok else 1


def cmd_metrics(args) -> int:
    """Run a workload in-process and print the metrics registry
    (docs/METRICS.md): a snapshot in table/JSON/Prometheus form, and —
    with ``--profile`` — the per-stage pipeline time breakdown whose
    total must match the predicate-thread busy time."""
    from .metrics import (
        check_partition,
        format_stage_profile,
        stage_profile,
    )
    from .workloads.cluster import Cluster
    from .workloads.generators import continuous_sender
    from .workloads.runner import sender_set

    cluster = Cluster(args.nodes, config=CONFIGS[args.config](),
                      seed=args.seed)
    if not cluster.metrics.enabled:
        print("metrics: registry disabled (SPINDLE_METRICS=0); nothing "
              "to report", file=sys.stderr)
        return 2
    senders = sender_set(args.nodes, args.pattern)
    cluster.add_subgroup(senders=senders, window=args.window,
                         message_size=args.size)
    cluster.build()
    for nid in senders:
        cluster.spawn_sender(continuous_sender(
            cluster.mc(nid, 0), count=args.count, size=args.size))

    if args.watch:
        interval = args.watch / 1e3  # ms of simulated time
        last = [-1, -1]

        def tick() -> None:
            stats0 = cluster.group(senders[0]).stats(0)
            now = [stats0.delivered, cluster.fabric.total_writes_posted()]
            if now == last:
                return  # quiescent: stop rescheduling so the run can end
            last[:] = now
            print(f"[watch t={cluster.sim.now * 1e3:8.3f} ms] "
                  f"delivered={now[0]:6d} rdma_writes={now[1]:7d}")
            cluster.sim.call_at(cluster.sim.now + interval, tick)

        cluster.sim.call_at(interval, tick)

    cluster.run_to_quiescence(max_time=args.max_time)

    if args.format == "json":
        print(cluster.metrics_json())
    elif args.format == "prom":
        print(cluster.metrics_prometheus())
    else:
        snap = cluster.metrics_snapshot()
        rows = []
        for key, sample in snap["metrics"].items():
            kind = sample["kind"]
            if kind in ("counter", "gauge"):
                rows.append([key, kind, f"{sample['value']:g}"])
            elif kind == "histogram":
                rows.append([key, kind,
                             f"count={sample['count']} sum={sample['sum']:g}"])
            else:  # timer
                rows.append([key, kind,
                             f"spans={sample['count']} "
                             f"total={sample['total_seconds'] * 1e6:.1f} us"])
        print(format_table(["metric", "kind", "value"], rows))

    if args.profile:
        profile = stage_profile(cluster.metrics)
        print()
        print(format_stage_profile(profile))
        ok, rel_err = check_partition(profile)
        print(f"partition check: stage total vs predicate busy time "
              f"differs by {rel_err * 100:.2f}% "
              f"({'ok' if ok else 'FAIL — over 5% tolerance'})")
        if not ok:
            return 1
    return 0


def cmd_shard(args) -> int:
    """Drive the sharded service plane (docs/SHARDING.md): N shards
    over subgroups of ``--replication`` members, M open-loop Poisson
    clients pushing rid-framed PUTs through the request router, then
    report router/admission counters, per-shard placement, SLO
    percentiles, and the cross-shard checksum audit."""
    import json as _json
    from random import Random

    from .workloads.cluster import Cluster
    from .workloads.generators import SloStats, open_loop_client

    cluster = Cluster(args.nodes, config=CONFIGS[args.config](),
                      seed=args.seed)
    cluster.add_shards(num_shards=args.shards, replication=args.replication,
                       window=args.window, message_size=args.size)
    cluster.build()
    router = cluster.router()

    stats = SloStats()
    value = b"v" * max(1, args.size // 4)
    deadline = args.slo_ms * 1e-3

    def factory(client: int):
        def make(k: int):
            key = b"c%d.k%d" % (client, k)
            return router.request("put", key, value,
                                  deadline=cluster.sim.now + deadline)
        return make

    for c in range(args.clients):
        cluster.spawn_sender(
            open_loop_client(cluster.sim, factory(c), rate=args.rate,
                             count=args.ops, rng=Random(args.seed * 7919 + c),
                             stats=stats, deadline=deadline,
                             name=f"client{c}"),
            name=f"client{c}")
    cluster.run_to_quiescence(max_time=args.max_time)

    audit = router.verifier.check()
    placement = router.map.placement()
    per_sg = {sg: cluster.total_delivered(sg)
              for sg in router.map.subgroup_ids}
    if args.json:
        print(_json.dumps({
            "shards": args.shards,
            "clients": args.clients,
            "placement": {str(k): v for k, v in placement.items()},
            "counters": router.counters.to_dict(),
            "slo": stats.to_dict(),
            "delivered_per_subgroup": {str(k): v for k, v in per_sg.items()},
            "audit": audit.to_dict(),
            "map_digest": router.map.digest(),
        }, indent=2, sort_keys=True))
        return 0 if audit.ok else 1

    rows = [[f"shard {s}", f"subgroup {sg}",
             f"queue={router.queue_depth(s)}"]
            for s, sg in sorted(placement.items())]
    print(format_table(["shard", "placement", "state"], rows))
    c = router.counters
    print(format_table(["router metric", "value"], [
        ["accepted", str(c.accepted)],
        ["completed", str(c.completed)],
        ["rejected (queue_full)", str(c.rejected.get("queue_full", 0))],
        ["rejected (window_saturated)",
         str(c.rejected.get("window_saturated", 0))],
        ["client gave up", str(c.client_gaveup)],
        ["queue timeouts", str(c.timeouts)],
        ["reroutes", str(c.reroutes)],
        ["epoch retries", str(c.epoch_retries)],
    ]))
    print(format_table(["SLO metric", "value"], [
        ["submitted", str(stats.submitted)],
        ["ok", str(stats.ok)],
        ["rejected", str(stats.rejected)],
        ["timeouts", str(stats.timeouts)],
        ["SLO misses", str(stats.slo_misses)],
        ["p50 latency (us)", f"{stats.p50() * 1e6:.1f}"],
        ["p99 latency (us)", f"{stats.p99() * 1e6:.1f}"],
    ]))
    print(f"delivered per subgroup: "
          + ", ".join(f"sg{sg}={n}" for sg, n in sorted(per_sg.items())))
    print(f"cross-shard audit: "
          f"{'ok' if audit.ok else 'FAIL'} "
          f"({audit.shards_checked} shards, {audit.keys_checked} keys"
          + (f", violations: {audit.violations[:3]}" if audit.violations
             else "") + ")")
    return 0 if audit.ok else 1


def cmd_txn(args) -> int:
    """Drive the cross-shard transaction plane (docs/TRANSACTIONS.md):
    seeded clients run multi-key read/write transactions under the
    chosen concurrency control ("occ" or "2pl"), then report commit and
    abort counters, the per-stage coordinator time split, lock-table
    traffic, and a txn-granular strict-serializability audit."""
    import json as _json
    from random import Random

    from .analysis.linearize import TxnHistoryRecorder, check_txn_recorder
    from .txn import TxnConfig, TxnOp
    from .workloads.cluster import Cluster

    cluster = Cluster(args.nodes, config=CONFIGS[args.config](),
                      seed=args.seed)
    cluster.add_shards(num_shards=args.shards, replication=args.replication,
                       window=args.window, message_size=args.size)
    cluster.build()
    plane = cluster.txn(TxnConfig(cc=args.cc))
    router = plane.router
    sim = cluster.sim

    recorder = TxnHistoryRecorder()
    latencies: List[float] = []
    outcomes: List[str] = []
    span = [0.0]  # time of the last txn completion (workload span)

    def client(c: int):
        rng = Random(args.seed * 6151 + c)
        for i in range(args.txns):
            keys = sorted({b"k%d" % rng.randrange(args.keys)
                           for _ in range(args.ops)})
            ops, writes = [], {}
            for key in keys:
                if rng.random() < args.read_ratio:
                    ops.append(TxnOp("get", key))
                else:
                    value = b"c%d.t%d" % (c, i)
                    ops.append(TxnOp("put", key, value))
                    writes[key] = value
            tid = recorder.invoke(c, sim.now)
            t0 = sim.now
            out = yield from plane.run_txn(ops, coordinator_node=0)
            outcomes.append(out.status)
            span[0] = max(span[0], sim.now)
            if out.status == "committed":
                latencies.append(sim.now - t0)
                reads = {op.key: value for op, value in
                         zip([o for o in ops if o.op == "get"], out.reads)}
                recorder.complete(tid, sim.now, reads=reads, writes=writes)
            else:
                recorder.drop(tid)
            yield us(args.gap_us)

    for c in range(args.clients):
        cluster.spawn_sender(client(c), name=f"txn-client-{c}")
    cluster.run_to_quiescence(max_time=args.max_time)

    c = plane.counters
    stages = plane.stage_seconds()
    locks = plane.lock_counters()
    audit = check_txn_recorder(recorder)
    shard_audit = router.verifier.check()
    duration = span[0]
    tps = c.committed / duration if duration > 0 else 0.0
    latencies.sort()

    def pct(p: float) -> float:
        if not latencies:
            return 0.0
        return latencies[min(len(latencies) - 1,
                             int(p * (len(latencies) - 1)))]

    ok = audit.ok and shard_audit.ok
    if args.json:
        print(_json.dumps({
            "cc": args.cc,
            "committed": c.committed,
            "aborted": c.aborted,
            "counters": c.to_dict(),
            "locks": locks,
            "stage_seconds": stages,
            "throughput_tps": tps,
            "p50_latency_us": pct(0.50) * 1e6,
            "p99_latency_us": pct(0.99) * 1e6,
            "serializability": audit.to_dict(),
            "shard_audit": shard_audit.to_dict(),
            "duration": duration,
        }, indent=2, sort_keys=True))
        return 0 if ok else 1

    print(format_table(["txn metric", "value"], [
        ["concurrency control", args.cc],
        ["committed", str(c.committed)],
        ["aborted", str(c.aborted)],
        ["attempts", str(c.attempts)],
        ["fastpath commits", str(c.fastpath_commits)],
        ["validation aborts", str(c.validation_aborts)],
        ["wound/wait aborts", str(c.wound_aborts)],
        ["prepare 'no' votes", str(c.prepare_aborts)],
        ["prepares / settles", f"{c.prepares_sent} / {c.settles_sent}"],
        ["WAL records", str(c.wal_records)],
        ["throughput (txn/s)", f"{tps:,.0f}"],
        ["p50 / p99 latency (us)",
         f"{pct(0.50) * 1e6:.1f} / {pct(0.99) * 1e6:.1f}"],
    ]))
    print(format_table(["stage", "coordinator seconds"], [
        [stage, f"{seconds * 1e3:.3f} ms"]
        for stage, seconds in sorted(stages.items())]))
    if args.cc == "2pl":
        print(f"locks: {locks['acquired']} acquired, {locks['wounds']} "
              f"wounds, {locks['waits']} waits, {locks['wait_aborts']} "
              f"wait aborts")
    print(f"strict serializability: {'ok' if audit.ok else 'FAIL'} "
          f"({audit.ops_checked} txns, {audit.keys_checked} keys)"
          + (f" violations: {audit.violations[:2]}" if audit.violations
             else ""))
    print(f"cross-shard audit: {'ok' if shard_audit.ok else 'FAIL'} "
          f"({shard_audit.shards_checked} shards)")
    return 0 if ok else 1


def cmd_lint(args) -> int:
    from .analysis.lint import format_report, lint_paths
    from .analysis.lint.findings import format_baseline
    from .analysis.lint.runner import DEFAULT_BASELINE_NAME

    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline:
        if os.path.exists(DEFAULT_BASELINE_NAME):
            baseline_path = DEFAULT_BASELINE_NAME
    if args.write_baseline:
        baseline_path = None  # writing: start from the raw findings
    select = args.passes.split(",") if args.passes else None
    try:
        report = lint_paths(args.paths, select=select,
                            baseline_path=baseline_path)
    except (FileNotFoundError, ValueError) as exc:
        print(f"spindle-lint: error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        target = args.baseline or DEFAULT_BASELINE_NAME
        body = format_baseline(report.findings + report.baselined)
        with open(target, "w", encoding="utf-8") as fh:
            fh.write(body)
        print(f"spindle-lint: wrote {target} "
              f"({len(report.findings) + len(report.baselined)} entries)")
        return 0

    print(format_report(report, verbose=args.verbose))
    return 0 if report.ok else 1


def cmd_check(args) -> int:
    import json

    from .analysis.lint.check import (
        DEFAULT_CHECK_BASELINE_NAME,
        check_paths,
        check_report_dict,
        check_report_sarif,
        format_check_report,
    )
    from .analysis.lint.findings import format_baseline

    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline:
        if os.path.exists(DEFAULT_CHECK_BASELINE_NAME):
            baseline_path = DEFAULT_CHECK_BASELINE_NAME
    if args.write_baseline:
        baseline_path = None  # writing: start from the raw findings
    select = args.passes.split(",") if args.passes else None
    try:
        report = check_paths(args.paths, select=select,
                             baseline_path=baseline_path,
                             include_lint=not args.no_lint)
    except (FileNotFoundError, ValueError) as exc:
        print(f"spindle-check: error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        target = args.baseline or DEFAULT_CHECK_BASELINE_NAME
        body = format_baseline(report.findings + report.baselined)
        body = body.replace("spindle-repro lint src --write-baseline",
                            "spindle-repro check src --write-baseline")
        with open(target, "w", encoding="utf-8") as fh:
            fh.write(body)
        print(f"spindle-check: wrote {target} "
              f"({len(report.findings) + len(report.baselined)} entries)")
        return 0

    if args.format == "json":
        print(json.dumps(check_report_dict(report), indent=2,
                         sort_keys=True))
    elif args.format == "sarif":
        print(json.dumps(check_report_sarif(report), indent=2,
                         sort_keys=True))
    else:
        print(format_check_report(report, verbose=args.verbose))
    return 0 if report.ok else 1


def _add_common(parser, count=200):
    parser.add_argument("--nodes", type=int, default=8,
                        help="cluster size (paper: 2..16)")
    parser.add_argument("--size", type=int, default=10240,
                        help="message size in bytes (default 10 KB)")
    parser.add_argument("--count", type=int, default=count,
                        help="messages per sender")
    parser.add_argument("--window", type=int, default=100,
                        help="SMC ring-buffer window size")
    parser.add_argument("--config", choices=sorted(CONFIGS),
                        default="optimized")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("single", help="single-subgroup experiment (§4.1)")
    p.add_argument("--backend", choices=["spindle", "paxos"],
                   default="spindle",
                   help="ordering protocol (docs/ORDERING.md)")
    _add_common(p)
    p.add_argument("--pattern", choices=["all", "half", "one"], default="all")
    p.set_defaults(fn=cmd_single)

    p = sub.add_parser("multi", help="multiple-subgroup experiment (§4.1.3)")
    _add_common(p, count=120)
    p.add_argument("--subgroups", type=int, default=5)
    p.add_argument("--active", type=int, default=1)
    p.set_defaults(fn=cmd_multi)

    p = sub.add_parser("delayed", help="delayed-sender experiment (§4.2)")
    _add_common(p, count=150)
    p.add_argument("--delayed", type=int, default=1,
                   help="how many senders are delayed")
    p.add_argument("--delay-us", type=float, default=100.0)
    p.add_argument("--indefinite", action="store_true",
                   help="delayed senders go silent instead")
    p.set_defaults(fn=cmd_delayed)

    p = sub.add_parser("rdmc", help="large-message multicast schemes")
    p.add_argument("--nodes", type=int, default=16)
    p.add_argument("--size", type=int, default=8 << 20)
    p.add_argument("--block", type=int, default=256 * 1024)
    p.set_defaults(fn=cmd_rdmc)

    p = sub.add_parser("compare", help="all four configs side by side")
    _add_common(p)
    p.add_argument("--pattern", choices=["all", "half", "one"], default="all")
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser(
        "chaos",
        help="run seeded chaos scenarios against the fault plane "
             "(docs/FAULTS.md)")
    p.add_argument("--scenario", action="append", default=None,
                   help="scenario name (repeatable; see --list)")
    p.add_argument("--all", action="store_true",
                   help="run the whole scenario catalog")
    p.add_argument("--list", action="store_true",
                   help="list known scenarios and exit")
    p.add_argument("--seed", type=int, default=0,
                   help="first seed of the sweep (default 0)")
    p.add_argument("--sweep", type=int, default=1,
                   help="how many consecutive seeds to run (default 1)")
    p.add_argument("--repeat", type=int, default=1,
                   help="runs per (scenario, seed); >1 additionally "
                        "checks byte-identical replay")
    p.add_argument("--sanitize", action="store_true",
                   help="enable the runtime sanitizer (also via "
                        "SPINDLE_SANITIZE=1)")
    p.add_argument("--json", action="store_true",
                   help="print one JSON result object per run")
    p.add_argument("--artifact-dir", default=None,
                   help="write failing-run artifacts (seed + schedule "
                        "JSON) here for CI upload")
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser(
        "recover",
        help="crash → replay → transfer → rejoin demo with the full "
             "recovery audit (docs/RECOVERY.md)")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--crash-node", type=int, default=None,
                   help="node to crash + recover (default: last node)")
    p.add_argument("--crash-ms", type=float, default=1.0,
                   help="crash time in simulated ms (default 1)")
    p.add_argument("--restart-ms", type=float, default=8.0,
                   help="NIC revival time in simulated ms (default 8)")
    p.add_argument("--until-ms", type=float, default=30.0,
                   help="total simulated run time in ms (default 30)")
    p.add_argument("--puts", type=int, default=12,
                   help="KV PUTs per writer per epoch (default 12)")
    p.add_argument("--chunk-size", type=int, default=512,
                   help="state-transfer chunk payload bytes (default 512)")
    p.add_argument("--chunk-timeout-us", type=float, default=300.0,
                   help="per-chunk timeout in us (default 300)")
    p.add_argument("--drop-chunk", type=int, action="append", default=None,
                   metavar="IDX",
                   help="deterministically swallow this chunk's first "
                        "attempt (repeatable; forces timeout + backoff)")
    p.add_argument("--json", action="store_true",
                   help="print the full audit as JSON")
    p.set_defaults(fn=cmd_recover)

    p = sub.add_parser(
        "metrics",
        help="run a workload and print the metrics registry "
             "(docs/METRICS.md)")
    _add_common(p, count=150)
    p.add_argument("--pattern", choices=["all", "half", "one"], default="all")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-time", type=float, default=5.0,
                   help="simulated-time cap in seconds (default 5)")
    p.add_argument("--format", choices=["table", "json", "prom"],
                   default="table",
                   help="snapshot format (default: table)")
    p.add_argument("--profile", action="store_true",
                   help="print the per-stage pipeline time breakdown and "
                        "check it partitions predicate-thread busy time")
    p.add_argument("--watch", type=float, default=None, metavar="MS",
                   help="print a progress line every MS of simulated time")
    p.set_defaults(fn=cmd_metrics)

    p = sub.add_parser(
        "shard",
        help="sharded service plane: open-loop clients through the "
             "request router (docs/SHARDING.md)")
    p.add_argument("--shards", type=int, default=4,
                   help="number of consistent-hash shards")
    p.add_argument("--clients", type=int, default=4,
                   help="open-loop Poisson client processes")
    p.add_argument("--nodes", type=int, default=8,
                   help="cluster size (default: 2 nodes per shard pair)")
    p.add_argument("--replication", type=int, default=2,
                   help="members per shard subgroup")
    p.add_argument("--rate", type=float, default=20000.0,
                   help="per-client arrival rate (requests/s, simulated)")
    p.add_argument("--ops", type=int, default=50,
                   help="requests per client")
    p.add_argument("--size", type=int, default=512,
                   help="multicast message size in bytes")
    p.add_argument("--window", type=int, default=16,
                   help="per-subgroup send window")
    p.add_argument("--slo-ms", type=float, default=5.0,
                   help="per-request deadline/SLO in milliseconds")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--config", choices=sorted(CONFIGS), default="optimized")
    p.add_argument("--max-time", type=float, default=5.0,
                   help="quiescence guard (simulated seconds)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report")
    p.set_defaults(fn=cmd_shard)

    p = sub.add_parser(
        "txn",
        help="cross-shard transactions under OCC or 2PL "
             "(docs/TRANSACTIONS.md)")
    p.add_argument("--cc", choices=("occ", "2pl"), default="occ",
                   help="concurrency control protocol")
    p.add_argument("--clients", type=int, default=4,
                   help="concurrent transaction clients")
    p.add_argument("--txns", type=int, default=15,
                   help="transactions per client")
    p.add_argument("--ops", type=int, default=3,
                   help="operations per transaction")
    p.add_argument("--keys", type=int, default=64,
                   help="key-space size (smaller = more contention)")
    p.add_argument("--read-ratio", type=float, default=0.5,
                   help="probability an op is a read")
    p.add_argument("--shards", type=int, default=4)
    p.add_argument("--nodes", type=int, default=6)
    p.add_argument("--replication", type=int, default=2)
    p.add_argument("--window", type=int, default=16)
    p.add_argument("--size", type=int, default=512,
                   help="multicast message size in bytes")
    p.add_argument("--gap-us", type=float, default=50.0,
                   help="client think time between txns (us)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--config", choices=sorted(CONFIGS), default="optimized")
    p.add_argument("--max-time", type=float, default=5.0,
                   help="quiescence guard (simulated seconds)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report")
    p.set_defaults(fn=cmd_txn)

    p = sub.add_parser(
        "lint",
        help="run the spindle-lint invariant checks (docs/LINT.md)")
    p.add_argument("paths", nargs="*", default=["src"],
                   help="files or directories to lint (default: src)")
    p.add_argument("--baseline", default=None,
                   help=f"baseline file of known findings (default: "
                        f"./{'.spindle-lint-baseline'} if present)")
    p.add_argument("--no-baseline", action="store_true",
                   help="ignore any baseline file")
    p.add_argument("--write-baseline", action="store_true",
                   help="write current findings as the new baseline")
    p.add_argument("--passes", default=None,
                   help="comma-separated pass subset (monotonicity,"
                        "predicate-purity,lock-discipline,sim-hygiene)")
    p.add_argument("--verbose", action="store_true",
                   help="also print baselined findings")
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser(
        "check",
        help="whole-program lockset + determinism analysis "
             "(docs/CHECK.md)")
    p.add_argument("paths", nargs="*", default=["src"],
                   help="files or directories to analyze (default: src)")
    p.add_argument("--baseline", default=None,
                   help="baseline file of known findings (default: "
                        "./.spindle-check-baseline if present)")
    p.add_argument("--no-baseline", action="store_true",
                   help="ignore any baseline file")
    p.add_argument("--write-baseline", action="store_true",
                   help="write current findings as the new baseline")
    p.add_argument("--passes", default=None,
                   help="comma-separated pass subset (lockset,determinism,"
                        "monotonicity,predicate-purity,lock-discipline,"
                        "sim-hygiene)")
    p.add_argument("--no-lint", action="store_true",
                   help="skip the per-file lint passes; run only the "
                        "whole-program lockset/determinism passes")
    p.add_argument("--format", choices=["text", "json", "sarif"],
                   default="text", help="output format (default: text)")
    p.add_argument("--verbose", action="store_true",
                   help="also print baselined findings")
    p.set_defaults(fn=cmd_check)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())

"""Figure 17: final latency with all Spindle optimizations.

Paper: although the optimizations target throughput, latency also drops
by up to nearly two orders of magnitude relative to the baseline
(log-scale figure, all three sending patterns).

Methodology note: latency is compared at a fixed *offered load* (each
sender paced to 25 µs/message ≈ 0.4 GB/s). The optimized stack absorbs
this load with slack, so its queue-to-delivery latency reflects pure
protocol cost; the baseline saturates at this load and its latency is
dominated by ring-buffer backlog — which is exactly the situation a DDS
application at a given publish rate experiences. (In a saturated
closed loop both systems' latencies are just Little's-law residence
times of a full window and say nothing about the protocol.)
"""

from _common import emit, emit_bench_json, run_once

from repro.analysis import figure_banner, format_table, usec
from repro.core.config import SpindleConfig
from repro.sim.units import us
from repro.workloads import delayed_senders

NODES = [2, 4, 8, 12, 16]
PACE = us(25)  # per-sender pacing: 10 KB / 25 us = 0.4 GB/s offered


def paced_latency(n, config, count):
    result = delayed_senders(
        n, delayed=list(range(n)), delay=PACE, config=config,
        count=count, delayed_count=count, max_time=300.0)
    return result.latency


def bench_fig17_final_latency(benchmark):
    def experiment():
        out = {}
        for n in NODES:
            out[(n, "opt")] = paced_latency(
                n, SpindleConfig.optimized(), count=150)
            out[(n, "base")] = paced_latency(
                n, SpindleConfig.baseline(), count=60)
        return out

    results = run_once(benchmark, experiment)
    rows = []
    for n in NODES:
        base = results[(n, "base")]
        opt = results[(n, "opt")]
        rows.append([n, usec(base), usec(opt), f"{base / opt:.0f}x"])
    text = figure_banner(
        "Figure 17", "Latency at a 0.4 GB/s-per-sender offered load (us)",
        "latency drops by up to ~2 orders of magnitude",
    ) + "\n" + format_table(
        ["n", "baseline", "optimized", "speedup"], rows)
    emit("fig17_final_latency", text)

    ratios = [results[(n, "base")] / results[(n, "opt")] for n in NODES]
    benchmark.extra_info["max_latency_speedup"] = max(ratios)
    assert all(r > 1 for r in ratios)        # optimized always wins
    assert max(ratios) > 30                   # approaching two orders

    emit_bench_json("fig17_final_latency", {
        "max_latency_speedup": max(ratios),
    })

"""Figure 11: overhead of null-sends under continuous sending.

Paper: with everyone sending continuously, nulls cost up to ~25% for
small all-sender groups, almost nothing for half senders, and exactly
nothing for one sender (no null can ever be sent); for larger groups
nulls compensate for relative drift and the gap closes.
"""

from _common import emit, emit_bench_json, run_once

from repro.analysis import figure_banner, format_table, gbps
from repro.core.config import SpindleConfig
from repro.workloads import single_subgroup

NODES = [2, 4, 8, 16]
PATTERNS = ["all", "half", "one"]


def bench_fig11_nullsend_continuous(benchmark):
    def experiment():
        out = {}
        for n in NODES:
            for pattern in PATTERNS:
                out[(n, pattern, "batching")] = single_subgroup(
                    n, pattern, SpindleConfig.batching_only(), count=150)
                out[(n, pattern, "nulls")] = single_subgroup(
                    n, pattern, SpindleConfig.batching_and_nulls(), count=150)
        return out

    results = run_once(benchmark, experiment)
    rows = []
    for n in NODES:
        row = [n]
        for pattern in PATTERNS:
            without = results[(n, pattern, "batching")]
            with_nulls = results[(n, pattern, "nulls")]
            row.append(f"{gbps(without.throughput)}/"
                       f"{gbps(with_nulls.throughput)}"
                       f" ({with_nulls.nulls_sent})")
        rows.append(row)
    text = figure_banner(
        "Figure 11", "Null-send overhead, continuous sending "
        "(batching-only GB/s / with-nulls GB/s (nulls sent))",
        "bounded overhead for all-senders; ~none for half; zero nulls for one",
    ) + "\n" + format_table(["n"] + PATTERNS, rows)
    emit("fig11_nullsend_continuous", text)

    for n in NODES:
        # One sender: no nulls possible, no overhead.
        assert results[(n, "one", "nulls")].nulls_sent == 0
        one_ratio = (results[(n, "one", "nulls")].throughput
                     / results[(n, "one", "batching")].throughput)
        assert one_ratio > 0.95
        # All senders: bounded overhead (paper: up to ~25%).
        all_ratio = (results[(n, "all", "nulls")].throughput
                     / results[(n, "all", "batching")].throughput)
        assert all_ratio > 0.65
    benchmark.extra_info["all16_ratio"] = (
        results[(16, "all", "nulls")].throughput
        / results[(16, "all", "batching")].throughput)

    emit_bench_json("fig11_nullsend_continuous", {
        "all16_ratio": results[(16, "all", "nulls")].throughput
        / results[(16, "all", "batching")].throughput,
    })

"""Figure 3: single subgroup, 10 KB messages — opportunistic batching
vs baseline, for all/half/one senders across subgroup sizes.

Paper: batching outperforms the baseline by ~9x (all senders), ~6x
(half) and ~3x (one) on average, reaching 16x at 16 senders; peak
8.03 GB/s; one-sender throughput declines with subgroup size.
"""

from _common import emit, emit_bench_json, run_once

from repro.analysis import figure_banner, format_table, gbps
from repro.core.config import SpindleConfig
from repro.workloads import single_subgroup

SIZES = [2, 4, 8, 12, 16]
PATTERNS = ["all", "half", "one"]


def bench_fig03_single_subgroup(benchmark):
    def experiment():
        results = {}
        for n in SIZES:
            for pattern in PATTERNS:
                results[(n, pattern, "baseline")] = single_subgroup(
                    n, pattern, SpindleConfig.baseline(), count=60)
                results[(n, pattern, "batching")] = single_subgroup(
                    n, pattern, SpindleConfig.batching_only(), count=200)
        return results

    results = run_once(benchmark, experiment)

    rows = []
    for n in SIZES:
        row = [n]
        for pattern in PATTERNS:
            base = results[(n, pattern, "baseline")].throughput
            batched = results[(n, pattern, "batching")].throughput
            row += [gbps(base), gbps(batched), f"{batched / base:.1f}x"]
        rows.append(row)
    text = figure_banner(
        "Figure 3", "Single subgroup, 10 KB: baseline vs opportunistic batching",
        "~9x (all) / ~6x (half) / ~3x (one) average speedup; 16x at 16 senders",
    ) + "\n" + format_table(
        ["n",
         "all:base", "all:batch", "all:ratio",
         "half:base", "half:batch", "half:ratio",
         "one:base", "one:batch", "one:ratio"],
        rows,
    )
    emit("fig03_single_subgroup", text)

    all16 = results[(16, "all", "batching")].throughput
    base16 = results[(16, "all", "baseline")].throughput
    benchmark.extra_info["speedup_16_all"] = all16 / base16
    benchmark.extra_info["peak_gbps"] = max(
        r.throughput for r in results.values()) / 1e9

    # Shape checks: batching wins everywhere; speedup grows with senders;
    # one-sender throughput declines with subgroup size.
    for key, result in results.items():
        n, pattern, kind = key
        if kind == "batching":
            assert result.throughput > results[(n, pattern, "baseline")].throughput
    assert all16 / base16 > 8
    one = [results[(n, "one", "batching")].throughput for n in SIZES]
    assert one[-1] < one[0]

    emit_bench_json("fig03_single_subgroup", {
        "speedup_16_all": all16 / base16,
        "peak_gbps": max(r.throughput for r in results.values()) / 1e9,
    })

"""Figure 13: multiple *active* subgroups with all optimizations.

Paper: with every subgroup actively sending, the fully-optimized system
scales excellently with the number of subgroups and stays relatively
stable, while the baseline collapses.
"""

from _common import emit, emit_bench_json, run_once

from repro.analysis import figure_banner, format_table, gbps
from repro.core.config import SpindleConfig
from repro.workloads import multi_subgroup

SUBGROUPS = [1, 2, 5, 10]
N = 8


def bench_fig13_multi_active_subgroups(benchmark):
    def experiment():
        out = {}
        for k in SUBGROUPS:
            out[(k, "optimized")] = multi_subgroup(
                N, num_subgroups=k, active_subgroups=k,
                config=SpindleConfig.optimized(), count=100,
                max_time=300.0)
            out[(k, "baseline")] = multi_subgroup(
                N, num_subgroups=k, active_subgroups=k,
                config=SpindleConfig.baseline(),
                count=30, max_time=300.0)
        return out

    results = run_once(benchmark, experiment)
    rows = []
    for k in SUBGROUPS:
        base = results[(k, "baseline")].throughput
        opt = results[(k, "optimized")].throughput
        rows.append([k, gbps(base), gbps(opt), f"{opt / base:.1f}x"])
    text = figure_banner(
        "Figure 13", f"All subgroups active ({N} nodes, aggregate GB/s "
        "per node)",
        "optimized stays stable as subgroups multiply; baseline collapses",
    ) + "\n" + format_table(
        ["active subgroups", "baseline", "optimized", "speedup"], rows)
    emit("fig13_multi_active_subgroups", text)

    opt = [results[(k, "optimized")].throughput for k in SUBGROUPS]
    base = [results[(k, "baseline")].throughput for k in SUBGROUPS]
    benchmark.extra_info["opt_10_subgroups"] = opt[-1] / 1e9
    # Shape: optimized holds >50% of its single-subgroup rate at 10
    # active subgroups; the baseline loses much more, and the optimized
    # advantage widens with subgroup count.
    assert opt[-1] > 0.5 * opt[0]
    assert opt[-1] / base[-1] > opt[0] / base[0]

    emit_bench_json("fig13_multi_active_subgroups", {
        "opt_10_subgroups_gbps": opt[-1] / 1e9,
    })

"""Figure 12: efficient thread synchronization (early lock release).

Paper: restructuring predicates to post RDMA writes after releasing the
shared lock improves throughput ~1.4x on top of batching + nulls; the
maximum network utilization of 77.6% is reached at 4 members and stays
stable through 16.
"""

from _common import emit, emit_bench_json, pick, run_once

from repro.analysis import figure_banner, format_table, gbps
from repro.core.config import SpindleConfig
from repro.rdma.latency import LatencyModel
from repro.workloads import single_subgroup

NODES = pick([2, 4, 8, 12, 16], [2, 4, 8])


def bench_fig12_thread_sync(benchmark):
    def experiment():
        return {
            (n, name): single_subgroup(n, "all", config, count=pick(200, 120))
            for n in NODES
            for name, config in [
                ("held", SpindleConfig.batching_and_nulls()),
                ("released", SpindleConfig.optimized()),
            ]
        }

    results = run_once(benchmark, experiment)
    link = LatencyModel().link_bandwidth
    rows = []
    for n in NODES:
        held = results[(n, "held")].throughput
        released = results[(n, "released")].throughput
        rows.append([
            n, gbps(held), gbps(released), f"{released / held:.2f}x",
            f"{released / link * 100:.0f}%",
        ])
    text = figure_banner(
        "Figure 12", "Early lock release on top of batching + nulls",
        "~1.4x average improvement; utilization stable from 4 to 16 nodes",
    ) + "\n" + format_table(
        ["n", "lock held", "early release", "speedup", "utilization"], rows)
    emit("fig12_thread_sync", text)

    speedups = [results[(n, "released")].throughput
                / results[(n, "held")].throughput for n in NODES]
    mean_speedup = sum(speedups) / len(speedups)
    benchmark.extra_info["mean_speedup"] = mean_speedup
    assert mean_speedup > 1.2
    # Stability: optimized throughput varies < 35% between 4 and 16 nodes.
    released = [results[(n, "released")].throughput for n in NODES[1:]]
    assert max(released) / min(released) < 1.35

    emit_bench_json("fig12_thread_sync", {
        "mean_speedup": mean_speedup,
        "stability_ratio": (max(released) / min(released), False),
    }, extra={"nodes": NODES})

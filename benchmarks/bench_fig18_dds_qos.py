"""Figure 18: DDS throughput for all four QoS levels, baseline vs
Spindle.

Paper: Spindle improves the DDS at every QoS level. Spindle-DDS shows
nearly the same performance for unordered and atomic multicast, with
moderate cost for volatile storage and more for logged storage; the
baseline degrades considerably with each added QoS level.
"""

from _common import emit, emit_bench_json, run_once

from repro.analysis import figure_banner, format_table, gbps
from repro.core.config import SpindleConfig
from repro.dds import DdsDomain, QosLevel, QosProfile

SUBSCRIBERS = 3
SAMPLES = 200
SIZE = 10240


def run_dds(level: QosLevel, config: SpindleConfig) -> float:
    """One publisher, SUBSCRIBERS subscribers, 10 KB Sequence samples."""
    domain = DdsDomain(1 + SUBSCRIBERS, config=config)
    topic = domain.create_topic(
        "bench", publishers=[0],
        subscribers=list(range(1, 1 + SUBSCRIBERS)),
        qos=QosProfile(level), message_size=SIZE, window=100)
    domain.build()
    readers = [domain.participant(n).create_reader(topic, listener=lambda s: None)
               for n in range(1, 1 + SUBSCRIBERS)]
    writer = domain.participant(0).create_writer(topic)

    def publisher():
        for _ in range(SAMPLES):
            yield from writer.write_sized(SIZE)
        writer.finish()

    domain.spawn(publisher())
    domain.run_to_quiescence(max_time=60.0)
    for reader in readers:
        assert reader.received == SAMPLES
    return domain.topic_throughput(topic)


def bench_fig18_dds_qos(benchmark):
    def experiment():
        out = {}
        for level in QosLevel:
            out[(level, "baseline")] = run_dds(level, SpindleConfig.baseline())
            out[(level, "spindle")] = run_dds(level, SpindleConfig.optimized())
        return out

    results = run_once(benchmark, experiment)
    rows = []
    for level in QosLevel:
        base = results[(level, "baseline")]
        spindle = results[(level, "spindle")]
        rows.append([level.name.lower(), gbps(base), gbps(spindle),
                     f"{spindle / base:.1f}x"])
    text = figure_banner(
        "Figure 18", f"DDS, 1 publisher / {SUBSCRIBERS} subscribers, "
        "10 KB Sequence samples",
        "Spindle wins at every QoS; unordered ~= atomic under Spindle; "
        "baseline drops with each added QoS level",
    ) + "\n" + format_table(
        ["QoS", "baseline DDS", "Spindle DDS", "speedup"], rows)
    emit("fig18_dds_qos", text)

    for level in QosLevel:
        assert results[(level, "spindle")] > results[(level, "baseline")]
    spindle_unordered = results[(QosLevel.UNORDERED, "spindle")]
    spindle_atomic = results[(QosLevel.ATOMIC, "spindle")]
    assert abs(spindle_unordered - spindle_atomic) < 0.4 * spindle_atomic
    # Storage QoS levels cost progressively more under Spindle.
    assert (results[(QosLevel.LOGGED, "spindle")]
            < results[(QosLevel.VOLATILE, "spindle")]
            <= spindle_atomic * 1.05)
    benchmark.extra_info["spindle_atomic_gbps"] = spindle_atomic / 1e9

    emit_bench_json("fig18_dds_qos", {
        "spindle_atomic_gbps": spindle_atomic / 1e9,
    })

"""Figure 8: baseline with one active subgroup among many inactive ones.

Paper: baseline performance decreases steadily with the number of
subgroups — a single inactive subgroup costs ~18%, and 50 subgroups cut
throughput to about a tenth — because the predicate thread evaluates
every subgroup's predicates fairly.
"""

from _common import emit, emit_bench_json, run_once

from repro.analysis import figure_banner, format_table, gbps
from repro.core.config import SpindleConfig
from repro.workloads import multi_subgroup

SUBGROUPS = [1, 2, 5, 10, 20, 50]
N = 8


def bench_fig08_single_active_baseline(benchmark):
    def experiment():
        return {
            k: multi_subgroup(N, num_subgroups=k, active_subgroups=1,
                              config=SpindleConfig.baseline(), count=50)
            for k in SUBGROUPS
        }

    results = run_once(benchmark, experiment)
    base = results[1].throughput
    rows = [
        [k, gbps(results[k].throughput),
         f"{results[k].throughput / base:.2f}",
         f"{results[k].extras['active_fraction_node0'] * 100:.0f}%"]
        for k in SUBGROUPS
    ]
    text = figure_banner(
        "Figure 8", "Baseline: 1 active subgroup among k subgroups "
        f"({N} nodes)",
        "adding 1 inactive subgroup costs ~18%; 50 subgroups -> ~10% of solo",
    ) + "\n" + format_table(
        ["subgroups", "GB/s", "vs 1 subgroup", "active-pred time"], rows)
    emit("fig08_single_active_baseline", text)

    benchmark.extra_info["ratio_50"] = results[50].throughput / base
    # Shape: monotone-ish decline, large total degradation.
    assert results[2].throughput < results[1].throughput
    assert results[50].throughput < 0.45 * base
    # Fair evaluation: active-subgroup share of predicate time collapses.
    assert (results[50].extras["active_fraction_node0"]
            < results[2].extras["active_fraction_node0"])

    emit_bench_json("fig08_single_active_baseline", {
        "ratio_50": results[50].throughput / base,
    })

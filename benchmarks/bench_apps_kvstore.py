"""§1's broader claim: coordination-bound applications benefit too.

"Similar structures are also seen in message queuing systems, key-value
stores that replicate data, atomic multicast and persistent logging.
The dramatic speedups Spindle enabled ... point to a much broader need,
and opportunity."

We measure a replicated KV store's write throughput (512 B values,
every replica writing) under the baseline and optimized stacks, plus
the latency of a linearizable (fenced) read.
"""

from _common import emit, emit_bench_json, run_once

from repro.analysis import figure_banner, format_table, usec
from repro.apps import attach_store
from repro.core.config import SpindleConfig
from repro.workloads import Cluster

N = 4
WRITES = 150
VALUE = b"x" * 400


def run_store(config, writes, fenced_read=True):
    cluster = Cluster(N, config=config)
    cluster.add_subgroup(message_size=512, window=32)
    cluster.build()
    stores = {nid: attach_store(cluster.group(nid), 0)
              for nid in cluster.node_ids}

    def writer(nid):
        store = stores[nid]
        for k in range(writes):
            yield from store.put(b"key-%d-%d" % (nid, k), VALUE)

    for nid in cluster.node_ids:
        cluster.spawn_sender(writer(nid))
    cluster.run_to_quiescence(max_time=60.0)
    total = N * writes
    assert all(s.applied == total for s in stores.values())
    duration = max(cluster.group(nid).stats(0).last_delivery_time
                   for nid in cluster.node_ids)
    write_rate = total / duration

    if not fenced_read:
        # Without null-sends a lone fence multicast stalls on the
        # round-robin order (§3.3's correctness property is exactly what
        # makes fenced reads on an idle group possible).
        return write_rate, None

    # Linearizable read latency on the now-idle store.
    read_latency = {}

    def reader():
        t0 = cluster.sim.now
        yield from stores[1].sync_read(b"key-0-0")
        read_latency["t"] = cluster.sim.now - t0

    cluster.spawn_sender(reader())
    cluster.run_to_quiescence(max_time=10.0)
    return write_rate, read_latency["t"]


def bench_apps_kvstore(benchmark):
    def experiment():
        return {
            "baseline": run_store(SpindleConfig.baseline(), writes=50,
                                  fenced_read=False),
            "optimized": run_store(SpindleConfig.optimized(), writes=WRITES),
        }

    results = run_once(benchmark, experiment)
    rows = []
    for name, (rate, read_lat) in results.items():
        rows.append([name, f"{rate:,.0f}",
                     usec(read_lat) if read_lat is not None
                     else "stalls (no nulls)"])
    text = figure_banner(
        "§1 applications", f"Replicated KV store, {N} replicas, "
        "512 B writes",
        "the coordination-bound write path inherits the multicast speedup",
    ) + "\n" + format_table(
        ["stack", "writes/s (all replicas)", "fenced read (us)"], rows)
    emit("apps_kvstore", text)

    base_rate, _ = results["baseline"]
    opt_rate, opt_read = results["optimized"]
    benchmark.extra_info["write_speedup"] = opt_rate / base_rate
    # Synchronous one-outstanding-write clients are *latency*-bound, so
    # the gain is smaller than the streaming figures — but still real.
    assert opt_rate > 1.2 * base_rate
    assert opt_read < 1e-3  # a fenced read completes in well under 1 ms

    emit_bench_json("apps_kvstore", {
        "write_speedup": opt_rate / base_rate,
        "read_latency_ms": (opt_read * 1e3, False),
    })

"""Figure 16: final throughput with all Spindle optimizations.

Paper: the fully-optimized stack sustains high, stable bandwidth for the
single-subgroup case in all three sending patterns (multicast bandwidth
rose from 1 GB/s to 9.7 GB/s on the 12.5 GB/s network for 10 KB
messages).
"""

from _common import emit, emit_bench_json, run_once

from repro.analysis import figure_banner, format_table, gbps
from repro.core.config import SpindleConfig
from repro.workloads import single_subgroup

NODES = [2, 4, 8, 12, 16]
PATTERNS = ["all", "half", "one"]


def bench_fig16_final_throughput(benchmark):
    def experiment():
        out = {}
        for n in NODES:
            for pattern in PATTERNS:
                out[(n, pattern)] = single_subgroup(
                    n, pattern, SpindleConfig.optimized(), count=200)
            out[(n, "baseline")] = single_subgroup(
                n, "all", SpindleConfig.baseline(), count=60)
        return out

    results = run_once(benchmark, experiment)
    rows = [
        [n] + [gbps(results[(n, p)].throughput) for p in PATTERNS]
        + [gbps(results[(n, "baseline")].throughput)]
        for n in NODES
    ]
    text = figure_banner(
        "Figure 16", "Final throughput, all optimizations (GB/s)",
        "1 GB/s baseline -> ~9.7 GB/s optimized at 10 KB on 12.5 GB/s fabric",
    ) + "\n" + format_table(
        ["n", "all senders", "half senders", "one sender", "baseline(all)"],
        rows)
    emit("fig16_final_throughput", text)

    sixteen = results[(16, "all")].throughput
    benchmark.extra_info["final_16_all_gbps"] = sixteen / 1e9
    benchmark.extra_info["headline_speedup"] = (
        sixteen / results[(16, "baseline")].throughput)
    # Headline claim: near-an-order-of-magnitude over the baseline at 16.
    assert sixteen / results[(16, "baseline")].throughput > 8
    # Utilization: 60-100% of the 12.5 GB/s link, stable for 4..16 nodes.
    for n in NODES[1:]:
        assert 0.5 * 12.5e9 < results[(n, "all")].throughput

    emit_bench_json("fig16_final_throughput", {
        "final_16_all_gbps": sixteen / 1e9,
        "headline_speedup": sixteen / results[(16, "baseline")].throughput,
    })
